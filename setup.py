"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs `bdist_wheel`; this offline environment lacks it,
so `python setup.py develop` provides the editable install instead.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
