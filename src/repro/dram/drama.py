"""DRAMA-style reverse engineering of the DRAM address mapping.

SoftTRR needs the physical-to-DRAM mapping as offline domain knowledge;
the paper obtains it with the DRAMA tool (Section IV-A), which exploits
the row-buffer timing side channel [35], [39]: alternately accessing two
addresses in *different rows of the same bank* keeps conflicting in the
row buffer and is measurably slower than any other address relationship.

This module reproduces that workflow against the simulated module:

1. sample random addresses and group them into same-bank classes by
   pairwise conflict timing;
2. brute-force low-Hamming-weight XOR masks whose parity is constant in
   every class, and Gaussian-eliminate them to an independent basis —
   these are the bank functions;
3. within one bank class, label pairs same-row vs different-row by
   timing; the union of bits on which same-row pairs differ is the
   column-bit set;
4. the remaining unexplained bits split into the row bits and one
   *base* bit per bank function.  Like the original tooling, we resolve
   this last ambiguity with the standard assumption that row bits are
   the contiguous high-order bits (true of the controllers DRAMA
   studied, and of every profile in this repository).

The result can be checked for exact agreement with the module's ground
truth (`recovered_equals`), which is what the tests and the
``reverse_engineer_dram.py`` example do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import DramError
from ..rng import Random, derive_rng
from .address import AddressMapping
from .geometry import LINE_BYTES, LINE_SHIFT
from .module import DramModule


@dataclass(frozen=True)
class RecoveredMapping:
    """Output of the reverse-engineering pass."""

    bank_masks: Tuple[int, ...]
    row_bits: Tuple[int, ...]
    col_bits: Tuple[int, ...]
    samples_used: int
    measurements: int


def _gf2_basis(masks: Sequence[int]) -> List[int]:
    """Reduce integer bit-masks to an independent GF(2) basis."""
    basis: List[int] = []
    for mask in sorted(masks):
        reduced = mask
        for b in basis:
            reduced = min(reduced, reduced ^ b)
        if reduced:
            basis.append(reduced)
            basis.sort(reverse=True)
    return sorted(basis)


def _span(masks: Sequence[int]) -> set:
    """All GF(2) combinations of ``masks`` (excluding zero)."""
    out = {0}
    for mask in masks:
        out |= {mask ^ existing for existing in out}
    out.discard(0)
    return out


def masks_equivalent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two sets of XOR masks define the same bank partition."""
    return _span(_gf2_basis(a)) == _span(_gf2_basis(b))


class DramaProbe:
    """Timing probe against a :class:`DramModule`.

    The probe issues *architectural* accesses (they cost simulated time
    and activate rows), exactly as the real tool stresses the machine it
    profiles.
    """

    def __init__(self, module: DramModule, rng: Optional[Random] = None) -> None:
        self.module = module
        self.rng = rng or derive_rng("drama", "probe")
        self.measurements = 0
        hit = module.timings.hit_latency_ns
        conflict = module.timings.conflict_latency_ns
        #: Latency above this threshold is classified as a row conflict.
        self.conflict_cutoff_ns = (hit + conflict) / 2

    def measure_pair(self, paddr_a: int, paddr_b: int, rounds: int = 3) -> float:
        """Average alternating-access latency of the pair, in ns."""
        module = self.module
        total = 0
        count = 0
        # Prime both: the first accesses just set up row-buffer state.
        module.read(paddr_a, 8)
        module.read(paddr_b, 8)
        for _ in range(rounds):
            start = module.clock.now_ns
            module.read(paddr_a, 8)
            module.read(paddr_b, 8)
            total += module.clock.now_ns - start
            count += 2
        self.measurements += rounds
        return total / count

    def conflicts(self, paddr_a: int, paddr_b: int) -> bool:
        """True if the pair shows row-buffer-conflict timing."""
        return self.measure_pair(paddr_a, paddr_b) >= self.conflict_cutoff_ns

    # ----------------------------------------------------------- sampling
    def sample_addresses(self, count: int) -> List[int]:
        """Random line-aligned physical addresses across the module."""
        cap = self.module.geometry.capacity_bytes
        lines = cap // LINE_BYTES
        return [self.rng.randrange(lines) * LINE_BYTES for _ in range(count)]


def _group_into_banks(probe: DramaProbe, addrs: Sequence[int]) -> List[List[int]]:
    """Partition addresses into same-bank classes via conflict timing.

    Same-bank pairs can also be same-row (no conflict); representatives
    are therefore re-checked against a second member when available.
    """
    classes: List[List[int]] = []
    for addr in addrs:
        placed = False
        for cls in classes:
            if probe.conflicts(addr, cls[0]) or (
                len(cls) > 1 and probe.conflicts(addr, cls[1])
            ):
                cls.append(addr)
                placed = True
                break
        if not placed:
            classes.append([addr])
    return classes


def _constant_masks(
    classes: Sequence[Sequence[int]], addr_bits: int, max_weight: int
) -> List[int]:
    """Candidate XOR masks whose parity is constant within every class."""
    candidate_bits = list(range(LINE_SHIFT, addr_bits))

    def parity(value: int) -> int:
        return bin(value).count("1") & 1

    def constant_everywhere(mask: int) -> bool:
        for cls in classes:
            first = parity(cls[0] & mask)
            for addr in cls[1:]:
                if parity(addr & mask) != first:
                    return False
        return True

    def distinguishes(mask: int) -> bool:
        values = {parity(cls[0] & mask) for cls in classes}
        return len(values) > 1

    found: List[int] = []
    # Weight-1 then weight-2 then weight-3 masks.
    for i, bit_i in enumerate(candidate_bits):
        mask = 1 << bit_i
        if constant_everywhere(mask) and distinguishes(mask):
            found.append(mask)
    if max_weight >= 2:
        for i, bit_i in enumerate(candidate_bits):
            for bit_j in candidate_bits[i + 1 :]:
                mask = (1 << bit_i) | (1 << bit_j)
                if constant_everywhere(mask) and distinguishes(mask):
                    found.append(mask)
    if max_weight >= 3:
        for i, bit_i in enumerate(candidate_bits):
            for j, bit_j in enumerate(candidate_bits[i + 1 :], start=i + 1):
                for bit_k in candidate_bits[j + 1 :]:
                    mask = (1 << bit_i) | (1 << bit_j) | (1 << bit_k)
                    if constant_everywhere(mask) and distinguishes(mask):
                        found.append(mask)
    return found


def _column_bits(
    probe: DramaProbe,
    bank_class: Sequence[int],
    addr_bits: int,
    bank_basis: Sequence[int],
) -> set:
    """Union of bits on which same-row (hit-timing) pairs differ.

    Only pairs the *recovered* bank functions place in the same bank are
    timed — the tool never consults ground truth.
    """

    def parity(value: int) -> int:
        return bin(value).count("1") & 1

    cols = set(range(LINE_SHIFT))  # sub-line bits are columns by construction
    for base in bank_class[: min(len(bank_class), 12)]:
        for bit in range(LINE_SHIFT, addr_bits):
            other = base ^ (1 << bit)
            if other >= probe.module.geometry.capacity_bytes:
                continue
            diff = base ^ other
            if any(parity(diff & mask) for mask in bank_basis):
                continue  # recovered functions say: different bank
            if not probe.conflicts(base, other):
                cols.add(bit)
    return cols


def reverse_engineer_mapping(
    module: DramModule,
    sample_count: int = 256,
    max_mask_weight: int = 2,
    rng: Optional[Random] = None,
) -> RecoveredMapping:
    """Recover the module's address mapping from timing alone.

    Raises :class:`DramError` if the recovered bank-function basis does
    not explain the observed number of bank classes (insufficient
    samples or too small a ``max_mask_weight``).
    """
    probe = DramaProbe(module, rng=rng)
    geo = module.geometry
    addrs = probe.sample_addresses(sample_count)
    classes = _group_into_banks(probe, addrs)
    masks = _constant_masks(classes, geo.addr_bits, max_mask_weight)
    basis = _gf2_basis(masks)
    expected = (len(classes) - 1).bit_length()
    if len(basis) < expected:
        raise DramError(
            f"recovered only {len(basis)} independent bank functions for "
            f"{len(classes)} observed classes; increase samples/mask weight"
        )
    # Column discovery within the largest class.
    largest = max(classes, key=len)
    cols = _column_bits(probe, largest, geo.addr_bits, basis)
    # Remaining bits = row bits + one base bit per bank function; resolve
    # with the contiguous-high-row-bits assumption.
    unexplained = [b for b in range(geo.addr_bits) if b not in cols]
    n_row = geo.addr_bits - len(cols) - len(basis)
    if n_row < 0:
        raise DramError("inconsistent recovery: more functions than free bits")
    row_bits = tuple(sorted(unexplained)[-n_row:]) if n_row else ()
    col_bits = tuple(sorted(cols))
    return RecoveredMapping(
        bank_masks=tuple(basis),
        row_bits=row_bits,
        col_bits=col_bits,
        samples_used=sample_count,
        measurements=probe.measurements,
    )


def recovered_equals(recovered: RecoveredMapping, truth: AddressMapping) -> bool:
    """Whether a recovery matches a ground-truth mapping exactly.

    Bank functions are compared as GF(2) spans (any basis of the same
    space decodes banks identically); row and column bits must match
    as sets.
    """
    return (
        masks_equivalent(recovered.bank_masks, truth.bank_masks)
        and set(recovered.row_bits) == set(truth.row_bits)
        and set(recovered.col_bits) == set(truth.col_bits)
    )
