"""DRAM geometry: how many banks, rows and columns a module has.

The simulator folds DIMM, channel and rank into the *bank* dimension,
exactly as the paper does ("DIMM, channel, and rank are included into the
bank tuple field", Section II-A).  A module is therefore fully described
by three powers of two: the number of banks, the number of rows per bank,
and the number of bytes per row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Memory-bus transfer granularity: one CPU cache line.  Address-mapping
#: functions are required to keep every 64-byte line inside a single
#: (bank, row) so that a line never straddles DRAM rows — true on every
#: real x86 memory controller.
LINE_BYTES = 64

#: Base-2 log of :data:`LINE_BYTES`.
LINE_SHIFT = 6

#: x86 page size used throughout the stack.
PAGE_BYTES = 4096
PAGE_SHIFT = 12


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DramGeometry:
    """Shape of a simulated DRAM module.

    Attributes
    ----------
    num_banks:
        Total banks, with channel/DIMM/rank folded in.  A single-channel
        dual-rank DDR3 DIMM with 8 banks per rank is ``num_banks=16``.
    rows_per_bank:
        Rows in each bank.
    row_bytes:
        Bytes stored in one row (the row-buffer size).  8 KiB is typical.
    """

    num_banks: int
    rows_per_bank: int
    row_bytes: int

    def __post_init__(self) -> None:
        for name in ("num_banks", "rows_per_bank", "row_bytes"):
            value = getattr(self, name)
            if not _is_pow2(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.row_bytes < PAGE_BYTES // 8:
            raise ConfigError("row_bytes implausibly small")
        if self.row_bytes % LINE_BYTES:
            raise ConfigError("row_bytes must be a multiple of the line size")

    # ------------------------------------------------------------ derived
    @property
    def capacity_bytes(self) -> int:
        """Total module capacity in bytes."""
        return self.num_banks * self.rows_per_bank * self.row_bytes

    @property
    def bank_bits(self) -> int:
        """Number of bits needed for a bank index."""
        return self.num_banks.bit_length() - 1

    @property
    def row_bits(self) -> int:
        """Number of bits needed for a row index."""
        return self.rows_per_bank.bit_length() - 1

    @property
    def col_bits(self) -> int:
        """Number of bits needed for a byte offset within a row."""
        return self.row_bytes.bit_length() - 1

    @property
    def addr_bits(self) -> int:
        """Number of physical-address bits the module decodes."""
        return self.bank_bits + self.row_bits + self.col_bits

    @property
    def pages_per_row(self) -> int:
        """4 KiB pages that fit in one row (>= 1 for realistic rows)."""
        return max(1, self.row_bytes // PAGE_BYTES)

    @property
    def lines_per_row(self) -> int:
        """Cache lines per row."""
        return self.row_bytes // LINE_BYTES

    @property
    def total_rows(self) -> int:
        """Rows across all banks."""
        return self.num_banks * self.rows_per_bank

    # ----------------------------------------------------------- helpers
    def check_bank(self, bank: int) -> None:
        """Raise :class:`ConfigError` if ``bank`` is out of range."""
        if not 0 <= bank < self.num_banks:
            raise ConfigError(f"bank {bank} out of range [0, {self.num_banks})")

    def check_row(self, row: int) -> None:
        """Raise :class:`ConfigError` if ``row`` is out of range."""
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} out of range [0, {self.rows_per_bank})")

    def neighbors(self, row: int, max_distance: int) -> list:
        """Row indexes within ``max_distance`` of ``row`` (excluding it).

        Rows past either end of the bank are clipped, matching a real
        bank's edge rows which simply have fewer neighbours.
        """
        out = []
        for distance in range(1, max_distance + 1):
            if row - distance >= 0:
                out.append(row - distance)
            if row + distance < self.rows_per_bank:
                out.append(row + distance)
        return out
