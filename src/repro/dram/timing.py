"""DDR timing parameters used by the simulation.

Only the parameters the paper's arithmetic actually touches are modelled:

* ``t_rc`` — the row-cycle time, i.e. the minimum interval between two
  ACT commands to the same bank.  The paper uses tRC ~= 50 ns in its
  offline profile (Section IV-E): ``threshold = tRC x #ACT``.
* ``t_cas`` — the row-buffer *hit* latency.  The gap between hit and
  conflict latency is the timing side channel DRAMA exploits.
* ``refresh_window_ns`` — the auto-refresh period (64 ms on every module
  in the paper).  All disturbance accumulated in a row is healed when the
  window rolls over, so a hammer attack must land its flips within one
  window.
* ``ctrl_overhead_ns`` — fixed memory-controller overhead added to every
  DRAM transaction.  This matters for the security arithmetic: it bounds
  the attacker's best-case activation rate strictly *below* 1/tRC, which
  is what gives SoftTRR's 1 ms protection window its safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import NS_PER_MS
from ..errors import ConfigError


@dataclass(frozen=True)
class DramTimings:
    """Timing parameters of a simulated module (all in nanoseconds)."""

    t_rc_ns: int = 50
    t_cas_ns: int = 15
    ctrl_overhead_ns: int = 15
    refresh_window_ns: int = 64 * NS_PER_MS

    def __post_init__(self) -> None:
        if self.t_rc_ns <= 0 or self.t_cas_ns <= 0:
            raise ConfigError("tRC and tCAS must be positive")
        if self.t_cas_ns >= self.t_rc_ns:
            raise ConfigError("row-buffer hit must be faster than a row conflict")
        if self.ctrl_overhead_ns < 0:
            raise ConfigError("controller overhead cannot be negative")
        if self.refresh_window_ns <= self.t_rc_ns:
            raise ConfigError("refresh window must exceed tRC")

    @property
    def conflict_latency_ns(self) -> int:
        """End-to-end latency of a row-buffer conflict (precharge+ACT+CAS)."""
        return self.t_rc_ns + self.ctrl_overhead_ns

    @property
    def hit_latency_ns(self) -> int:
        """End-to-end latency of a row-buffer hit."""
        return self.t_cas_ns + self.ctrl_overhead_ns

    @property
    def max_activations_per_window(self) -> int:
        """Upper bound on ACTs one bank can absorb per refresh window."""
        return self.refresh_window_ns // self.conflict_latency_ns

    def refresh_epoch(self, now_ns: int) -> int:
        """The auto-refresh epoch containing ``now_ns``.

        The simulator heals all disturbance lazily when a row is next
        touched in a newer epoch, which is behaviourally equivalent to
        the staggered refresh a real controller performs and much
        cheaper to simulate.
        """
        return now_ns // self.refresh_window_ns


#: Timings used for the DDR3 machines in Table II (Optiplex 990, X230).
DDR3_TIMINGS = DramTimings(t_rc_ns=50, t_cas_ns=14, ctrl_overhead_ns=15)

#: Timings used for the DDR4 machines in Table II / Section VI.  tRC is
#: the paper's ~50 ns; the controller overhead on top is what gives the
#: offline profile's 1 ms window its real-world safety margin.
DDR4_TIMINGS = DramTimings(t_rc_ns=50, t_cas_ns=14, ctrl_overhead_ns=16)
