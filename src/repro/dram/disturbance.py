"""Rowhammer charge-disturbance fault model.

The model follows the experimental picture of Kim et al. [26], which the
paper's design explicitly targets (Section III-A):

* Activating (opening) a row deposits *disturbance* into nearby victim
  rows.  Victims can be up to ``max_distance`` (6) rows away; the deposit
  per activation falls off geometrically with distance,
  ``w(d) = distance_decay ** (d - 1)``.
* A small, fixed subset of cells is *vulnerable* (real DIMMs flip in the
  same cells reproducibly — that is what makes flip *templating* work).
  A vulnerable cell flips when its row's accumulated disturbance crosses
  the cell's threshold.  The most vulnerable cells flip after
  ``base_flip_threshold`` weighted activations — calibrated to the
  paper's #ACT ~= 20 K figure (Section IV-E), which together with an
  activation period >= tRC + controller overhead puts the minimum
  time-to-first-flip just above SoftTRR's 1 ms protection window.
* Activating or refreshing the victim row itself recharges its cells and
  zeroes the accumulator — this is precisely the mechanism SoftTRR's Row
  Refresher relies on ("a read-access to a row can automatically recharge
  the row", Section IV-D).
* Auto-refresh heals every row once per refresh window.  The engine
  implements this lazily with epoch tags instead of touching every row.
* Flips are one-directional per cell (true-cell 1->0 vs anti-cell 0->1),
  so a flip only corrupts data whose current bit value matches the
  cell's charged state.

All randomness (which rows have vulnerable cells, where, and how hard
they are) is a pure function of ``(seed, bank, row)``, so every machine
profile has a stable, reproducible flip map — the property templating
and the security evaluation depend on.

Two interchangeable accumulator stores implement the model:

* :class:`DisturbanceEngine` (this module) — the original dict-keyed
  core, kept behind ``REPRO_DENSE=0`` as the differential baseline; and
* :class:`~repro.dram.dense.DenseDisturbanceEngine` — the array-backed
  dense core (the default), indexed flat by row per bank.

Both derive from :class:`DisturbanceCore` (the shared deterministic
cell map, victim plans and counters) and are proven observably
identical by ``tests/perf/test_generative_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigError
from ..rng import derive_rng
from .geometry import DramGeometry
from .remap import IdentityRemap, RowRemap


def crosses(before: float, threshold: float, after: float) -> bool:
    """Whether an accumulator step ``before -> after`` fires a cell.

    The intended boundary semantics, pinned by the regression tests in
    ``tests/dram/test_deposit_boundary.py``: a cell fires on the deposit
    that first *reaches* its threshold (``after == threshold`` flips) and
    never re-fires while the accumulator sits at or above it
    (``before == threshold`` does not flip again) — i.e. exactly
    ``before < threshold <= after``.
    """
    return before < threshold <= after


@dataclass(frozen=True)
class VulnerableCell:
    """One flippable cell in a DRAM row.

    ``bit_offset`` indexes the bit within the row (0-based from the row's
    first byte's LSB).  ``from_value`` is the charged value the cell loses
    when it flips: a flip turns ``from_value`` into ``1 - from_value`` and
    only applies if the stored bit currently equals ``from_value``.
    """

    bit_offset: int
    threshold: float
    from_value: int


@dataclass(frozen=True)
class FlipEvent:
    """A bit flip the disturbance engine just produced."""

    bank: int
    row: int
    bit_offset: int
    from_value: int
    at_ns: int


@dataclass(frozen=True)
class DisturbanceParams:
    """Knobs of the fault model.

    ``base_flip_threshold`` is in *weighted activation units*: a single
    activation of an adjacent (distance-1) row deposits exactly 1 unit.
    """

    base_flip_threshold: float = 20_000.0
    threshold_max_factor: float = 8.0
    max_distance: int = 6
    distance_decay: float = 0.6
    row_vuln_probability: float = 0.25
    max_vuln_cells_per_row: int = 3
    seed: int = 1

    def __post_init__(self) -> None:
        if self.base_flip_threshold <= 0:
            raise ConfigError("flip threshold must be positive")
        if self.threshold_max_factor < 1.0:
            raise ConfigError("threshold_max_factor must be >= 1")
        if not 1 <= self.max_distance <= 16:
            raise ConfigError("max_distance must be in [1, 16]")
        if not 0.0 < self.distance_decay <= 1.0:
            raise ConfigError("distance_decay must be in (0, 1]")
        if not 0.0 <= self.row_vuln_probability <= 1.0:
            raise ConfigError("row_vuln_probability must be a probability")
        if self.max_vuln_cells_per_row < 1:
            raise ConfigError("need at least one cell per vulnerable row")

    def weight(self, distance: int) -> float:
        """Disturbance deposited per activation at ``distance`` rows away."""
        if distance < 1 or distance > self.max_distance:
            return 0.0
        return self.distance_decay ** (distance - 1)


class DisturbanceCore:
    """Shared skeleton of both disturbance engines.

    Owns everything that is *not* the accumulator store: the
    deterministic vulnerable-cell map, the cached per-aggressor victim
    plans, and the two counters the telemetry layer samples.  Both
    stores expose the same observable API — ``deposit``, ``on_activate``,
    ``deposit_batch``, ``heal``, ``accumulated``,
    ``vulnerable_accumulated`` and the batched ``hammer_kernel`` — so
    :class:`~repro.dram.module.DramModule` is store-agnostic.

    The engines are deliberately clock-free: callers pass the current
    refresh epoch and timestamp so they can be unit-tested in isolation.
    """

    #: Whether :meth:`~repro.dram.module.DramModule.hammer_batch` may
    #: route periodic streams to :meth:`hammer_periodic` (dense only).
    supports_periodic = False

    def __init__(self, geometry: DramGeometry, params: DisturbanceParams,
                 remap: Optional[RowRemap] = None) -> None:
        self.geometry = geometry
        self.params = params
        #: In-DRAM row remapping: disturbance follows *physical*
        #: adjacency, so victims of an activation are the logical rows
        #: whose physical positions flank the activated row.
        self.remap = remap or IdentityRemap(geometry.rows_per_bank)
        # (bank, row) -> tuple of VulnerableCell (lazily generated, cached)
        self._cells: Dict[Tuple[int, int], Tuple[VulnerableCell, ...]] = {}
        # Keys of rows known to have at least one cell: a cheap set the
        # batched paths probe instead of re-deriving cell tuples.
        self._vulnerable: Set[Tuple[int, int]] = set()
        # (bank, row) -> cached victim plan (see victim_plan()).
        self._plans: Dict[
            Tuple[int, int],
            Tuple[Tuple[int, float, Tuple[VulnerableCell, ...]], ...],
        ] = {}
        self.total_deposits = 0
        self.total_flip_events = 0

    # --------------------------------------------------------- cell map
    def vulnerable_cells(self, bank: int, row: int) -> Tuple[VulnerableCell, ...]:
        """The (deterministic) vulnerable cells of a row."""
        key = (bank, row)
        cached = self._cells.get(key)
        if cached is not None:
            return cached
        rng = derive_rng("cells", self.params.seed, bank, row)
        cells: List[VulnerableCell] = []
        if rng.random() < self.params.row_vuln_probability:
            count = rng.randint(1, self.params.max_vuln_cells_per_row)
            row_bits_total = self.geometry.row_bytes * 8
            for _ in range(count):
                # Square the uniform draw so thresholds skew toward the
                # base: most vulnerable rows have at least one "easy" cell,
                # as the HC_first distributions in [26] show.
                spread = (self.params.threshold_max_factor - 1.0) * rng.random() ** 2
                cells.append(
                    VulnerableCell(
                        bit_offset=rng.randrange(row_bits_total),
                        threshold=self.params.base_flip_threshold * (1.0 + spread),
                        from_value=rng.randint(0, 1),
                    )
                )
            cells.sort(key=lambda c: c.threshold)
        result = tuple(cells)
        self._cells[key] = result
        if result:
            self._vulnerable.add(key)
        return result

    def is_vulnerable(self, bank: int, row: int) -> bool:
        """Whether the row has any flippable cell."""
        key = (bank, row)
        if key in self._vulnerable:
            return True
        if key in self._cells:
            return False
        return bool(self.vulnerable_cells(bank, row))

    def min_threshold(self, bank: int, row: int) -> Optional[float]:
        """Threshold of the row's easiest cell, or ``None``."""
        cells = self.vulnerable_cells(bank, row)
        return cells[0].threshold if cells else None

    def victim_plan(
        self, bank: int, row: int
    ) -> Tuple[Tuple[int, float, Tuple[VulnerableCell, ...]], ...]:
        """The victims one activation of (bank, row) disturbs, in the
        exact order :meth:`on_activate` deposits into them.

        Each entry is ``(victim_row, weight, cells)``.  The plan is a
        pure function of the geometry/remap/seed, so it is cached; the
        batched hammer paths iterate it instead of re-walking
        ``neighbors_at`` per activation.
        """
        key = (bank, row)
        plan = self._plans.get(key)
        if plan is None:
            entries: List[Tuple[int, float, Tuple[VulnerableCell, ...]]] = []
            for distance in range(1, self.params.max_distance + 1):
                weight = self.params.weight(distance)
                for victim in self.remap.neighbors_at(row, distance):
                    entries.append(
                        (victim, weight, self.vulnerable_cells(bank, victim))
                    )
            plan = tuple(entries)
            self._plans[key] = plan
        return plan

    # ----------------------------------------------------- shared logic
    def on_activate(
        self, bank: int, row: int, count: int, epoch: int, now_ns: int
    ) -> List[FlipEvent]:
        """Record ``count`` activations of (bank, row).

        Opening a row recharges it (its own accumulator resets) and
        disturbs every victim within ``max_distance`` rows on both sides.
        Returns all flips produced anywhere.
        """
        if count <= 0:
            return []
        self.heal(bank, row)
        flips: List[FlipEvent] = []
        for distance in range(1, self.params.max_distance + 1):
            units = self.params.weight(distance) * count
            for victim in self.remap.neighbors_at(row, distance):
                flips.extend(self.deposit(bank, victim, units, epoch, now_ns))
        return flips

    def deposit_batch(
        self, bank: int, row: int, units: float, count: int,
        epoch: int, now_ns: int,
    ) -> List[FlipEvent]:
        """``count`` equal deposits of ``units`` into (bank, row) at once.

        Equivalent to ``count`` successive :meth:`deposit` calls at the
        same timestamp.  Vulnerability is a static property of the cell
        map — never of the accumulator's current epoch bucket — so a
        vulnerable row always takes the exact per-deposit path, even
        when its bucket still carries a stale epoch tag (pinned by
        ``tests/dram/test_deposit_boundary.py``).  For rows with *no*
        vulnerable cells the per-cell scan and the per-deposit
        accumulator walk are skipped entirely: the row can never flip,
        so its accumulator only needs the fused sum (``units * count``),
        which may differ from the sequential float sum in the last ULPs
        — the one sanctioned relaxation of the batching invariant (see
        DESIGN.md).
        """
        if count <= 0 or units <= 0:
            return []
        if row < 0 or row >= self.geometry.rows_per_bank:
            return []
        if not self.is_vulnerable(bank, row):
            self._fused_add(bank, row, units * count, epoch)
            self.total_deposits += count
            return []
        flips: List[FlipEvent] = []
        for _ in range(count):
            flips.extend(self.deposit(bank, row, units, epoch, now_ns))
        return flips

    # ------------------------------------------------- store interface
    def deposit(self, bank: int, row: int, units: float, epoch: int,
                now_ns: int) -> List[FlipEvent]:
        raise NotImplementedError

    def heal(self, bank: int, row: int) -> None:
        raise NotImplementedError

    def accumulated(self, bank: int, row: int, epoch: int) -> float:
        raise NotImplementedError

    def vulnerable_accumulated(self, epoch: int) -> Dict[Tuple[int, int], float]:
        raise NotImplementedError

    def _fused_add(self, bank: int, row: int, amount: float,
                   epoch: int) -> None:
        raise NotImplementedError


class DisturbanceEngine(DisturbanceCore):
    """The dict-keyed accumulator store (the differential baseline).

    Accumulators live in a sparse ``(bank, row) -> [epoch, units]`` dict;
    ``REPRO_DENSE=0`` selects this core so any run of the dense core can
    be replayed against it bit-for-bit.
    """

    def __init__(self, geometry: DramGeometry, params: DisturbanceParams,
                 remap: Optional[RowRemap] = None) -> None:
        super().__init__(geometry, params, remap=remap)
        # (bank, row) -> [epoch, accumulated_units]
        self._acc: Dict[Tuple[int, int], List[float]] = {}

    # ------------------------------------------------------ accumulation
    def _bucket(self, bank: int, row: int, epoch: int) -> List[float]:
        key = (bank, row)
        bucket = self._acc.get(key)
        if bucket is None:
            bucket = [epoch, 0.0]
            self._acc[key] = bucket
        elif bucket[0] != epoch:
            # Lazy auto-refresh: the window rolled over since this row's
            # accumulator was last touched, so the charge was restored.
            bucket[0] = epoch
            bucket[1] = 0.0
        return bucket

    def deposit(
        self, bank: int, row: int, units: float, epoch: int, now_ns: int
    ) -> List[FlipEvent]:
        """Add ``units`` of disturbance to (bank, row); return new flips."""
        if units <= 0:
            return []
        if row < 0 or row >= self.geometry.rows_per_bank:
            return []
        bucket = self._bucket(bank, row, epoch)
        before = bucket[1]
        after = before + units
        bucket[1] = after
        self.total_deposits += 1
        flips: List[FlipEvent] = []
        for cell in self.vulnerable_cells(bank, row):
            if crosses(before, cell.threshold, after):
                flips.append(
                    FlipEvent(
                        bank=bank,
                        row=row,
                        bit_offset=cell.bit_offset,
                        from_value=cell.from_value,
                        at_ns=now_ns,
                    )
                )
        self.total_flip_events += len(flips)
        return flips

    def _fused_add(self, bank: int, row: int, amount: float,
                   epoch: int) -> None:
        bucket = self._bucket(bank, row, epoch)
        bucket[1] += amount

    def heal(self, bank: int, row: int) -> None:
        """Refresh (recharge) a row: accumulated disturbance is cleared."""
        key = (bank, row)
        bucket = self._acc.get(key)
        if bucket is not None:
            bucket[1] = 0.0

    def accumulated(self, bank: int, row: int, epoch: int) -> float:
        """Disturbance units accumulated by (bank, row) in ``epoch``."""
        key = (bank, row)
        bucket = self._acc.get(key)
        if bucket is None or bucket[0] != epoch:
            return 0.0
        return bucket[1]

    def vulnerable_accumulated(self, epoch: int) -> Dict[Tuple[int, int], float]:
        """Nonzero ``epoch`` accumulators of rows that can actually flip.

        The canonical cross-core fingerprint: accumulators of rows with
        no vulnerable cells are subject to the fused-add ULP relaxation,
        so equivalence (dense == dict == scalar) is asserted over
        vulnerable rows only, and zero entries are dropped because the
        stores materialise them differently (a dict bucket exists only
        once touched; a dense slot always exists).
        """
        return {
            key: bucket[1]
            for key, bucket in self._acc.items()
            if bucket[0] == epoch and bucket[1] != 0.0
            and self.is_vulnerable(*key)
        }

    # ---------------------------------------------------- batched kernel
    def hammer_kernel(self, resolved, *, epoch: int, now_ns: int,
                      per_act_ns: int, window: int, origin: str,
                      trr_on, recent):
        """Accumulator core of :meth:`DramModule.hammer_batch`.

        ``resolved`` is a list of ``((bank, row), count)`` pairs with
        positive counts.  Returns ``(flips, acts, now_end, bank_totals,
        bank_last)`` and updates the deposit/flip counters; the module
        applies the flips, advances the clock and updates bank state.
        The speed comes from aggregating per-(bank, row) work:

        * victims that can actually flip — and every aggressor row, and
          every victim when ChipTRR is enabled (its mid-batch refreshes
          interleave with deposits) — are replayed deposit-by-deposit,
          preserving flip ordering via per-cell threshold crossings;
        * the remaining victims are invulnerable bookkeeping-only rows:
          their accumulators take one fused ``weight * total_count`` add
          per aggressor at the end of the batch (the sanctioned
          last-ULP relaxation, see DESIGN.md), and pending sums are
          dropped at refresh-epoch rollovers exactly as the scalar
          path's lazy heal discards them.
        """
        from itertools import repeat

        trr_enabled = trr_on is not None
        aggressors = {key for key, _ in resolved}
        acc = self._acc
        now = now_ns
        boundary = (epoch + 1) * window

        # Per-aggressor plans.  Exact victims get their bucket resolved
        # up front (the first scalar deposit would create it with the
        # same epoch anyway); summed victims are flushed at the end.
        plans = {}
        for key in aggressors:
            bank, row = key
            exact = []   # (bucket, weight, cells, first_threshold, victim)
            summed = []  # ((bank, victim), weight)
            for victim, weight, cells in self.victim_plan(bank, row):
                if cells or (bank, victim) in aggressors or trr_enabled:
                    bucket = self._bucket(bank, victim, epoch)
                    first = cells[0].threshold if cells else 0.0
                    exact.append((bucket, weight, cells, first, victim))
                else:
                    summed.append(((bank, victim), weight))
            plans[key] = [None, exact, summed, 0, len(exact) + len(summed)]
        for key in aggressors:
            # Own-row heal target: only a bucket that exists by now can
            # ever be healed during the batch (heal never creates one).
            plans[key][0] = acc.get(key)

        flips: List[FlipEvent] = []
        deposits = 0
        acts = 0
        bank_totals: Dict[int, int] = {}
        bank_last: Dict[int, int] = {}
        recent_append = recent.append
        recent_extend = recent.extend
        infinity = float("inf")
        i = 0
        n_items = len(resolved)
        while i < n_items:
            item = resolved[i]
            key, count = item
            step = count * per_act_ns
            j = i + 1
            if not trr_enabled and step > 0:
                # Runs of identical items (the hammer-loop shape) replay
                # through tight per-victim accumulator loops below.
                while j < n_items and resolved[j] == item:
                    j += 1
            bank, row = key
            plan = plans[key]
            if j == i + 1:
                # Single item (or ChipTRR interleaving): per-item replay.
                if now >= boundary:
                    epoch = now // window
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        # The scalar path's lazy heal would discard these
                        # old-epoch sums at the victims' next touch.
                        p[3] = 0
                own = plan[0]
                if own is not None:
                    own[1] = 0.0
                for bucket, weight, cells, first, victim in plan[1]:
                    if bucket[0] != epoch:
                        bucket[0] = epoch
                        bucket[1] = 0.0
                    before = bucket[1]
                    after = before + weight * count
                    bucket[1] = after
                    if cells and after >= first:
                        for cell in cells:
                            if before < cell.threshold <= after:
                                flips.append(FlipEvent(
                                    bank=bank,
                                    row=victim,
                                    bit_offset=cell.bit_offset,
                                    from_value=cell.from_value,
                                    at_ns=now,
                                ))
                plan[3] += count
                deposits += plan[4]
                if trr_enabled:
                    trr_on(bank, row, count, epoch, now)
                recent_append((bank, row, origin))
                acts += count
                now += step
                bank_totals[bank] = bank_totals.get(bank, 0) + count
                bank_last[bank] = row
                i = j
                continue
            # Run fast path: r identical activations of one aggressor in
            # a row.  No other aggressor activates inside the run, so no
            # heal interleaves: each victim accumulator takes the same
            # sequential adds as the scalar loop (walked in a tight loop
            # per victim), the aggressor's own per-item heal collapses to
            # one idempotent heal, and cell-less victims — invulnerable
            # rows — take the sanctioned fused add.  Flips are re-sorted
            # into scalar (item-major, victim-minor) order by their
            # strictly increasing timestamps.
            remaining = j - i
            own = plan[0]
            if own is not None:
                own[1] = 0.0
            exact = plan[1]
            per_run_deposits = plan[4]
            while remaining:
                if now >= boundary:
                    epoch = now // window
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        p[3] = 0
                # Items whose pre-item rollover check stays quiet: those
                # with now + k*step < boundary.
                r = (boundary - now + step - 1) // step
                if r > remaining:
                    r = remaining
                run_flips = []
                for e_idx, (bucket, weight, cells, first, victim) in (
                        enumerate(exact)):
                    if bucket[0] != epoch:
                        bucket[0] = epoch
                        bucket[1] = 0.0
                    add = weight * count
                    value = bucket[1]
                    if not cells:
                        value += add * r
                        bucket[1] = value
                        continue
                    at = now
                    for _ in range(r):
                        before = value
                        value += add
                        if value >= first:
                            for cell in cells:
                                if before < cell.threshold <= value:
                                    run_flips.append((at, e_idx, FlipEvent(
                                        bank=bank,
                                        row=victim,
                                        bit_offset=cell.bit_offset,
                                        from_value=cell.from_value,
                                        at_ns=at,
                                    )))
                            # Cells at or below the accumulator can never
                            # re-fire this epoch; track the next one up.
                            first = infinity
                            for cell in cells:
                                if cell.threshold > value:
                                    first = cell.threshold
                                    break
                        at += step
                    bucket[1] = value
                if run_flips:
                    run_flips.sort(key=lambda rf: (rf[0], rf[1]))
                    flips.extend(rf[2] for rf in run_flips)
                plan[3] += count * r
                deposits += per_run_deposits * r
                recent_extend(repeat((bank, row, origin), r))
                acts += count * r
                now += r * step
                remaining -= r
            bank_totals[bank] = bank_totals.get(bank, 0) + count * (j - i)
            bank_last[bank] = row
            i = j

        # Fused accumulator flush for the invulnerable summed victims.
        for plan in plans.values():
            pending = plan[3]
            if not pending:
                continue
            for vkey, weight in plan[2]:
                bucket = acc.get(vkey)
                if bucket is None:
                    acc[vkey] = [epoch, weight * pending]
                elif bucket[0] != epoch:
                    bucket[0] = epoch
                    bucket[1] = weight * pending
                else:
                    bucket[1] += weight * pending

        self.total_deposits += deposits
        self.total_flip_events += len(flips)
        return flips, acts, now, bank_totals, bank_last
