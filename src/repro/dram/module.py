"""The DRAM module facade: storage, timing, disturbance and TRR in one.

:class:`DramModule` is the single point through which every memory
transaction of the simulated machine flows (the CPU cache sits above it
and filters hits).  It owns

* the memory *contents*, stored sparsely per (bank, row) so that bit
  flips can be applied directly to the row a victim cell lives in;
* the per-bank row-buffer state (timing side channel, hammer semantics);
* the :class:`~repro.dram.disturbance.DisturbanceEngine` producing flips;
* the optional :class:`~repro.dram.chiptrr.ChipTrr` engine; and
* the shared :class:`~repro.clock.SimClock`, advanced by every
  transaction's latency.

Two access planes are provided:

* the **architectural** plane (:meth:`read`, :meth:`write`,
  :meth:`hammer`) — what the simulated CPU issues; it costs simulated
  time, activates rows and can flip bits; and
* the **instrumentation** plane (:meth:`raw_read`, :meth:`raw_write`) —
  used by test setup and by the evaluation's integrity checks; free and
  side-effect-less, like an electron microscope rather than a load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..clock import SimClock
from ..errors import DramError
from .address import AddressMapping
from .bank import BankState, RowBufferPolicy
from .chiptrr import ChipTrr, TrrParams
from .disturbance import DisturbanceEngine, DisturbanceParams, FlipEvent
from .geometry import DramGeometry, LINE_BYTES
from .remap import IdentityRemap, RowRemap
from .timing import DramTimings


class DramModule:
    """A simulated DRAM module with rowhammer physics."""

    def __init__(
        self,
        mapping: AddressMapping,
        timings: DramTimings,
        disturbance: DisturbanceParams,
        trr: TrrParams,
        clock: SimClock,
        row_policy: RowBufferPolicy = RowBufferPolicy.OPEN_PAGE,
        remap: Optional[RowRemap] = None,
    ) -> None:
        self.geometry: DramGeometry = mapping.geometry
        self.mapping = mapping
        self.timings = timings
        self.clock = clock
        self.row_policy = row_policy
        #: In-DRAM row remapping (Section III-A's "in-DRAM address
        #: remappings ... assumed to be available"): physical adjacency
        #: for the disturbance engine and the TRR, and the offline
        #: domain knowledge SoftTRR consumes.
        self.remap = remap or IdentityRemap(self.geometry.rows_per_bank)
        self.engine = DisturbanceEngine(self.geometry, disturbance,
                                        remap=self.remap)
        self.trr = ChipTrr(trr, self._heal_row, remap=self.remap)
        self._banks: List[BankState] = [BankState() for _ in range(self.geometry.num_banks)]
        self._rows: Dict[Tuple[int, int], bytearray] = {}
        self.flip_log: List[FlipEvent] = []
        self.applied_flips = 0
        self.reads = 0
        self.writes = 0
        self.total_activations = 0
        # PMU-visible activation samples: (bank, row, origin) of recent
        # activations.  "data" activations come from load/store misses
        # (PEBS can attribute them); "walk" activations come from the
        # page-table walker and are invisible to load sampling — the
        # reason ANVIL misses PThammer (Section II-C).
        from collections import deque
        self.recent_activations = deque(maxlen=4096)
        self.walk_origin = False

    # ------------------------------------------------------------ storage
    def _row_data(self, bank: int, row: int) -> bytearray:
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            data = bytearray(self.geometry.row_bytes)
            self._rows[key] = data
        return data

    def _heal_row(self, bank: int, row: int) -> None:
        """Refresh callback target (TRR / auto / SoftTRR-induced reads)."""
        if 0 <= row < self.geometry.rows_per_bank:
            self.engine.heal(bank, row)

    def _apply_flips(self, flips: List[FlipEvent]) -> None:
        for flip in flips:
            self.flip_log.append(flip)
            data = self._row_data(flip.bank, flip.row)
            byte_index, bit_index = divmod(flip.bit_offset, 8)
            current = (data[byte_index] >> bit_index) & 1
            if current == flip.from_value:
                data[byte_index] ^= 1 << bit_index
                self.applied_flips += 1

    # --------------------------------------------------------- activation
    def _epoch(self) -> int:
        return self.timings.refresh_epoch(self.clock.now_ns)

    def _transact_line(self, paddr: int) -> int:
        """One line-sized memory transaction; returns its latency in ns."""
        dram = self.mapping.phys_to_dram(paddr)
        bank_state = self._banks[dram.bank]
        activated = bank_state.access(dram.row, self.row_policy)
        if activated:
            latency = self.timings.conflict_latency_ns
            epoch = self._epoch()
            self._apply_flips(
                self.engine.on_activate(dram.bank, dram.row, 1, epoch, self.clock.now_ns)
            )
            self.trr.on_activate(dram.bank, dram.row, 1, epoch)
            self.total_activations += 1
            self.recent_activations.append(
                (dram.bank, dram.row,
                 "walk" if self.walk_origin else "data"))
        else:
            latency = self.timings.hit_latency_ns
        self.clock.advance(latency)
        return latency

    def hammer(self, paddr: int, count: int, origin: str = "data") -> None:
        """``count`` forced row activations of the row holding ``paddr``.

        Models a hammer loop that defeats the row buffer (alternating
        aggressors / clflush), so every iteration is a full conflict.
        Callers should keep ``count`` small (<= ~100 per call) and
        interleave aggressors, because the in-DRAM TRR tracker sees the
        batch as consecutive ACTs.  ``origin`` labels the PMU-visible
        samples: PThammer's page-walk activations pass ``"walk"``.
        """
        if count <= 0:
            return
        dram = self.mapping.phys_to_dram(paddr)
        bank_state = self._banks[dram.bank]
        bank_state.activations += count
        bank_state.open_row = dram.row if self.row_policy is RowBufferPolicy.OPEN_PAGE else None
        epoch = self._epoch()
        self._apply_flips(
            self.engine.on_activate(dram.bank, dram.row, count, epoch, self.clock.now_ns)
        )
        self.trr.on_activate(dram.bank, dram.row, count, epoch)
        self.total_activations += count
        self.recent_activations.append((dram.bank, dram.row, origin))
        self.clock.advance(count * self.timings.conflict_latency_ns)

    # ----------------------------------------------------- architectural
    def read(self, paddr: int, size: int) -> bytes:
        """Architectural read: activates rows, costs time, sees flips."""
        self.reads += 1
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            out.extend(data[start : start + chunk])
        return bytes(out)

    def write(self, paddr: int, payload: bytes) -> None:
        """Architectural write: activates rows, costs time."""
        self.writes += 1
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # --------------------------------------------------- instrumentation
    def raw_read(self, paddr: int, size: int) -> bytes:
        """Side-effect-free read for integrity checks and test setup."""
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._rows.get((dram.bank, dram.row))
            if data is None:
                out.extend(b"\x00" * chunk)
            else:
                start = dram.col + offset
                out.extend(data[start : start + chunk])
        return bytes(out)

    def raw_write(self, paddr: int, payload: bytes) -> None:
        """Side-effect-free write for test setup."""
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # ------------------------------------------------------------ helpers
    def _lines(self, paddr: int, size: int):
        """Split [paddr, paddr+size) into per-line (line_paddr, off, len)."""
        if size <= 0:
            raise DramError(f"access size must be positive, got {size}")
        if paddr < 0 or paddr + size > self.geometry.capacity_bytes:
            raise DramError(
                f"access [{paddr:#x}, +{size}) outside capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        end = paddr + size
        cursor = paddr
        while cursor < end:
            line_paddr = cursor & ~(LINE_BYTES - 1)
            offset = cursor - line_paddr
            chunk = min(LINE_BYTES - offset, end - cursor)
            yield line_paddr, offset, chunk
            cursor += chunk

    def refresh_row(self, bank: int, row: int) -> None:
        """Explicit refresh of one row (heals disturbance)."""
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        self._heal_row(bank, row)

    def row_accumulated(self, bank: int, row: int) -> float:
        """Current-epoch disturbance of a row (diagnostics)."""
        return self.engine.accumulated(bank, row, self._epoch())

    def bank_state(self, bank: int) -> BankState:
        """Row-buffer state of a bank (diagnostics/tests)."""
        self.geometry.check_bank(bank)
        return self._banks[bank]

    def flips_in_page(self, ppn: int) -> List[FlipEvent]:
        """Flip events whose bit landed inside the 4 KiB page ``ppn``.

        Used by the security evaluation to check page-table integrity the
        way the paper does ("by checking their integrity", Section V-A).
        """
        page_base = ppn << 12
        hits: List[FlipEvent] = []
        for flip in self.flip_log:
            # A row may be non-contiguous in physical space under
            # interleaved mappings, so resolve the flip's own line.
            col = (flip.bit_offset // 8) & ~(LINE_BYTES - 1)
            line_paddr = self.mapping.dram_to_phys(flip.bank, flip.row, col)
            byte_paddr = line_paddr + (flip.bit_offset // 8) % LINE_BYTES
            if page_base <= byte_paddr < page_base + 4096:
                hits.append(flip)
        return hits
