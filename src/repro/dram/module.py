"""The DRAM module facade: storage, timing, disturbance and TRR in one.

:class:`DramModule` is the single point through which every memory
transaction of the simulated machine flows (the CPU cache sits above it
and filters hits).  It owns

* the memory *contents*, stored sparsely per (bank, row) so that bit
  flips can be applied directly to the row a victim cell lives in;
* the per-bank row-buffer state (timing side channel, hammer semantics);
* the :class:`~repro.dram.disturbance.DisturbanceEngine` producing flips;
* the optional :class:`~repro.dram.chiptrr.ChipTrr` engine; and
* the shared :class:`~repro.clock.SimClock`, advanced by every
  transaction's latency.

Two access planes are provided:

* the **architectural** plane (:meth:`read`, :meth:`write`,
  :meth:`hammer`) — what the simulated CPU issues; it costs simulated
  time, activates rows and can flip bits; and
* the **instrumentation** plane (:meth:`raw_read`, :meth:`raw_write`) —
  used by test setup and by the evaluation's integrity checks; free and
  side-effect-less, like an electron microscope rather than a load.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, List, Optional, Tuple

from ..clock import SimClock
from ..errors import DramError
from .address import AddressMapping
from .bank import BankState, RowBufferPolicy
from .chiptrr import ChipTrr, TrrParams
from .disturbance import DisturbanceEngine, DisturbanceParams, FlipEvent
from .geometry import DramGeometry, LINE_BYTES
from .remap import IdentityRemap, RowRemap
from .timing import DramTimings


class DramModule:
    """A simulated DRAM module with rowhammer physics."""

    def __init__(
        self,
        mapping: AddressMapping,
        timings: DramTimings,
        disturbance: DisturbanceParams,
        trr: TrrParams,
        clock: SimClock,
        row_policy: RowBufferPolicy = RowBufferPolicy.OPEN_PAGE,
        remap: Optional[RowRemap] = None,
    ) -> None:
        self.geometry: DramGeometry = mapping.geometry
        self.mapping = mapping
        self.timings = timings
        self.clock = clock
        self.row_policy = row_policy
        #: In-DRAM row remapping (Section III-A's "in-DRAM address
        #: remappings ... assumed to be available"): physical adjacency
        #: for the disturbance engine and the TRR, and the offline
        #: domain knowledge SoftTRR consumes.
        self.remap = remap or IdentityRemap(self.geometry.rows_per_bank)
        self.engine = DisturbanceEngine(self.geometry, disturbance,
                                        remap=self.remap)
        self.trr = ChipTrr(trr, self._heal_row, remap=self.remap)
        self._banks: List[BankState] = [BankState() for _ in range(self.geometry.num_banks)]
        self._rows: Dict[Tuple[int, int], bytearray] = {}
        self.flip_log: List[FlipEvent] = []
        self.applied_flips = 0
        self.reads = 0
        self.writes = 0
        self.total_activations = 0
        # PMU-visible activation samples: (bank, row, origin) of recent
        # activations.  "data" activations come from load/store misses
        # (PEBS can attribute them); "walk" activations come from the
        # page-table walker and are invisible to load sampling — the
        # reason ANVIL misses PThammer (Section II-C).
        from collections import deque
        self.recent_activations = deque(maxlen=4096)
        self.walk_origin = False
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    # ------------------------------------------------------------ storage
    def _row_data(self, bank: int, row: int) -> bytearray:
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            data = bytearray(self.geometry.row_bytes)
            self._rows[key] = data
        return data

    def _heal_row(self, bank: int, row: int) -> None:
        """Refresh callback target (TRR / auto / SoftTRR-induced reads)."""
        if 0 <= row < self.geometry.rows_per_bank:
            self.engine.heal(bank, row)

    def _apply_flips(self, flips: List[FlipEvent]) -> None:
        trace = self.trace
        for flip in flips:
            self.flip_log.append(flip)
            if trace is not None:
                trace.emit("dram.flip", bank=flip.bank, row=flip.row,
                           bit_offset=flip.bit_offset, at_ns=flip.at_ns)
            data = self._row_data(flip.bank, flip.row)
            byte_index, bit_index = divmod(flip.bit_offset, 8)
            current = (data[byte_index] >> bit_index) & 1
            if current == flip.from_value:
                data[byte_index] ^= 1 << bit_index
                self.applied_flips += 1

    # --------------------------------------------------------- activation
    def _epoch(self) -> int:
        return self.timings.refresh_epoch(self.clock.now_ns)

    def _transact_line(self, paddr: int) -> int:
        """One line-sized memory transaction; returns its latency in ns."""
        dram = self.mapping.phys_to_dram(paddr)
        bank_state = self._banks[dram.bank]
        activated = bank_state.access(dram.row, self.row_policy)
        if activated:
            latency = self.timings.conflict_latency_ns
            epoch = self._epoch()
            self._apply_flips(
                self.engine.on_activate(dram.bank, dram.row, 1, epoch, self.clock.now_ns)
            )
            self.trr.on_activate(dram.bank, dram.row, 1, epoch)
            self.total_activations += 1
            self.recent_activations.append(
                (dram.bank, dram.row,
                 "walk" if self.walk_origin else "data"))
        else:
            latency = self.timings.hit_latency_ns
        self.clock.advance(latency)
        return latency

    def hammer_batch(
        self,
        items,
        origin: str = "data",
        extra_ns: int = 0,
    ) -> None:
        """Replay a sequence of :meth:`hammer` calls in one batched pass.

        ``items`` is a sequence of ``(paddr, count)`` pairs.  The batch
        is *semantically identical* to the scalar loop ::

            for paddr, count in items:
                self.hammer(paddr, count, origin=origin)
                self.clock.advance(count * extra_ns)

        — identical DRAM bytes, identical ``FlipEvent`` stream (including
        ``at_ns``), identical TRR/bank/engine counters and identical
        simulated time, as enforced by the differential equivalence
        suite.  The speed comes from aggregating per-(bank, row) work:

        * victims that can actually flip — and every aggressor row, and
          every victim when ChipTRR is enabled (its mid-batch refreshes
          interleave with deposits) — are replayed deposit-by-deposit,
          preserving flip ordering via per-cell threshold crossings;
        * the remaining victims are invulnerable bookkeeping-only rows:
          their accumulators take one fused ``weight * total_count`` add
          per aggressor at the end of the batch (the sanctioned
          last-ULP relaxation, see DESIGN.md), and pending sums are
          dropped at refresh-epoch rollovers exactly as the scalar
          path's lazy heal discards them.
        """
        timings = self.timings
        window = timings.refresh_window_ns
        per_act_ns = timings.conflict_latency_ns + extra_ns
        engine = self.engine
        trr_enabled = self.trr.params.enabled
        trr_on = self.trr.on_activate
        open_page = self.row_policy is RowBufferPolicy.OPEN_PAGE
        recent_append = self.recent_activations.append

        resolved = []  # ((bank, row), count) with count > 0
        paddr_cache: Dict[int, Tuple[int, int]] = {}
        for paddr, count in items:
            if count <= 0:
                continue
            key = paddr_cache.get(paddr)
            if key is None:
                dram = self.mapping.phys_to_dram(paddr)
                key = (dram.bank, dram.row)
                paddr_cache[paddr] = key
            resolved.append((key, count))
        if not resolved:
            return
        trace = self.trace
        span_start = (trace.span_begin("dram.hammer_batch")
                      if trace is not None else 0)

        aggressors = {key for key, _ in resolved}
        acc = engine._acc
        now = self.clock.now_ns
        start_ns = now
        epoch = timings.refresh_epoch(now)
        boundary = (epoch + 1) * window

        # Per-aggressor plans.  Exact victims get their bucket resolved
        # up front (the first scalar deposit would create it with the
        # same epoch anyway); summed victims are flushed at the end.
        plans = {}
        for key in aggressors:
            bank, row = key
            exact = []   # (bucket, weight, cells, first_threshold, victim)
            summed = []  # ((bank, victim), weight)
            for victim, weight, cells in engine.victim_plan(bank, row):
                if cells or (bank, victim) in aggressors or trr_enabled:
                    bucket = engine._bucket(bank, victim, epoch)
                    first = cells[0].threshold if cells else 0.0
                    exact.append((bucket, weight, cells, first, victim))
                else:
                    summed.append(((bank, victim), weight))
            plans[key] = [None, exact, summed, 0, len(exact) + len(summed)]
        for key in aggressors:
            # Own-row heal target: only a bucket that exists by now can
            # ever be healed during the batch (heal never creates one).
            plans[key][0] = acc.get(key)

        flips: List[FlipEvent] = []
        deposits = 0
        acts = 0
        bank_totals: Dict[int, int] = {}
        bank_last: Dict[int, int] = {}
        recent_extend = self.recent_activations.extend
        infinity = float("inf")
        i = 0
        n_items = len(resolved)
        while i < n_items:
            item = resolved[i]
            key, count = item
            step = count * per_act_ns
            j = i + 1
            if not trr_enabled and step > 0:
                # Runs of identical items (the hammer-loop shape) replay
                # through tight per-victim accumulator loops below.
                while j < n_items and resolved[j] == item:
                    j += 1
            bank, row = key
            plan = plans[key]
            if j == i + 1:
                # Single item (or ChipTRR interleaving): per-item replay.
                if now >= boundary:
                    epoch = timings.refresh_epoch(now)
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        # The scalar path's lazy heal would discard these
                        # old-epoch sums at the victims' next touch.
                        p[3] = 0
                own = plan[0]
                if own is not None:
                    own[1] = 0.0
                for bucket, weight, cells, first, victim in plan[1]:
                    if bucket[0] != epoch:
                        bucket[0] = epoch
                        bucket[1] = 0.0
                    before = bucket[1]
                    after = before + weight * count
                    bucket[1] = after
                    if cells and after >= first:
                        for cell in cells:
                            if before < cell.threshold <= after:
                                flips.append(FlipEvent(
                                    bank=bank,
                                    row=victim,
                                    bit_offset=cell.bit_offset,
                                    from_value=cell.from_value,
                                    at_ns=now,
                                ))
                plan[3] += count
                deposits += plan[4]
                if trr_enabled:
                    trr_on(bank, row, count, epoch)
                recent_append((bank, row, origin))
                acts += count
                now += step
                bank_totals[bank] = bank_totals.get(bank, 0) + count
                bank_last[bank] = row
                i = j
                continue
            # Run fast path: r identical activations of one aggressor in
            # a row.  No other aggressor activates inside the run, so no
            # heal interleaves: each victim accumulator takes the same
            # sequential adds as the scalar loop (walked in a tight loop
            # per victim), the aggressor's own per-item heal collapses to
            # one idempotent heal, and cell-less victims — invulnerable
            # rows — take the sanctioned fused add.  Flips are re-sorted
            # into scalar (item-major, victim-minor) order by their
            # strictly increasing timestamps.
            remaining = j - i
            own = plan[0]
            if own is not None:
                own[1] = 0.0
            exact = plan[1]
            per_run_deposits = plan[4]
            while remaining:
                if now >= boundary:
                    epoch = timings.refresh_epoch(now)
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        p[3] = 0
                # Items whose pre-item rollover check stays quiet: those
                # with now + k*step < boundary.
                r = (boundary - now + step - 1) // step
                if r > remaining:
                    r = remaining
                run_flips = []
                for e_idx, (bucket, weight, cells, first, victim) in (
                        enumerate(exact)):
                    if bucket[0] != epoch:
                        bucket[0] = epoch
                        bucket[1] = 0.0
                    add = weight * count
                    value = bucket[1]
                    if not cells:
                        value += add * r
                        bucket[1] = value
                        continue
                    at = now
                    for _ in range(r):
                        before = value
                        value += add
                        if value >= first:
                            for cell in cells:
                                if before < cell.threshold <= value:
                                    run_flips.append((at, e_idx, FlipEvent(
                                        bank=bank,
                                        row=victim,
                                        bit_offset=cell.bit_offset,
                                        from_value=cell.from_value,
                                        at_ns=at,
                                    )))
                            # Cells at or below the accumulator can never
                            # re-fire this epoch; track the next one up.
                            first = infinity
                            for cell in cells:
                                if cell.threshold > value:
                                    first = cell.threshold
                                    break
                        at += step
                    bucket[1] = value
                if run_flips:
                    run_flips.sort(key=lambda rf: (rf[0], rf[1]))
                    flips.extend(rf[2] for rf in run_flips)
                plan[3] += count * r
                deposits += per_run_deposits * r
                recent_extend(repeat((bank, row, origin), r))
                acts += count * r
                now += r * step
                remaining -= r
            bank_totals[bank] = bank_totals.get(bank, 0) + count * (j - i)
            bank_last[bank] = row
            i = j

        # Fused accumulator flush for the invulnerable summed victims.
        for plan in plans.values():
            pending = plan[3]
            if not pending:
                continue
            for vkey, weight in plan[2]:
                bucket = acc.get(vkey)
                if bucket is None:
                    acc[vkey] = [epoch, weight * pending]
                elif bucket[0] != epoch:
                    bucket[0] = epoch
                    bucket[1] = weight * pending
                else:
                    bucket[1] += weight * pending

        engine.total_deposits += deposits
        engine.total_flip_events += len(flips)
        self._apply_flips(flips)
        self.total_activations += acts

        for bank, total in bank_totals.items():
            state = self._banks[bank]
            state.activations += total
            state.open_row = bank_last[bank] if open_page else None

        self.clock.advance(now - start_ns)
        if trace is not None:
            trace.emit("dram.activate", count=acts, origin=origin, batched=1)
            trace.emit("dram.deposit", count=deposits)
            trace.span_end("dram.hammer_batch", span_start)

    def access_batch(self, paddrs) -> None:
        """Batched line transactions: ``for p in paddrs:
        self._transact_line(p)``, with consecutive repeats of the same
        line collapsed into a :meth:`BankState.hit_run` under the
        open-page policy (a repeat of the just-opened row is always a
        row-buffer hit, so no disturbance/TRR work is involved)."""
        n = len(paddrs)
        open_page = self.row_policy is RowBufferPolicy.OPEN_PAGE
        hit_ns = self.timings.hit_latency_ns
        i = 0
        while i < n:
            paddr = paddrs[i]
            j = i + 1
            while j < n and paddrs[j] == paddr:
                j += 1
            run = j - i
            self._transact_line(paddr)
            if run > 1:
                dram = self.mapping.phys_to_dram(paddr)
                state = self._banks[dram.bank]
                if open_page and state.open_row == dram.row:
                    state.hit_run(dram.row, run - 1)
                    self.clock.advance((run - 1) * hit_ns)
                else:
                    for _ in range(run - 1):
                        self._transact_line(paddr)
            i = j

    def write_run(self, paddr: int, payload: bytes, count: int) -> bool:
        """Replay ``count`` identical architectural writes of ``payload``.

        Equivalent to ``for _ in range(count): self.write(paddr,
        payload)`` when every line of the span is a row-buffer hit for
        the whole run; returns False (having changed nothing) when that
        cannot be guaranteed — closed-page policy, a line whose row is
        not open, or two different rows of one bank in the span (they
        would conflict-ping-pong).  The caller then falls back to the
        scalar path.
        """
        if count <= 0:
            return True
        if self.row_policy is not RowBufferPolicy.OPEN_PAGE:
            return False
        plan = []
        bank_rows: Dict[int, int] = {}
        for line_paddr, _offset, _chunk in self._lines(paddr, len(payload)):
            dram = self.mapping.phys_to_dram(line_paddr)
            state = self._banks[dram.bank]
            if state.open_row != dram.row:
                return False
            seen = bank_rows.get(dram.bank)
            if seen is not None and seen != dram.row:
                return False
            bank_rows[dram.bank] = dram.row
            plan.append((state, dram.row))
        for state, row in plan:
            state.hit_run(row, count)
        self.writes += count
        self.raw_write(paddr, payload)  # same bytes every repetition
        self.clock.advance(len(plan) * count * self.timings.hit_latency_ns)
        return True

    def hammer(self, paddr: int, count: int, origin: str = "data") -> None:
        """``count`` forced row activations of the row holding ``paddr``.

        Models a hammer loop that defeats the row buffer (alternating
        aggressors / clflush), so every iteration is a full conflict.
        Callers should keep ``count`` small (<= ~100 per call) and
        interleave aggressors, because the in-DRAM TRR tracker sees the
        batch as consecutive ACTs.  ``origin`` labels the PMU-visible
        samples: PThammer's page-walk activations pass ``"walk"``.
        """
        if count <= 0:
            return
        dram = self.mapping.phys_to_dram(paddr)
        trace = self.trace
        if trace is not None:
            trace.emit("dram.activate", bank=dram.bank, row=dram.row,
                       count=count, origin=origin)
        bank_state = self._banks[dram.bank]
        bank_state.activations += count
        bank_state.open_row = dram.row if self.row_policy is RowBufferPolicy.OPEN_PAGE else None
        epoch = self._epoch()
        deposits_before = self.engine.total_deposits
        self._apply_flips(
            self.engine.on_activate(dram.bank, dram.row, count, epoch, self.clock.now_ns)
        )
        if trace is not None:
            trace.emit("dram.deposit",
                       count=self.engine.total_deposits - deposits_before)
        self.trr.on_activate(dram.bank, dram.row, count, epoch)
        self.total_activations += count
        self.recent_activations.append((dram.bank, dram.row, origin))
        self.clock.advance(count * self.timings.conflict_latency_ns)

    # ----------------------------------------------------- architectural
    def read(self, paddr: int, size: int) -> bytes:
        """Architectural read: activates rows, costs time, sees flips."""
        self.reads += 1
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            out.extend(data[start : start + chunk])
        return bytes(out)

    def write(self, paddr: int, payload: bytes) -> None:
        """Architectural write: activates rows, costs time."""
        self.writes += 1
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # --------------------------------------------------- instrumentation
    def raw_read(self, paddr: int, size: int) -> bytes:
        """Side-effect-free read for integrity checks and test setup."""
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._rows.get((dram.bank, dram.row))
            if data is None:
                out.extend(b"\x00" * chunk)
            else:
                start = dram.col + offset
                out.extend(data[start : start + chunk])
        return bytes(out)

    def raw_write(self, paddr: int, payload: bytes) -> None:
        """Side-effect-free write for test setup."""
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # ------------------------------------------------------------ helpers
    def _lines(self, paddr: int, size: int):
        """Split [paddr, paddr+size) into per-line (line_paddr, off, len)."""
        if size <= 0:
            raise DramError(f"access size must be positive, got {size}")
        if paddr < 0 or paddr + size > self.geometry.capacity_bytes:
            raise DramError(
                f"access [{paddr:#x}, +{size}) outside capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        end = paddr + size
        cursor = paddr
        while cursor < end:
            line_paddr = cursor & ~(LINE_BYTES - 1)
            offset = cursor - line_paddr
            chunk = min(LINE_BYTES - offset, end - cursor)
            yield line_paddr, offset, chunk
            cursor += chunk

    def refresh_row(self, bank: int, row: int) -> None:
        """Explicit refresh of one row (heals disturbance)."""
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        self._heal_row(bank, row)

    def row_accumulated(self, bank: int, row: int) -> float:
        """Current-epoch disturbance of a row (diagnostics)."""
        return self.engine.accumulated(bank, row, self._epoch())

    def bank_state(self, bank: int) -> BankState:
        """Row-buffer state of a bank (diagnostics/tests)."""
        self.geometry.check_bank(bank)
        return self._banks[bank]

    def flips_in_page(self, ppn: int) -> List[FlipEvent]:
        """Flip events whose bit landed inside the 4 KiB page ``ppn``.

        Used by the security evaluation to check page-table integrity the
        way the paper does ("by checking their integrity", Section V-A).
        """
        page_base = ppn << 12
        hits: List[FlipEvent] = []
        for flip in self.flip_log:
            # A row may be non-contiguous in physical space under
            # interleaved mappings, so resolve the flip's own line.
            col = (flip.bit_offset // 8) & ~(LINE_BYTES - 1)
            line_paddr = self.mapping.dram_to_phys(flip.bank, flip.row, col)
            byte_paddr = line_paddr + (flip.bit_offset // 8) % LINE_BYTES
            if page_base <= byte_paddr < page_base + 4096:
                hits.append(flip)
        return hits
