"""The DRAM module facade: storage, timing, disturbance and TRR in one.

:class:`DramModule` is the single point through which every memory
transaction of the simulated machine flows (the CPU cache sits above it
and filters hits).  It owns

* the memory *contents*, stored sparsely per (bank, row) so that bit
  flips can be applied directly to the row a victim cell lives in;
* the per-bank row-buffer state (timing side channel, hammer semantics);
* the :class:`~repro.dram.disturbance.DisturbanceEngine` producing flips;
* the optional :class:`~repro.dram.chiptrr.ChipTrr` engine; and
* the shared :class:`~repro.clock.SimClock`, advanced by every
  transaction's latency.

Two access planes are provided:

* the **architectural** plane (:meth:`read`, :meth:`write`,
  :meth:`hammer`) — what the simulated CPU issues; it costs simulated
  time, activates rows and can flip bits; and
* the **instrumentation** plane (:meth:`raw_read`, :meth:`raw_write`) —
  used by test setup and by the evaluation's integrity checks; free and
  side-effect-less, like an electron microscope rather than a load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..batching import dense_enabled
from ..clock import SimClock
from ..errors import DramError
from .address import AddressMapping
from .bank import BankState, RowBufferPolicy
from .chiptrr import ChipTrr, TrrParams
from .dense import DenseDisturbanceEngine
from .disturbance import DisturbanceEngine, DisturbanceParams, FlipEvent
from .feed import ActivationFeed, RefreshActuator
from .geometry import DramGeometry, LINE_BYTES
from .remap import IdentityRemap, RowRemap
from .timing import DramTimings


def _detect_period(items) -> Optional[int]:
    """Smallest period ``p <= 64`` such that ``items`` repeats its first
    ``p`` entries (the last repetition may be partial) — else ``None``.

    Runs on the *raw* ``(paddr, count)`` items before any paddr
    resolution: hammer kits build their streams by list multiplication,
    so the repeated tuples are the *same objects* and both the candidate
    probe and the whole-stream shift-compare run at C speed on identity
    checks inside ``list.__eq__``.
    """
    n = len(items)
    first = items[0]
    candidates = []
    limit = min(64, n - 1)
    for k in range(1, limit + 1):
        if items[k] == first:
            candidates.append(k)
            if len(candidates) == 3:
                break
    for p in candidates:
        if items[p:] == items[:-p]:
            return p
    return None


class DramModule:
    """A simulated DRAM module with rowhammer physics."""

    def __init__(
        self,
        mapping: AddressMapping,
        timings: DramTimings,
        disturbance: DisturbanceParams,
        trr: TrrParams,
        clock: SimClock,
        row_policy: RowBufferPolicy = RowBufferPolicy.OPEN_PAGE,
        remap: Optional[RowRemap] = None,
        dense: Optional[bool] = None,
    ) -> None:
        self.geometry: DramGeometry = mapping.geometry
        self.mapping = mapping
        self.timings = timings
        self.clock = clock
        self.row_policy = row_policy
        #: In-DRAM row remapping (Section III-A's "in-DRAM address
        #: remappings ... assumed to be available"): physical adjacency
        #: for the disturbance engine and the TRR, and the offline
        #: domain knowledge SoftTRR consumes.
        self.remap = remap or IdentityRemap(self.geometry.rows_per_bank)
        # Accumulator store: the array-backed dense core by default, the
        # original dict core when dense is False (or REPRO_DENSE=0).
        # Both are bit-identical in every observable; the dict core is
        # kept as the differential baseline for the generative harness.
        if dense is None:
            dense = dense_enabled()
        engine_cls = DenseDisturbanceEngine if dense else DisturbanceEngine
        self.engine = engine_cls(self.geometry, disturbance,
                                 remap=self.remap)
        # The three defense layers meet here: every activation is
        # published through the feed (observation), subscribed trackers
        # decide who to refresh (policy), and the shared actuator heals
        # (actuation).  The profile's ChipTRR subscribes like any other
        # tracker; zoo trackers join via ``feed.subscribe`` at defense
        # install time.
        self.actuator = RefreshActuator(self._heal_row, remap=self.remap)
        self.feed = ActivationFeed(self.actuator)
        self.trr = ChipTrr(trr, remap=self.remap)
        if trr.enabled:
            self.feed.subscribe(self.trr)
        self._banks: List[BankState] = [BankState() for _ in range(self.geometry.num_banks)]
        self._rows: Dict[Tuple[int, int], bytearray] = {}
        self.flip_log: List[FlipEvent] = []
        self.applied_flips = 0
        self.reads = 0
        self.writes = 0
        self.total_activations = 0
        # PMU-visible activation samples: (bank, row, origin) of recent
        # activations.  "data" activations come from load/store misses
        # (PEBS can attribute them); "walk" activations come from the
        # page-table walker and are invisible to load sampling — the
        # reason ANVIL misses PThammer (Section II-C).
        from collections import deque
        self.recent_activations = deque(maxlen=4096)
        self.walk_origin = False
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    # ------------------------------------------------------------ storage
    def _row_data(self, bank: int, row: int) -> bytearray:
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            data = bytearray(self.geometry.row_bytes)
            self._rows[key] = data
        return data

    def _heal_row(self, bank: int, row: int) -> None:
        """Refresh callback target (TRR / auto / SoftTRR-induced reads)."""
        if 0 <= row < self.geometry.rows_per_bank:
            self.engine.heal(bank, row)

    def _apply_flips(self, flips: List[FlipEvent]) -> None:
        trace = self.trace
        for flip in flips:
            self.flip_log.append(flip)
            if trace is not None:
                trace.emit("dram.flip", bank=flip.bank, row=flip.row,
                           bit_offset=flip.bit_offset, at_ns=flip.at_ns)
            data = self._row_data(flip.bank, flip.row)
            byte_index, bit_index = divmod(flip.bit_offset, 8)
            current = (data[byte_index] >> bit_index) & 1
            if current == flip.from_value:
                data[byte_index] ^= 1 << bit_index
                self.applied_flips += 1

    # --------------------------------------------------------- activation
    def _epoch(self) -> int:
        return self.timings.refresh_epoch(self.clock.now_ns)

    def _transact_line(self, paddr: int) -> int:
        """One line-sized memory transaction; returns its latency in ns."""
        dram = self.mapping.phys_to_dram(paddr)
        bank_state = self._banks[dram.bank]
        activated = bank_state.access(dram.row, self.row_policy)
        if activated:
            latency = self.timings.conflict_latency_ns
            epoch = self._epoch()
            self._apply_flips(
                self.engine.on_activate(dram.bank, dram.row, 1, epoch, self.clock.now_ns)
            )
            feed = self.feed
            if feed.active:
                feed.publish(dram.bank, dram.row, 1, epoch,
                             self.clock.now_ns)
            self.total_activations += 1
            self.recent_activations.append(
                (dram.bank, dram.row,
                 "walk" if self.walk_origin else "data"))
        else:
            latency = self.timings.hit_latency_ns
        self.clock.advance(latency)
        return latency

    def hammer_batch(
        self,
        items,
        origin: str = "data",
        extra_ns: int = 0,
    ) -> None:
        """Replay a sequence of :meth:`hammer` calls in one batched pass.

        ``items`` is a sequence of ``(paddr, count)`` pairs.  The batch
        is *semantically identical* to the scalar loop ::

            for paddr, count in items:
                self.hammer(paddr, count, origin=origin)
                self.clock.advance(count * extra_ns)

        — identical DRAM bytes, identical ``FlipEvent`` stream (including
        ``at_ns``), identical TRR/bank/engine counters and identical
        simulated time, as enforced by the differential equivalence
        suite and the generative harness.  Two engine kernels do the
        aggregation (the module owns resolution and the epilogue):

        * the generic kernel (``engine.hammer_kernel``) replays
          deposit-by-deposit any victim that can actually flip — and
          every aggressor row, and every victim when a tracker rides
          the activation feed (its mid-batch refreshes interleave with
          deposits) — while
          invulnerable bookkeeping-only rows take one fused
          ``weight * total_count`` add per aggressor at the end of the
          batch (the sanctioned last-ULP relaxation, see DESIGN.md),
          with pending sums dropped at refresh-epoch rollovers exactly
          as the scalar path's lazy heal discards them;
        * when the raw item stream is periodic (the shape every hammer
          loop emits) and the engine supports it, the closed-form
          periodic kernel (``engine.hammer_periodic``) replays whole
          aggressor cycles per refresh-epoch segment instead of per
          item.
        """
        if not isinstance(items, list):
            items = list(items)
        if not items:
            return
        timings = self.timings
        window = timings.refresh_window_ns
        per_act_ns = timings.conflict_latency_ns + extra_ns
        engine = self.engine
        feed = self.feed
        feed_active = feed.active
        paddr_cache: Dict[int, Tuple[int, int]] = {}

        # Periodic fast path: detected on the raw items (cheap identity
        # compares), so only the cycle's paddrs need resolving and no
        # per-item Python loop runs at all.
        cycle = None
        n_items = len(items)
        if (engine.supports_periodic and not feed_active
                and per_act_ns > 0 and n_items >= 8):
            p = _detect_period(items)
            if p is not None and all(c > 0 for _paddr, c in items[:p]):
                cycle = []
                for paddr, count in items[:p]:
                    key = paddr_cache.get(paddr)
                    if key is None:
                        dram = self.mapping.phys_to_dram(paddr)
                        key = (dram.bank, dram.row)
                        paddr_cache[paddr] = key
                    cycle.append((key, count))

        if cycle is None:
            resolved = []  # ((bank, row), count) with count > 0
            for paddr, count in items:
                if count <= 0:
                    continue
                key = paddr_cache.get(paddr)
                if key is None:
                    dram = self.mapping.phys_to_dram(paddr)
                    key = (dram.bank, dram.row)
                    paddr_cache[paddr] = key
                resolved.append((key, count))
            if not resolved:
                return

        trace = self.trace
        span_start = (trace.span_begin("dram.hammer_batch")
                      if trace is not None else 0)
        start_ns = self.clock.now_ns
        epoch = timings.refresh_epoch(start_ns)
        deposits_before = engine.total_deposits

        if cycle is not None:
            flips, acts, now_end, bank_totals, bank_last = (
                engine.hammer_periodic(
                    cycle, n_items,
                    epoch=epoch, now_ns=start_ns, per_act_ns=per_act_ns,
                    window=window, origin=origin,
                    recent=self.recent_activations))
        else:
            flips, acts, now_end, bank_totals, bank_last = (
                engine.hammer_kernel(
                    resolved,
                    epoch=epoch, now_ns=start_ns, per_act_ns=per_act_ns,
                    window=window, origin=origin,
                    trr_on=feed.publish if feed_active else None,
                    recent=self.recent_activations))

        self._apply_flips(flips)
        self.total_activations += acts
        open_page = self.row_policy is RowBufferPolicy.OPEN_PAGE
        for bank, total in bank_totals.items():
            self._banks[bank].activate_run(bank_last[bank], total, open_page)
        self.clock.advance(now_end - start_ns)
        if trace is not None:
            trace.emit("dram.activate", count=acts, origin=origin, batched=1)
            trace.emit("dram.deposit",
                       count=engine.total_deposits - deposits_before)
            trace.span_end("dram.hammer_batch", span_start)

    def access_batch(self, paddrs) -> None:
        """Batched line transactions: ``for p in paddrs:
        self._transact_line(p)``, with consecutive repeats of the same
        line collapsed into a :meth:`BankState.hit_run` under the
        open-page policy (a repeat of the just-opened row is always a
        row-buffer hit, so no disturbance/TRR work is involved)."""
        n = len(paddrs)
        open_page = self.row_policy is RowBufferPolicy.OPEN_PAGE
        hit_ns = self.timings.hit_latency_ns
        i = 0
        while i < n:
            paddr = paddrs[i]
            j = i + 1
            while j < n and paddrs[j] == paddr:
                j += 1
            run = j - i
            self._transact_line(paddr)
            if run > 1:
                dram = self.mapping.phys_to_dram(paddr)
                state = self._banks[dram.bank]
                if open_page and state.open_row == dram.row:
                    state.hit_run(dram.row, run - 1)
                    self.clock.advance((run - 1) * hit_ns)
                else:
                    for _ in range(run - 1):
                        self._transact_line(paddr)
            i = j

    def write_run(self, paddr: int, payload: bytes, count: int) -> bool:
        """Replay ``count`` identical architectural writes of ``payload``.

        Equivalent to ``for _ in range(count): self.write(paddr,
        payload)`` when every line of the span is a row-buffer hit for
        the whole run; returns False (having changed nothing) when that
        cannot be guaranteed — closed-page policy, a line whose row is
        not open, or two different rows of one bank in the span (they
        would conflict-ping-pong).  The caller then falls back to the
        scalar path.
        """
        if count <= 0:
            return True
        if self.row_policy is not RowBufferPolicy.OPEN_PAGE:
            return False
        plan = []
        bank_rows: Dict[int, int] = {}
        for line_paddr, _offset, _chunk in self._lines(paddr, len(payload)):
            dram = self.mapping.phys_to_dram(line_paddr)
            state = self._banks[dram.bank]
            if state.open_row != dram.row:
                return False
            seen = bank_rows.get(dram.bank)
            if seen is not None and seen != dram.row:
                return False
            bank_rows[dram.bank] = dram.row
            plan.append((state, dram.row))
        for state, row in plan:
            state.hit_run(row, count)
        self.writes += count
        self.raw_write(paddr, payload)  # same bytes every repetition
        self.clock.advance(len(plan) * count * self.timings.hit_latency_ns)
        return True

    def hammer(self, paddr: int, count: int, origin: str = "data") -> None:
        """``count`` forced row activations of the row holding ``paddr``.

        Models a hammer loop that defeats the row buffer (alternating
        aggressors / clflush), so every iteration is a full conflict.
        Callers should keep ``count`` small (<= ~100 per call) and
        interleave aggressors, because the in-DRAM TRR tracker sees the
        batch as consecutive ACTs.  ``origin`` labels the PMU-visible
        samples: PThammer's page-walk activations pass ``"walk"``.
        """
        if count <= 0:
            return
        dram = self.mapping.phys_to_dram(paddr)
        trace = self.trace
        if trace is not None:
            trace.emit("dram.activate", bank=dram.bank, row=dram.row,
                       count=count, origin=origin)
        bank_state = self._banks[dram.bank]
        bank_state.activations += count
        bank_state.open_row = dram.row if self.row_policy is RowBufferPolicy.OPEN_PAGE else None
        epoch = self._epoch()
        deposits_before = self.engine.total_deposits
        self._apply_flips(
            self.engine.on_activate(dram.bank, dram.row, count, epoch, self.clock.now_ns)
        )
        if trace is not None:
            trace.emit("dram.deposit",
                       count=self.engine.total_deposits - deposits_before)
        feed = self.feed
        if feed.active:
            feed.publish(dram.bank, dram.row, count, epoch,
                         self.clock.now_ns)
        self.total_activations += count
        self.recent_activations.append((dram.bank, dram.row, origin))
        self.clock.advance(count * self.timings.conflict_latency_ns)

    # ----------------------------------------------------- architectural
    def read(self, paddr: int, size: int) -> bytes:
        """Architectural read: activates rows, costs time, sees flips."""
        self.reads += 1
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            out.extend(data[start : start + chunk])
        return bytes(out)

    def write(self, paddr: int, payload: bytes) -> None:
        """Architectural write: activates rows, costs time."""
        self.writes += 1
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            self._transact_line(line_paddr)
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # --------------------------------------------------- instrumentation
    def raw_read(self, paddr: int, size: int) -> bytes:
        """Side-effect-free read for integrity checks and test setup."""
        out = bytearray()
        for line_paddr, offset, chunk in self._lines(paddr, size):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._rows.get((dram.bank, dram.row))
            if data is None:
                out.extend(b"\x00" * chunk)
            else:
                start = dram.col + offset
                out.extend(data[start : start + chunk])
        return bytes(out)

    def raw_write(self, paddr: int, payload: bytes) -> None:
        """Side-effect-free write for test setup."""
        pos = 0
        for line_paddr, offset, chunk in self._lines(paddr, len(payload)):
            dram = self.mapping.phys_to_dram(line_paddr)
            data = self._row_data(dram.bank, dram.row)
            start = dram.col + offset
            data[start : start + chunk] = payload[pos : pos + chunk]
            pos += chunk

    # ------------------------------------------------------------ helpers
    def _lines(self, paddr: int, size: int):
        """Split [paddr, paddr+size) into per-line (line_paddr, off, len)."""
        if size <= 0:
            raise DramError(f"access size must be positive, got {size}")
        if paddr < 0 or paddr + size > self.geometry.capacity_bytes:
            raise DramError(
                f"access [{paddr:#x}, +{size}) outside capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        end = paddr + size
        cursor = paddr
        while cursor < end:
            line_paddr = cursor & ~(LINE_BYTES - 1)
            offset = cursor - line_paddr
            chunk = min(LINE_BYTES - offset, end - cursor)
            yield line_paddr, offset, chunk
            cursor += chunk

    def refresh_row(self, bank: int, row: int) -> None:
        """Explicit refresh of one row (heals disturbance).

        Routed through the shared actuator, so SoftTRR's row-refresher
        reads, kernel-driven refreshes and tracker-issued TRR all land
        in one refresh account.
        """
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        self.actuator.refresh_row(bank, row)

    def row_accumulated(self, bank: int, row: int) -> float:
        """Current-epoch disturbance of a row (diagnostics)."""
        return self.engine.accumulated(bank, row, self._epoch())

    def bank_state(self, bank: int) -> BankState:
        """Row-buffer state of a bank (diagnostics/tests)."""
        self.geometry.check_bank(bank)
        return self._banks[bank]

    def flips_in_page(self, ppn: int) -> List[FlipEvent]:
        """Flip events whose bit landed inside the 4 KiB page ``ppn``.

        Used by the security evaluation to check page-table integrity the
        way the paper does ("by checking their integrity", Section V-A).
        """
        page_base = ppn << 12
        hits: List[FlipEvent] = []
        for flip in self.flip_log:
            # A row may be non-contiguous in physical space under
            # interleaved mappings, so resolve the flip's own line.
            col = (flip.bit_offset // 8) & ~(LINE_BYTES - 1)
            line_paddr = self.mapping.dram_to_phys(flip.bank, flip.row, col)
            byte_paddr = line_paddr + (flip.bit_offset // 8) % LINE_BYTES
            if page_base <= byte_paddr < page_base + 4096:
                hits.append(flip)
        return hits
