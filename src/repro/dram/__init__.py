"""DRAM substrate: geometry, address mapping, disturbance, TRR, timing.

This package simulates the DRAM the paper's machines hammer:

* :mod:`repro.dram.geometry` — banks/rows/columns arithmetic.
* :mod:`repro.dram.timing` — DDR3/DDR4 timing parameters (tRC, tCAS,
  the 64 ms auto-refresh window).
* :mod:`repro.dram.address` — invertible physical<->DRAM address mapping
  with DRAMA-style XOR bank functions.
* :mod:`repro.dram.disturbance` — the rowhammer charge-disturbance fault
  model (victims up to 6 rows away, per Kim et al. [26]).
* :mod:`repro.dram.chiptrr` — the in-DRAM target-row-refresh sampler that
  TRRespass-style many-sided hammering bypasses.
* :mod:`repro.dram.bank` — per-bank row-buffer state (the timing side
  channel DRAMA exploits).
* :mod:`repro.dram.module` — the :class:`~repro.dram.module.DramModule`
  facade tying it all together and holding the memory contents.
* :mod:`repro.dram.drama` — the timing-side-channel reverse-engineering
  tool that recovers the address mapping, as SoftTRR's offline step does.
"""

from .geometry import DramGeometry
from .timing import DramTimings
from .address import AddressMapping, DramAddress, linear_mapping, interleaved_mapping
from .disturbance import (
    DisturbanceCore,
    DisturbanceEngine,
    DisturbanceParams,
    FlipEvent,
    VulnerableCell,
)
from .dense import DenseDisturbanceEngine
from .chiptrr import TrrParams, ChipTrr
from .feed import ActivationFeed, RefreshActuator, Tracker
from .bank import BankState, RowBufferPolicy
from .remap import FoldedRemap, IdentityRemap, RowRemap, build_remap
from .module import DramModule
from .drama import DramaProbe, reverse_engineer_mapping

__all__ = [
    "DramGeometry",
    "DramTimings",
    "AddressMapping",
    "DramAddress",
    "linear_mapping",
    "interleaved_mapping",
    "DisturbanceCore",
    "DisturbanceEngine",
    "DenseDisturbanceEngine",
    "DisturbanceParams",
    "FlipEvent",
    "VulnerableCell",
    "TrrParams",
    "ChipTrr",
    "ActivationFeed",
    "RefreshActuator",
    "Tracker",
    "BankState",
    "RowBufferPolicy",
    "RowRemap",
    "IdentityRemap",
    "FoldedRemap",
    "build_remap",
    "DramModule",
    "DramaProbe",
    "reverse_engineer_mapping",
]
