"""Invertible physical<->DRAM address mapping with XOR bank functions.

Real Intel memory controllers map physical-address bits to the DRAM
(bank, row, column) tuple with undocumented XOR functions; DRAMA [39],
DRAMDig [50] and others reverse-engineered them via the row-buffer timing
side channel.  SoftTRR consumes such a mapping as offline domain
knowledge (Section IV-A: "we leverage a publicly available tool, called
DRAMA, to reverse-engineer its DRAM address mapping, and embed the
mapping into the kernel").

The model here is the standard one from that literature:

* every *column* bit and every *row* bit is a plain physical-address bit
  (``col_bits`` / ``row_bits`` list the positions, LSB first);
* every *bank* bit is the XOR (parity) of a set of physical-address bits
  (``bank_masks``).

To let the Row Refresher reconstruct a physical address from a
(bank, row) pair — Section IV-D: "the refresher leverages them to
reconstruct a physical address" — the mapping must be invertible.  We
guarantee that by requiring each bank mask to contain exactly one
*base bit* that is not a row bit, not a column bit, and not in any other
mask; inversion then scatters the row/column bits and solves each base
bit from the requested bank parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Sequence, Tuple

from ..errors import AddressMappingError
from .geometry import DramGeometry, LINE_SHIFT


class DramAddress(NamedTuple):
    """A DRAM location: (bank, row, column-byte-offset)."""

    bank: int
    row: int
    col: int


def _parity(value: int) -> int:
    """Parity (XOR of all bits) of ``value``."""
    return bin(value).count("1") & 1


def _gather_bits(value: int, positions: Sequence[int]) -> int:
    """Extract the bits of ``value`` at ``positions`` into a packed int."""
    out = 0
    for i, pos in enumerate(positions):
        out |= ((value >> pos) & 1) << i
    return out


def _scatter_bits(packed: int, positions: Sequence[int]) -> int:
    """Inverse of :func:`_gather_bits`."""
    out = 0
    for i, pos in enumerate(positions):
        out |= ((packed >> i) & 1) << pos
    return out


@dataclass(frozen=True)
class AddressMapping:
    """An invertible physical-address to DRAM-address mapping.

    Attributes
    ----------
    geometry:
        The module geometry the mapping must cover.
    bank_masks:
        One XOR mask per bank-index bit (LSB first).  Bank bit *i* of a
        physical address ``p`` is ``parity(p & bank_masks[i])``.
    row_bits / col_bits:
        Physical-address bit positions forming the row / column index
        (LSB first).
    """

    geometry: DramGeometry
    bank_masks: Tuple[int, ...]
    row_bits: Tuple[int, ...]
    col_bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        geo = self.geometry
        if len(self.bank_masks) != geo.bank_bits:
            raise AddressMappingError(
                f"need {geo.bank_bits} bank masks, got {len(self.bank_masks)}"
            )
        if len(self.row_bits) != geo.row_bits:
            raise AddressMappingError(
                f"need {geo.row_bits} row bits, got {len(self.row_bits)}"
            )
        if len(self.col_bits) != geo.col_bits:
            raise AddressMappingError(
                f"need {geo.col_bits} column bits, got {len(self.col_bits)}"
            )
        all_addr_bits = set(range(geo.addr_bits))
        row_set, col_set = set(self.row_bits), set(self.col_bits)
        if row_set & col_set:
            raise AddressMappingError("row and column bits overlap")
        # The low LINE_SHIFT bits must be column bits and must not appear
        # in any bank mask, so one cache line never straddles banks/rows.
        for low in range(LINE_SHIFT):
            if low not in col_set:
                raise AddressMappingError(
                    f"bit {low} must be a column bit (cache-line contiguity)"
                )
        for mask in self.bank_masks:
            if mask & ((1 << LINE_SHIFT) - 1):
                raise AddressMappingError("bank masks may not use sub-line bits")
        # Find the base bit of every mask and check invertibility.
        base_bits: List[int] = []
        used = row_set | col_set
        for i, mask in enumerate(self.bank_masks):
            if mask == 0:
                raise AddressMappingError(f"bank mask {i} is empty")
            candidates = [b for b in range(geo.addr_bits) if (mask >> b) & 1 and b not in used]
            outside = [b for b in range(mask.bit_length()) if (mask >> b) & 1 and b >= geo.addr_bits]
            if outside:
                raise AddressMappingError(
                    f"bank mask {i} uses bit {outside[0]} beyond the module's "
                    f"{geo.addr_bits} address bits"
                )
            if len(candidates) != 1:
                raise AddressMappingError(
                    f"bank mask {i} must have exactly one base bit outside the "
                    f"row/column bits and other masks, found {candidates}"
                )
            base_bits.append(candidates[0])
            used.add(candidates[0])
        if used != all_addr_bits:
            missing = sorted(all_addr_bits - used)
            raise AddressMappingError(f"address bits {missing} are unmapped")
        object.__setattr__(self, "_base_bits", tuple(base_bits))

    # ------------------------------------------------------------ forward
    def phys_to_dram(self, paddr: int) -> DramAddress:
        """Map a physical byte address to its DRAM location."""
        if not 0 <= paddr < self.geometry.capacity_bytes:
            raise AddressMappingError(
                f"paddr {paddr:#x} outside module capacity "
                f"{self.geometry.capacity_bytes:#x}"
            )
        bank = 0
        for i, mask in enumerate(self.bank_masks):
            bank |= _parity(paddr & mask) << i
        row = _gather_bits(paddr, self.row_bits)
        col = _gather_bits(paddr, self.col_bits)
        return DramAddress(bank=bank, row=row, col=col)

    # ------------------------------------------------------------ inverse
    def dram_to_phys(self, bank: int, row: int, col: int = 0) -> int:
        """Reconstruct the physical address of a DRAM location.

        This is exactly what SoftTRR's Row Refresher does before reading
        the row through the direct-physical map (Section IV-D).
        """
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        if not 0 <= col < self.geometry.row_bytes:
            raise AddressMappingError(f"column {col} out of range")
        paddr = _scatter_bits(row, self.row_bits) | _scatter_bits(col, self.col_bits)
        for i, mask in enumerate(self.bank_masks):
            base = self._base_bits[i]  # type: ignore[attr-defined]
            want = (bank >> i) & 1
            have = _parity(paddr & (mask & ~(1 << base)))
            if want ^ have:
                paddr |= 1 << base
        return paddr

    # ------------------------------------------------------------ helpers
    def row_of(self, paddr: int) -> Tuple[int, int]:
        """(bank, row) of a physical address — the hammer-relevant part."""
        dram = self.phys_to_dram(paddr)
        return dram.bank, dram.row

    def same_bank(self, paddr_a: int, paddr_b: int) -> bool:
        """Whether two physical addresses share a DRAM bank."""
        return self.phys_to_dram(paddr_a).bank == self.phys_to_dram(paddr_b).bank

    def same_row(self, paddr_a: int, paddr_b: int) -> bool:
        """Whether two physical addresses share both bank and row."""
        a, b = self.phys_to_dram(paddr_a), self.phys_to_dram(paddr_b)
        return a.bank == b.bank and a.row == b.row

    def page_rows(self, ppn: int) -> List[Tuple[int, int]]:
        """Distinct (bank, row) pairs that the 4 KiB page ``ppn`` touches.

        Pages can span multiple banks on interleaved mappings, which is
        why SoftTRR's ``pt_row_rbtree`` nodes can carry several
        ``bank_struct`` entries (Table I, [50]).
        """
        seen: List[Tuple[int, int]] = []
        base = ppn << 12
        for off in range(0, 4096, 1 << LINE_SHIFT):
            dram = self.phys_to_dram(base + off)
            key = (dram.bank, dram.row)
            if key not in seen:
                seen.append(key)
        return seen

    def row_pages(self, bank: int, row: int) -> List[int]:
        """Distinct PPNs with at least one line in (bank, row).

        Used by SoftTRR's collector to enumerate the pages that live in a
        row adjacent to a page-table row.
        """
        seen: List[int] = []
        for col in range(0, self.geometry.row_bytes, 1 << LINE_SHIFT):
            ppn = self.dram_to_phys(bank, row, col) >> 12
            if ppn not in seen:
                seen.append(ppn)
        return seen


def linear_mapping(geometry: DramGeometry) -> AddressMapping:
    """The simplest sane mapping: column low, bank middle, row high.

    Each bank bit additionally XORs in one row bit (the classic
    "rank/bank address mirroring" structure DRAMA finds on real DDR3),
    which makes the mapping non-trivial to reverse-engineer while staying
    invertible.
    """
    geo = geometry
    col_bits = tuple(range(geo.col_bits))
    bank_base = tuple(range(geo.col_bits, geo.col_bits + geo.bank_bits))
    row_bits = tuple(range(geo.col_bits + geo.bank_bits, geo.addr_bits))
    masks = []
    for i, base in enumerate(bank_base):
        mask = 1 << base
        if i < len(row_bits):
            mask |= 1 << row_bits[i]
        masks.append(mask)
    return AddressMapping(
        geometry=geo, bank_masks=tuple(masks), row_bits=row_bits, col_bits=col_bits
    )


def interleaved_mapping(geometry: DramGeometry) -> AddressMapping:
    """A mapping whose lowest bank bit is physical bit 6.

    With a bank function at bit 6, consecutive cache lines alternate
    between two banks, so a single 4 KiB page *spans two banks* — the
    behaviour [50] documents and the reason a SoftTRR ``pt_row_rbtree``
    node may hold multiple ``bank_struct`` entries.  Used for the DDR4
    performance-testbed profile.
    """
    geo = geometry
    if geo.bank_bits < 1:
        raise AddressMappingError("interleaved mapping needs at least 2 banks")
    # Column bits: 0..5 (sub-line) plus bits 7.. up to the column width.
    col_bits = tuple(range(LINE_SHIFT)) + tuple(
        range(LINE_SHIFT + 1, LINE_SHIFT + 1 + geo.col_bits - LINE_SHIFT)
    )
    next_free = col_bits[-1] + 1
    bank_base = (LINE_SHIFT,) + tuple(range(next_free, next_free + geo.bank_bits - 1))
    row_start = next_free + geo.bank_bits - 1
    row_bits = tuple(range(row_start, row_start + geo.row_bits))
    masks = []
    for i, base in enumerate(bank_base):
        mask = 1 << base
        if i < len(row_bits):
            mask |= 1 << row_bits[i]
        masks.append(mask)
    return AddressMapping(
        geometry=geo, bank_masks=tuple(masks), row_bits=row_bits, col_bits=col_bits
    )
