"""In-DRAM target row refresh (ChipTRR) and its many-sided blind spot.

DDR4 modules ship a TRR engine that watches ACT commands with a small
per-bank tracker and refreshes the neighbours of rows it believes are
being hammered.  TRRespass [16] showed the tracker capacity is tiny
(a handful of rows), so *many-sided* patterns that cycle through more
aggressors than the tracker can hold are never counted and hammer
freely.  The paper names this limited tracking as ChipTRR's root cause
of failure and designs SoftTRR around it (Section I).

We model the tracker as a Misra-Gries heavy-hitter summary with
``tracker_slots`` counters per bank, which reproduces the observed
phenomenology exactly:

* **1- or 2-sided hammer** — every aggressor gets a slot, its counter
  climbs, and once it reaches ``trr_threshold`` the engine refreshes the
  aggressor's neighbourhood (out to ``refresh_distance`` rows).  Victims
  are recharged long before ``base_flip_threshold`` — no flips.
* **k-sided hammer with k > tracker_slots** — each untracked arrival
  decrements every counter (the Misra-Gries eviction step), so no
  counter ever approaches the threshold and no targeted refresh is
  issued.  The aggressors hammer as if TRR did not exist.

Counters reset at each auto-refresh epoch (lazy, like the disturbance
accumulators).

Since the layered-tracker refactor ChipTRR is just one
:class:`~repro.dram.feed.Tracker` riding the module's
:class:`~repro.dram.feed.ActivationFeed`: :meth:`observe` updates the
Misra-Gries summary and queues victim rows, which the feed actuates
through the shared :class:`~repro.dram.feed.RefreshActuator` — at
exactly the points in the activation stream the pre-refactor bespoke
wiring healed them (the generative differential harness enforces
bit-identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigError
from .feed import Tracker


@dataclass(frozen=True)
class TrrParams:
    """ChipTRR configuration for one module profile."""

    enabled: bool = False
    tracker_slots: int = 2
    trr_threshold: int = 4_000
    refresh_distance: int = 6

    def __post_init__(self) -> None:
        if self.enabled:
            if self.tracker_slots < 1:
                raise ConfigError("TRR tracker needs at least one slot")
            if self.trr_threshold < 2:
                raise ConfigError("TRR threshold must be >= 2")
            if self.refresh_distance < 1:
                raise ConfigError("TRR refresh distance must be >= 1")


class ChipTrr(Tracker):
    """Per-bank Misra-Gries ACT tracker issuing targeted refreshes.

    As a feed subscriber the tracker only *queues* victims; the feed's
    actuator performs the heals.  ``refresh_row`` is the legacy
    direct-wiring escape hatch: tests that drive the tracker standalone
    pass a callable and use :meth:`on_activate`, which drains onto it.
    """

    name = "chiptrr"

    def __init__(
        self, params: TrrParams,
        refresh_row: Optional[Callable[[int, int], None]] = None,
        remap=None,
    ) -> None:
        super().__init__()
        self.params = params
        self._refresh_row = refresh_row
        #: The TRR engine is silicon: it refreshes the rows *physically*
        #: flanking the aggressor, translated through the module's
        #: internal remapping when one exists.
        self.remap = remap
        # bank -> [epoch, {row: count}]
        self._trackers: Dict[int, List] = {}
        self.targeted_refreshes = 0
        self.evictions = 0

    def _tracker(self, bank: int, epoch: int) -> Dict[int, int]:
        state = self._trackers.get(bank)
        if state is None:
            state = [epoch, {}]
            self._trackers[bank] = state
        elif state[0] != epoch:
            state[0] = epoch
            state[1] = {}
        return state[1]

    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        """Feed ``count`` ACTs of (bank, row) through the tracker."""
        if not self.params.enabled or count <= 0:
            return
        counters = self._tracker(bank, epoch)
        if row in counters:
            counters[row] += count
        elif len(counters) < self.params.tracker_slots:
            counters[row] = count
        else:
            # Misra-Gries eviction: an untracked arrival decrements every
            # counter; rows that hit zero lose their slot.  ``count``
            # arrivals decrement by ``count``.
            self.evictions += 1
            dead = []
            for tracked, value in counters.items():
                value -= count
                if value <= 0:
                    dead.append(tracked)
                else:
                    counters[tracked] = value
            for tracked in dead:
                del counters[tracked]
            return
        if counters[row] >= self.params.trr_threshold:
            counters[row] = 0
            self._issue_refresh(bank, row)

    def on_activate(self, bank: int, row: int, count: int, epoch: int) -> None:
        """Legacy direct-wiring entry: observe, then actuate locally.

        Only meaningful when the tracker was constructed with a
        ``refresh_row`` callable (standalone use in tests/diagnostics);
        feed-subscribed trackers are driven through ``observe`` and
        drained by the feed instead.
        """
        # Policy observation, not a metric mutation (RPR008's
        # ``.observe`` heuristic collides with the Tracker verb).
        self.observe(bank, row, count, epoch, 0)  # repro-lint: disable=RPR008
        pending = self.drain_refreshes()
        if self._refresh_row is not None:
            for victim_bank, victim_row in pending:
                self._refresh_row(victim_bank, victim_row)

    def _issue_refresh(self, bank: int, row: int) -> None:
        """Queue the suspected aggressor's neighbourhood for refresh."""
        self.targeted_refreshes += 1
        for distance in range(1, self.params.refresh_distance + 1):
            if self.remap is not None:
                for victim in self.remap.neighbors_at(row, distance):
                    self.queue_refresh(bank, victim)
            else:
                self.queue_refresh(bank, row - distance)
                self.queue_refresh(bank, row + distance)

    def tracked_rows(self, bank: int, epoch: int) -> Dict[int, int]:
        """Snapshot of the tracker for tests/diagnostics."""
        if not self.params.enabled:
            return {}
        return dict(self._tracker(bank, epoch))

    # ------------------------------------------------------- telemetry
    def counters(self) -> Dict[str, int]:
        return {
            "targeted_refreshes": self.targeted_refreshes,
            "evictions": self.evictions,
        }

    def sram_bits(self) -> int:
        # Per-bank: one (row address, ACT counter) pair per slot; DDR4
        # row addresses are ~16 bits and the counter must hold the
        # threshold.
        counter_bits = max(2, self.params.trr_threshold.bit_length())
        return self.params.tracker_slots * (16 + counter_bits)
