"""Array-backed dense disturbance core (the default accumulator store).

:class:`DenseDisturbanceEngine` replaces the dict-keyed accumulators of
:class:`~repro.dram.disturbance.DisturbanceEngine` with two flat
per-bank arrays indexed by row:

* ``array('d')`` — accumulated disturbance units, and
* ``array('q')`` — the refresh epoch the row was last deposited into
  (``-1`` = never touched, the equivalent of "no dict bucket").

The lazy auto-refresh semantics are byte-for-byte those of the dict
core: a row's value is only meaningful when its epoch tag matches the
current refresh epoch; a deposit into a stale-tagged row first rolls the
tag and zeroes the value; :meth:`heal` zeroes the value but — exactly
like the dict core's ``bucket[1] = 0.0`` — never touches the tag, so a
healed row still reads 0 in every epoch.

On top of the flat store sits :meth:`hammer_periodic`, the closed-form
kernel for the streams hammer loops actually issue (one-location,
double-sided, many-sided: a short aggressor cycle repeated thousands of
times).  Per refresh-epoch segment it classifies each victim row once
and replays whole cycles at C speed:

* invulnerable non-aggressor rows take one fused add for the whole span
  (the sanctioned last-ULP relaxation — such rows can never flip);
* vulnerable non-aggressor rows get the exact sequential float cumsum
  of their per-cycle deposit pattern (``numpy.cumsum`` when available,
  ``itertools.accumulate`` otherwise — both bit-identical to the scalar
  ``+=`` walk) and per-cell crossings located by binary search;
* aggressor-self rows (healed mid-cycle by their own activation) are
  simulated exactly for two cycles, after which every later cycle is a
  bit-identical replica (the post-heal end value is independent of the
  cycle's carry-in), so its flips are replicated instead of recomputed;
* cycle fragments at segment edges are replayed item-by-item.

Every flip keeps the scalar stream's exact ``(item, plan-entry, cell)``
order and its exact integer timestamp, recomputed per flip from the
item's global index — never incrementally accumulated.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from .disturbance import DisturbanceCore, DisturbanceParams, FlipEvent
from .geometry import DramGeometry
from .remap import RowRemap

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Minimum tiled-add count before the numpy cumsum pays for itself.
_NUMPY_MIN = 192


def _exact_cumsum(carry: float, adds: List[float], reps: int):
    """``[carry, carry+a0, carry+a0+a1, ...]`` over ``adds`` tiled
    ``reps`` times — bit-identical to a sequential float ``+=`` walk.

    Returns any indexable supporting ``bisect_left``-style search; entry
    ``i`` is the accumulator value after ``i`` deposits.
    """
    total = len(adds) * reps
    if _np is not None and total >= _NUMPY_MIN:
        arr = _np.empty(total + 1)
        arr[0] = carry
        if len(adds) == 1:
            arr[1:] = adds[0]
        else:
            arr[1:] = _np.tile(_np.asarray(adds), reps)
        _np.cumsum(arr, out=arr)
        return arr
    return list(accumulate(adds * reps, initial=carry))


def _first_reaching(cum, threshold: float) -> int:
    """Index of the first entry ``>= threshold`` (entries non-decreasing)."""
    if _np is not None and not isinstance(cum, list):
        return int(_np.searchsorted(cum, threshold, side="left"))
    return bisect_left(cum, threshold)


class DenseDisturbanceEngine(DisturbanceCore):
    """Disturbance engine over flat per-bank row arrays."""

    supports_periodic = True

    def __init__(self, geometry: DramGeometry, params: DisturbanceParams,
                 remap: Optional[RowRemap] = None) -> None:
        super().__init__(geometry, params, remap=remap)
        banks = geometry.num_banks
        #: Per-bank accumulated units, lazily allocated on first touch.
        self._values: List[Optional[array]] = [None] * banks
        #: Per-bank epoch tags (-1 = never deposited into).
        self._epochs: List[Optional[array]] = [None] * banks

    def _bank_arrays(self, bank: int) -> Tuple[array, array]:
        values = self._values[bank]
        if values is None:
            rows = self.geometry.rows_per_bank
            values = array("d", bytes(8 * rows))
            self._values[bank] = values
            self._epochs[bank] = array("q", [-1]) * rows
        return values, self._epochs[bank]

    # ------------------------------------------------------ accumulation
    def deposit(
        self, bank: int, row: int, units: float, epoch: int, now_ns: int
    ) -> List[FlipEvent]:
        """Add ``units`` of disturbance to (bank, row); return new flips."""
        if units <= 0:
            return []
        if row < 0 or row >= self.geometry.rows_per_bank:
            return []
        values, epochs = self._bank_arrays(bank)
        if epochs[row] != epoch:
            # Lazy auto-refresh: the window rolled over since this row's
            # accumulator was last touched, so the charge was restored.
            epochs[row] = epoch
            before = 0.0
        else:
            before = values[row]
        after = before + units
        values[row] = after
        self.total_deposits += 1
        flips: List[FlipEvent] = []
        for cell in self.vulnerable_cells(bank, row):
            if before < cell.threshold <= after:
                flips.append(
                    FlipEvent(
                        bank=bank,
                        row=row,
                        bit_offset=cell.bit_offset,
                        from_value=cell.from_value,
                        at_ns=now_ns,
                    )
                )
        self.total_flip_events += len(flips)
        return flips

    def _fused_add(self, bank: int, row: int, amount: float,
                   epoch: int) -> None:
        values, epochs = self._bank_arrays(bank)
        if epochs[row] != epoch:
            epochs[row] = epoch
            values[row] = amount
        else:
            values[row] += amount

    def heal(self, bank: int, row: int) -> None:
        """Refresh (recharge) a row: accumulated disturbance is cleared.

        Zeroes the value but leaves the epoch tag alone, matching the
        dict core (whose heal never creates or re-tags a bucket).
        """
        if not 0 <= bank < len(self._values):
            return
        values = self._values[bank]
        if values is not None and 0 <= row < len(values):
            values[row] = 0.0

    def accumulated(self, bank: int, row: int, epoch: int) -> float:
        """Disturbance units accumulated by (bank, row) in ``epoch``."""
        if not 0 <= bank < len(self._values):
            return 0.0
        values = self._values[bank]
        if values is None or not 0 <= row < len(values):
            return 0.0
        if self._epochs[bank][row] != epoch:
            return 0.0
        return values[row]

    def vulnerable_accumulated(self, epoch: int) -> Dict[Tuple[int, int], float]:
        """Nonzero ``epoch`` accumulators of rows that can actually flip.

        See :meth:`DisturbanceEngine.vulnerable_accumulated` — this is
        the cross-core fingerprint, identical across stores because
        vulnerable rows always take exact sequential float arithmetic.
        """
        result: Dict[Tuple[int, int], float] = {}
        for bank, values in enumerate(self._values):
            if values is None:
                continue
            epochs = self._epochs[bank]
            for row, value in enumerate(values):
                if (value != 0.0 and epochs[row] == epoch
                        and self.is_vulnerable(bank, row)):
                    result[(bank, row)] = value
        return result

    # ---------------------------------------------------- batched kernel
    def hammer_kernel(self, resolved, *, epoch: int, now_ns: int,
                      per_act_ns: int, window: int, origin: str,
                      trr_on, recent):
        """Dense twin of :meth:`DisturbanceEngine.hammer_kernel`.

        Same contract, same per-item/run structure, same fused-add
        bookkeeping for invulnerable victims — only the buckets are
        (values, epochs) array slots instead of dict-held lists.
        """
        from itertools import repeat

        trr_enabled = trr_on is not None
        aggressors = {key for key, _ in resolved}
        now = now_ns
        boundary = (epoch + 1) * window

        plans = {}
        for key in aggressors:
            bank, row = key
            values, epochs = self._bank_arrays(bank)
            exact = []   # (victim, weight, cells, first_threshold)
            summed = []  # (victim, weight)
            for victim, weight, cells in self.victim_plan(bank, row):
                if cells or (bank, victim) in aggressors or trr_enabled:
                    # Resolve the slot's epoch up front, as the first
                    # scalar deposit of the batch would.
                    if epochs[victim] != epoch:
                        epochs[victim] = epoch
                        values[victim] = 0.0
                    first = cells[0].threshold if cells else 0.0
                    exact.append((victim, weight, cells, first))
                else:
                    summed.append((victim, weight))
            plans[key] = [values, epochs, exact, summed, 0,
                          len(exact) + len(summed)]

        flips: List[FlipEvent] = []
        deposits = 0
        acts = 0
        bank_totals: Dict[int, int] = {}
        bank_last: Dict[int, int] = {}
        recent_append = recent.append
        recent_extend = recent.extend
        infinity = float("inf")
        i = 0
        n_items = len(resolved)
        while i < n_items:
            item = resolved[i]
            key, count = item
            step = count * per_act_ns
            j = i + 1
            if not trr_enabled and step > 0:
                while j < n_items and resolved[j] == item:
                    j += 1
            bank, row = key
            plan = plans[key]
            values, epochs = plan[0], plan[1]
            if j == i + 1:
                # Single item (or ChipTRR interleaving): per-item replay.
                if now >= boundary:
                    epoch = now // window
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        p[4] = 0
                values[row] = 0.0  # own heal (tag untouched)
                for victim, weight, cells, first in plan[2]:
                    if epochs[victim] != epoch:
                        epochs[victim] = epoch
                        before = 0.0
                    else:
                        before = values[victim]
                    after = before + weight * count
                    values[victim] = after
                    if cells and after >= first:
                        for cell in cells:
                            if before < cell.threshold <= after:
                                flips.append(FlipEvent(
                                    bank=bank,
                                    row=victim,
                                    bit_offset=cell.bit_offset,
                                    from_value=cell.from_value,
                                    at_ns=now,
                                ))
                plan[4] += count
                deposits += plan[5]
                if trr_enabled:
                    trr_on(bank, row, count, epoch, now)
                recent_append((bank, row, origin))
                acts += count
                now += step
                bank_totals[bank] = bank_totals.get(bank, 0) + count
                bank_last[bank] = row
                i = j
                continue
            # Run fast path, as in the dict core: tight per-victim loops
            # over r boundary-free identical items.
            remaining = j - i
            values[row] = 0.0
            exact = plan[2]
            per_run_deposits = plan[5]
            while remaining:
                if now >= boundary:
                    epoch = now // window
                    boundary = (epoch + 1) * window
                    for p in plans.values():
                        p[4] = 0
                r = (boundary - now + step - 1) // step
                if r > remaining:
                    r = remaining
                run_flips = []
                for e_idx, (victim, weight, cells, first) in (
                        enumerate(exact)):
                    if epochs[victim] != epoch:
                        epochs[victim] = epoch
                        value = 0.0
                    else:
                        value = values[victim]
                    add = weight * count
                    if not cells:
                        values[victim] = value + add * r
                        continue
                    at = now
                    for _ in range(r):
                        before = value
                        value += add
                        if value >= first:
                            for cell in cells:
                                if before < cell.threshold <= value:
                                    run_flips.append((at, e_idx, FlipEvent(
                                        bank=bank,
                                        row=victim,
                                        bit_offset=cell.bit_offset,
                                        from_value=cell.from_value,
                                        at_ns=at,
                                    )))
                            first = infinity
                            for cell in cells:
                                if cell.threshold > value:
                                    first = cell.threshold
                                    break
                        at += step
                    values[victim] = value
                if run_flips:
                    run_flips.sort(key=lambda rf: (rf[0], rf[1]))
                    flips.extend(rf[2] for rf in run_flips)
                plan[4] += count * r
                deposits += per_run_deposits * r
                recent_extend(repeat((bank, row, origin), r))
                acts += count * r
                now += r * step
                remaining -= r
            bank_totals[bank] = bank_totals.get(bank, 0) + count * (j - i)
            bank_last[bank] = row
            i = j

        # Fused accumulator flush for the invulnerable summed victims.
        for plan in plans.values():
            pending = plan[4]
            if not pending:
                continue
            values, epochs = plan[0], plan[1]
            for victim, weight in plan[3]:
                if epochs[victim] != epoch:
                    epochs[victim] = epoch
                    values[victim] = weight * pending
                else:
                    values[victim] += weight * pending

        self.total_deposits += deposits
        self.total_flip_events += len(flips)
        return flips, acts, now, bank_totals, bank_last

    # --------------------------------------------------- periodic kernel
    def hammer_periodic(self, cycle, n_items: int, *, epoch: int,
                        now_ns: int, per_act_ns: int, window: int,
                        origin: str, recent):
        """Closed-form replay of a periodic aggressor stream.

        ``cycle`` is the resolved period — ``((bank, row), count)`` with
        every count positive — and the full stream is ``cycle`` repeated
        to ``n_items`` items (the last repetition may be partial).
        Requires ``per_act_ns > 0`` and no ChipTRR (the module gates
        this).  Returns the same ``(flips, acts, now_end, bank_totals,
        bank_last)`` tuple as :meth:`hammer_kernel` and is observably
        identical to it.
        """
        p = len(cycle)
        prefix = [0] * (p + 1)
        for s, (_key, count) in enumerate(cycle):
            prefix[s + 1] = prefix[s] + count
        cycle_acts = prefix[p]

        # Per-victim schedules: (bank, vrow) -> (adds, heal_positions)
        # where adds is [(pos, e_idx, add_units, cells)] in deposit order.
        sched: Dict[Tuple[int, int], Tuple[list, list]] = {}
        plan_sizes = []
        for s, ((bank, row), count) in enumerate(cycle):
            self._bank_arrays(bank)
            rec = sched.get((bank, row))
            if rec is None:
                rec = sched[(bank, row)] = ([], [])
            rec[1].append(s)
            plan = self.victim_plan(bank, row)
            plan_sizes.append(len(plan))
            for e_idx, (victim, weight, cells) in enumerate(plan):
                vkey = (bank, victim)
                vrec = sched.get(vkey)
                if vrec is None:
                    vrec = sched[vkey] = ([], [])
                vrec[0].append((s, e_idx, weight * count, cells))

        full_cycles, rem = divmod(n_items, p)
        total_acts = full_cycles * cycle_acts + prefix[rem]

        def item_time(j: int) -> int:
            q, s = divmod(j, p)
            return now_ns + (q * cycle_acts + prefix[s]) * per_act_ns

        # keyed flips: (item_index, e_idx, cell_idx, FlipEvent)
        out: list = []
        j = 0
        while j < n_items:
            seg_epoch = item_time(j) // window
            boundary = (seg_epoch + 1) * window
            if item_time(n_items - 1) < boundary:
                j_end = n_items
            else:
                lo, hi = j + 1, n_items - 1
                while lo < hi:
                    mid = (lo + hi) // 2
                    if item_time(mid) >= boundary:
                        hi = mid
                    else:
                        lo = mid + 1
                j_end = lo
            self._periodic_segment(cycle, sched, j, j_end, seg_epoch,
                                   now_ns, per_act_ns, prefix,
                                   cycle_acts, out)
            j = j_end

        out.sort(key=lambda rec: (rec[0], rec[1], rec[2]))
        flips = [rec[3] for rec in out]

        # Deposit count is a pure function of the stream shape: one
        # deposit per victim-plan entry per item, epochs and flips aside.
        cycle_deposits = sum(plan_sizes)
        self.total_deposits += (full_cycles * cycle_deposits
                                + sum(plan_sizes[:rem]))
        self.total_flip_events += len(flips)

        bank_totals: Dict[int, int] = {}
        for s, ((bank, _row), count) in enumerate(cycle):
            per_cycle = full_cycles + (1 if s < rem else 0)
            if per_cycle:
                bank_totals[bank] = (bank_totals.get(bank, 0)
                                     + count * per_cycle)
        bank_last: Dict[int, int] = {}
        for back in range(1, min(p, n_items) + 1):
            bank, row = cycle[(n_items - back) % p][0]
            if bank not in bank_last:
                bank_last[bank] = row

        tail = min(n_items, getattr(recent, "maxlen", None) or n_items)
        tuples = [(bank, row, origin) for (bank, row), _count in cycle]
        recent.extend(tuples[j % p] for j in range(n_items - tail, n_items))

        now_end = now_ns + total_acts * per_act_ns
        return flips, total_acts, now_end, bank_totals, bank_last

    def _periodic_segment(self, cycle, sched, j_start: int, j_end: int,
                          epoch: int, now_ns: int, per_act_ns: int,
                          prefix, cycle_acts: int, out: list) -> None:
        """Replay items ``[j_start, j_end)`` — all in ``epoch``."""
        p = len(cycle)
        head_end = -(-j_start // p) * p  # first whole-cycle start
        if head_end > j_end:
            head_end = j_end
        span_cycles = (j_end - head_end) // p
        if span_cycles < 2:
            # Too short to amortise: plain per-item replay.
            self._replay_items(cycle, j_start, j_end, epoch, now_ns,
                               per_act_ns, prefix, cycle_acts, out)
            return
        tail_start = head_end + span_cycles * p
        self._replay_items(cycle, j_start, head_end, epoch, now_ns,
                           per_act_ns, prefix, cycle_acts, out)
        self._replay_span(cycle, sched, head_end // p, span_cycles, epoch,
                          now_ns, per_act_ns, prefix, cycle_acts, out)
        self._replay_items(cycle, tail_start, j_end, epoch, now_ns,
                           per_act_ns, prefix, cycle_acts, out)

    def _replay_items(self, cycle, j_start: int, j_end: int, epoch: int,
                      now_ns: int, per_act_ns: int, prefix,
                      cycle_acts: int, out: list) -> None:
        """Exact item-by-item replay (cycle fragments at segment edges)."""
        p = len(cycle)
        for j in range(j_start, j_end):
            q, s = divmod(j, p)
            (bank, row), count = cycle[s]
            values, epochs = self._bank_arrays(bank)
            values[row] = 0.0  # own heal
            at = now_ns + (q * cycle_acts + prefix[s]) * per_act_ns
            for e_idx, (victim, weight, cells) in enumerate(
                    self.victim_plan(bank, row)):
                if epochs[victim] != epoch:
                    epochs[victim] = epoch
                    before = 0.0
                else:
                    before = values[victim]
                after = before + weight * count
                values[victim] = after
                if cells and after >= cells[0].threshold:
                    for c_idx, cell in enumerate(cells):
                        if before < cell.threshold <= after:
                            out.append((j, e_idx, c_idx, FlipEvent(
                                bank=bank,
                                row=victim,
                                bit_offset=cell.bit_offset,
                                from_value=cell.from_value,
                                at_ns=at,
                            )))

    def _replay_span(self, cycle, sched, first_cycle: int, reps: int,
                     epoch: int, now_ns: int, per_act_ns: int, prefix,
                     cycle_acts: int, out: list) -> None:
        """Vectorized replay of ``reps`` whole cycles in one epoch."""
        p = len(cycle)
        for (bank, vrow), (adds, heals) in sched.items():
            values, epochs = self._bank_arrays(bank)
            if heals:
                if not adds:
                    # Heal-only row: idempotent zero, tag untouched.
                    values[vrow] = 0.0
                    continue
                self._replay_cyclic(bank, vrow, adds, heals, first_cycle,
                                    reps, epoch, now_ns, per_act_ns,
                                    prefix, cycle_acts, p, out)
                continue
            if epochs[vrow] != epoch:
                epochs[vrow] = epoch
                carry = 0.0
            else:
                carry = values[vrow]
            cells = adds[0][3]
            if not cells:
                # Invulnerable victim: fused add (sanctioned relaxation).
                values[vrow] = carry + sum(a for _s, _e, a, _c in adds) * reps
                continue
            # Vulnerable victim, no mid-cycle heal: the accumulator is a
            # strict cumsum of the tiled per-cycle deposit pattern.
            k = len(adds)
            cum = _exact_cumsum(carry, [a for _s, _e, a, _c in adds], reps)
            end_value = cum[len(cum) - 1]
            for c_idx, cell in enumerate(cells):
                threshold = cell.threshold
                if not carry < threshold <= end_value:
                    continue
                idx = _first_reaching(cum, threshold) - 1  # deposit index
                m, r = divmod(idx, k)
                s, e_idx = adds[r][0], adds[r][1]
                cyc = first_cycle + m
                out.append((cyc * p + s, e_idx, c_idx, FlipEvent(
                    bank=bank,
                    row=vrow,
                    bit_offset=cell.bit_offset,
                    from_value=cell.from_value,
                    at_ns=now_ns + (cyc * cycle_acts + prefix[s])
                    * per_act_ns,
                )))
            values[vrow] = float(end_value)

    def _replay_cyclic(self, bank: int, vrow: int, adds, heals,
                       first_cycle: int, reps: int, epoch: int,
                       now_ns: int, per_act_ns: int, prefix,
                       cycle_acts: int, p: int, out: list) -> None:
        """Aggressor-self victim: healed by its own activation(s) each
        cycle, possibly fed by other aggressors.

        The cycle's end value is the post-heal tail sum — independent of
        its carry-in — so after simulating cycles 1 and 2 exactly, every
        later cycle is a bit-identical replica of cycle 2 and only its
        flips (if any) need re-emitting at shifted items/timestamps.
        """
        values, epochs = self._bank_arrays(bank)
        # Per-cycle op list: heals (before that item's deposits) merged
        # with adds in scalar order.
        ops = sorted(
            [(s, -1, 0.0, None) for s in heals] + list(adds),
            key=lambda op: (op[0], op[1]))
        if epochs[vrow] != epoch:
            epochs[vrow] = epoch
            value = 0.0
        else:
            value = values[vrow]

        def run_cycle(value: float):
            fired = []  # (pos, e_idx, c_idx, cell)
            for s, e_idx, add, cells in ops:
                if e_idx < 0:
                    value = 0.0
                    continue
                before = value
                value += add
                if cells and value >= cells[0].threshold:
                    for c_idx, cell in enumerate(cells):
                        if before < cell.threshold <= value:
                            fired.append((s, e_idx, c_idx, cell))
            return value, fired

        def emit(cyc: int, fired) -> None:
            for s, e_idx, c_idx, cell in fired:
                out.append((cyc * p + s, e_idx, c_idx, FlipEvent(
                    bank=bank,
                    row=vrow,
                    bit_offset=cell.bit_offset,
                    from_value=cell.from_value,
                    at_ns=now_ns + (cyc * cycle_acts + prefix[s])
                    * per_act_ns,
                )))

        value, fired = run_cycle(value)
        emit(first_cycle, fired)
        if reps >= 2:
            steady = value
            value, fired = run_cycle(value)
            emit(first_cycle + 1, fired)
            if value == steady:
                # Replicate: identical carry-in -> identical cycle.
                if fired:
                    for m in range(2, reps):
                        emit(first_cycle + m, fired)
            else:  # pragma: no cover - defensive; heals pin the end value
                for m in range(2, reps):
                    value, fired = run_cycle(value)
                    emit(first_cycle + m, fired)
        values[vrow] = value
