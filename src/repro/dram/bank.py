"""Per-bank row-buffer state.

Each bank caches the most recently opened row in its row buffer.  A
transaction to the open row is a *hit* (tCAS); a transaction to any other
row is a *conflict* that precharges and re-activates (tRC) — and it is
the activation, not the data transfer, that disturbs neighbouring rows.

The hit/conflict latency gap is the timing side channel DRAMA [39]
exploits to reverse-engineer the address mapping, so the simulator keeps
this state faithfully.

Some memory controllers use a *closed-row* policy that precharges after
every access; on those systems even a single repeatedly-accessed row is
re-activated every time, which is what makes *one-location hammering*
[19] work.  The policy is a per-machine knob.
"""

from __future__ import annotations

import enum
from typing import Optional


class RowBufferPolicy(enum.Enum):
    """Controller row-buffer management policy."""

    #: Leave the row open until a conflict forces a precharge (common).
    OPEN_PAGE = "open"
    #: Precharge immediately after each access (enables one-location hammer).
    CLOSED_PAGE = "closed"


class BankState:
    """Mutable state of one bank: which row its buffer holds."""

    __slots__ = ("open_row", "activations", "hits")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.activations = 0
        self.hits = 0

    def access(self, row: int, policy: RowBufferPolicy) -> bool:
        """Record a transaction to ``row``; return True if it activated.

        Under the open-page policy an access to the already-open row is a
        buffer hit and does *not* re-activate (hence does not hammer).
        """
        if policy is RowBufferPolicy.OPEN_PAGE and self.open_row == row:
            self.hits += 1
            return False
        self.activations += 1
        self.open_row = None if policy is RowBufferPolicy.CLOSED_PAGE else row
        return True

    def hit_run(self, row: int, count: int) -> None:
        """Record ``count`` consecutive row-buffer hits on ``row``.

        Replay primitive for the batched access paths: equivalent to
        ``count`` :meth:`access` calls to the already-open row under the
        open-page policy.  The row must actually be open — calling this
        for any other row would silently mis-count activations, so it
        raises instead.
        """
        if count <= 0:
            return
        if self.open_row != row:
            raise ValueError(
                f"hit_run on row {row} but open row is {self.open_row}"
            )
        self.hits += count

    def activate_run(self, row: int, count: int, open_page: bool) -> None:
        """Record ``count`` forced activations ending on ``row``.

        Replay primitive for the batched hammer path: the batch epilogue
        credits each bank its total activation count and leaves the row
        buffer holding the bank's last-hammered row (open-page) or
        precharged (closed-page) — exactly the state ``count`` scalar
        :meth:`~repro.dram.module.DramModule.hammer` calls leave behind.
        """
        if count <= 0:
            return
        self.activations += count
        self.open_row = row if open_page else None

    def precharge(self) -> None:
        """Close the row buffer (e.g. at refresh)."""
        self.open_row = None
