"""In-DRAM row remapping (logical row address vs physical row position).

DRAM vendors internally scramble row addresses: the row index the memory
controller issues (the *logical* row) is not necessarily the row's
*physical* position in the mat, and rowhammer disturbance follows
physical adjacency.  The paper assumes this mapping is known: "The DRAM
address mappings and in-DRAM address remappings can be reverse-
engineered using prior works [54], [39], [50], [13] and they are assumed
to be available" (Section III-A).

Two models are provided:

* :class:`IdentityRemap` — logical == physical (many DIMMs; the default
  for all machine profiles).
* :class:`FoldedRemap` — the classic vendor scramble in which the middle
  pair of every 4-row group is swapped (logical 4k+1 <-> 4k+2), as
  observed in reverse-engineering work on Samsung DDR3 parts.

The disturbance engine and the in-DRAM TRR always operate in physical
space (they are the silicon).  SoftTRR must translate through the same
remap — it receives it as offline domain knowledge exactly like the
XOR bank functions — and the ablation in
``tests/core/test_remap_knowledge.py`` shows what happens when it
assumes identity on a folded module: it refreshes the wrong rows.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


class RowRemap:
    """Bijection between logical row indexes and physical positions."""

    name = "abstract"

    def __init__(self, rows_per_bank: int) -> None:
        if rows_per_bank <= 0:
            raise ConfigError("remap needs a positive row count")
        self.rows_per_bank = rows_per_bank

    def to_physical(self, logical: int) -> int:
        """Physical position of a logical row."""
        raise NotImplementedError

    def to_logical(self, physical: int) -> int:
        """Logical row stored at a physical position."""
        raise NotImplementedError

    # ------------------------------------------------------------ helpers
    def neighbors_at(self, logical: int, distance: int) -> List[int]:
        """Logical rows physically exactly ``distance`` away (clipped)."""
        physical = self.to_physical(logical)
        out: List[int] = []
        for candidate in (physical - distance, physical + distance):
            if 0 <= candidate < self.rows_per_bank:
                out.append(self.to_logical(candidate))
        return out

    def neighbors(self, logical: int, max_distance: int) -> List[int]:
        """Logical rows physically within ``max_distance`` (excl. self)."""
        out: List[int] = []
        for distance in range(1, max_distance + 1):
            out.extend(self.neighbors_at(logical, distance))
        return out

    def check_bijection(self) -> None:
        """Assert the remap is a bijection (used by tests/validation)."""
        seen = set()
        for logical in range(self.rows_per_bank):
            physical = self.to_physical(logical)
            if not 0 <= physical < self.rows_per_bank:
                raise ConfigError(
                    f"remap sends row {logical} out of range ({physical})")
            if physical in seen:
                raise ConfigError(f"remap collides at physical {physical}")
            seen.add(physical)
            if self.to_logical(physical) != logical:
                raise ConfigError(f"remap not invertible at row {logical}")


class IdentityRemap(RowRemap):
    """No internal scrambling: logical == physical."""

    name = "identity"

    def to_physical(self, logical: int) -> int:
        return logical

    def to_logical(self, physical: int) -> int:
        return physical


class FoldedRemap(RowRemap):
    """The 4-row fold: logical 4k+1 and 4k+2 swap physical positions.

    Self-inverse, so :meth:`to_physical` and :meth:`to_logical` are the
    same permutation — as on the real parts this models, where the
    scramble is a fixed address-line swap.
    """

    name = "folded"

    @staticmethod
    def _swap(row: int) -> int:
        return row ^ 0x3 if row % 4 in (1, 2) else row

    def to_physical(self, logical: int) -> int:
        return self._swap(logical)

    def to_logical(self, physical: int) -> int:
        return self._swap(physical)


REMAPS = {
    "identity": IdentityRemap,
    "folded": FoldedRemap,
}


def build_remap(kind: str, rows_per_bank: int) -> RowRemap:
    """Instantiate a remap by name."""
    try:
        cls = REMAPS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown remap kind {kind!r}; known: {sorted(REMAPS)}"
        ) from None
    return cls(rows_per_bank)
