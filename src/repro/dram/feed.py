"""The activation feed: observation and actuation seams for trackers.

The defense stack is layered in three (DESIGN.md "Defense
architecture"):

* **observation** — :class:`ActivationFeed`, the single choke point
  :class:`~repro.dram.module.DramModule` publishes every row activation
  through.  Any tracker can subscribe; the module's hot paths pay one
  ``feed.active`` test when no tracker is installed.
* **tracking policy** — :class:`Tracker` implementations (ChipTRR in
  :mod:`repro.dram.chiptrr`, the zoo in
  :mod:`repro.defenses.trackers`) that watch the feed and decide which
  rows to refresh.  Trackers never touch ``DramModule`` or
  ``BankState`` internals — the flow rule RPR013 enforces that the
  feed is their only window into the DRAM.
* **actuation** — :class:`RefreshActuator`, the shared neighbour-refresh
  engine.  ChipTRR, every zoo tracker and the module's own
  ``refresh_row`` path (which SoftTRR's row refresher drives) all issue
  refreshes through the same actuator, so refresh accounting has one
  home.

Determinism contract: ``publish`` runs trackers in subscription order
and actuates each tracker's drained refreshes immediately, so a batched
replay that publishes the same ``(bank, row, count, epoch, now_ns)``
sequence as the scalar loop heals rows at exactly the same points in
the deposit stream — the generative differential harness holds every
tracker to that bar, bit for bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["ActivationFeed", "RefreshActuator", "Tracker"]


class Tracker:
    """Interface for one tracking policy riding the activation feed.

    Subclasses implement :meth:`observe` (update state; queue victim
    rows with :meth:`queue_refresh`) and inherit the drain machinery.
    All randomness must come from :func:`repro.rng.derive_rng` streams
    held on the tracker (RPR010), and all state must deepcopy cleanly —
    ``Machine.snapshot`` copies trackers with the DRAM they watch.
    """

    #: Registry-style short name (also the telemetry namespace).
    name = "abstract"

    def __init__(self) -> None:
        self._pending: List[Tuple[int, int]] = []

    # ------------------------------------------------------ observation
    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        """Feed ``count`` ACTs of ``(bank, row)`` through the policy.

        ``epoch`` is the auto-refresh epoch of ``now_ns``; trackers with
        windowed state reset lazily on epoch change, exactly like the
        disturbance accumulators.
        """
        raise NotImplementedError

    # -------------------------------------------------------- actuation
    def queue_refresh(self, bank: int, row: int) -> None:
        """Queue one victim row for refresh at the next drain."""
        self._pending.append((bank, row))

    def drain_refreshes(self) -> List[Tuple[int, int]]:
        """Victim rows queued since the last drain (cleared on return)."""
        if not self._pending:
            return self._pending
        drained = self._pending
        self._pending = []
        return drained

    # -------------------------------------------------------- telemetry
    def counters(self) -> Dict[str, int]:
        """Behavioural counters, namespaced by the telemetry facade."""
        return {}

    def sram_bits(self) -> int:
        """Estimated per-bank tracker SRAM budget in bits.

        The comparative zoo report ranks defenses by protection rate x
        refresh overhead x this budget; pure-probabilistic trackers
        (PARA) return 0 — statelessness is their selling point.
        """
        return 0


class RefreshActuator:
    """The shared neighbour-refresh engine (the actuation layer).

    Wraps the DRAM's heal callback and its in-module row remapping:
    :meth:`refresh_row` recharges one row, :meth:`refresh_neighbors`
    walks the physical neighbourhood of an aggressor out to a given
    blast radius — through the remap when one exists, the way silicon
    TRR does.
    """

    def __init__(self, heal: Callable[[int, int], None],
                 remap=None) -> None:
        self._heal = heal
        self.remap = remap
        #: Individual row refreshes issued through this actuator.
        self.refreshes = 0

    def refresh_row(self, bank: int, row: int) -> None:
        """Recharge one row (out-of-range rows are silently clipped)."""
        self.refreshes += 1
        self._heal(bank, row)

    def refresh_neighbors(self, bank: int, row: int,
                          max_distance: int) -> None:
        """Refresh every physical neighbour within ``max_distance``."""
        remap = self.remap
        for distance in range(1, max_distance + 1):
            if remap is not None:
                for victim in remap.neighbors_at(row, distance):
                    self.refresh_row(bank, victim)
            else:
                self.refresh_row(bank, row - distance)
                self.refresh_row(bank, row + distance)


class ActivationFeed:
    """The observation choke point every row activation flows through.

    ``DramModule`` publishes ``(bank, row, count, epoch, now_ns)`` for
    each activation burst; the feed runs subscribed trackers in order
    and actuates their drained refreshes immediately, preserving the
    deposit/heal interleaving the scalar replay produces.
    """

    def __init__(self, actuator: RefreshActuator) -> None:
        self.actuator = actuator
        self._trackers: List[Tracker] = []

    @property
    def active(self) -> bool:
        """Whether any tracker is subscribed (the hot-path gate)."""
        return bool(self._trackers)

    def trackers(self) -> Tuple[Tracker, ...]:
        """Subscribed trackers, in subscription order."""
        return tuple(self._trackers)

    def subscribe(self, tracker: Tracker) -> Tracker:
        """Attach a tracker to the feed; returns it for chaining."""
        self._trackers.append(tracker)
        return tracker

    def unsubscribe(self, tracker: Tracker) -> None:
        """Detach a tracker previously subscribed (no-op if absent)."""
        try:
            self._trackers.remove(tracker)
        except ValueError:
            pass

    def publish(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        """One activation burst: observe, then actuate drained victims."""
        actuator = self.actuator
        for tracker in self._trackers:
            # Policy observation, not a metric mutation (RPR008's
            # ``.observe`` heuristic collides with the Tracker verb).
            tracker.observe(  # repro-lint: disable=RPR008
                bank, row, count, epoch, now_ns)
            for victim_bank, victim_row in tracker.drain_refreshes():
                actuator.refresh_row(victim_bank, victim_row)
