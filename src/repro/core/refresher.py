"""The Row Refresher (Section IV-D).

Dormant until a charge-leak counter reaches ``count_limit``; then it
reconstructs a physical address from the (bank, row) indexes recorded in
``pt_row_rbtree``, finds the kernel virtual address through the
direct-physical map, flushes the CPU cache for it and *reads* it —
"a read-access to a row can automatically recharge the row and prevent
potential bit flips" — and finally resets ``leak_count`` to 0.

In the simulation the read's row activation heals the disturbance
accumulator via the DRAM model; the explicit ``refresh_row`` call after
the read guarantees the recharge even in the corner case where the row
buffer still held the row open (on real hardware the surrounding bank
traffic closes it).

Graceful degradation (``repro.faults``): a refresh *attempt* can be made
to fail through the ``attempt_filter`` seam the fault injector wires up.
With ``SoftTrrParams.heal_refresh_retries`` > 0 a failed attempt is
retried with doubling simulated backoff; the timer watchdog additionally
calls :meth:`compensate` after missed timer windows to refresh rows
whose counters could have crossed the (shrunken) effective limit while
the module was blind."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .profile import SoftTrrParams
from .structures import SoftTrrStructures


class RowRefresher:
    """Refreshes L1PT rows whose charge-leak counters hit the limit."""

    def __init__(self, kernel, structures: SoftTrrStructures,
                 params: SoftTrrParams) -> None:
        self.kernel = kernel
        self.structs = structures
        self.params = params
        self.mapping = kernel.dram.mapping
        self.refreshes = 0
        self.leak_bumps = 0
        self.failed_attempts = 0
        self.failed_refreshes = 0
        self.retried_refreshes = 0
        self.watchdog_refreshes = 0
        #: (bank, row, at_ns) log for diagnostics / benches.
        self.refresh_log: List[Tuple[int, int, int]] = []
        #: Fault-injection seam: returns True when one refresh attempt
        #: must fail.  None (no injector) means every attempt lands.
        self.attempt_filter: Optional[Callable[[int, int], bool]] = None
        injector = getattr(kernel, "fault_injector", None)
        if injector is not None:
            self.attempt_filter = injector.refresh_attempt_filter
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    def on_adjacent_access(self, bank: int, row: int) -> int:
        """An adjacent row was accessed: bump nearby PT rows' counters.

        Returns the number of rows refreshed as a consequence.

        The counter resets even when the refresh ultimately failed: the
        module *believes* it refreshed, which is exactly the erosion the
        chaos harness measures (the next ``count_limit - 1`` intervals
        of hammering go unnoticed).
        """
        refreshed = 0
        for pt_row, bank_struct in self.structs.pt_rows_near(
                row, bank, self.params.max_distance):
            bank_struct.leak_count += 1
            self.leak_bumps += 1
            if self.trace is not None:
                self.trace.emit("refresh.bump", bank=bank, row=pt_row,
                                leak=bank_struct.leak_count)
            if bank_struct.leak_count >= self.params.count_limit:
                self.refresh(bank, pt_row)
                bank_struct.leak_count = 0
                refreshed += 1
        return refreshed

    def refresh(self, bank: int, row: int) -> bool:
        """Recharge one DRAM row holding L1PT pages.

        Retries failed attempts up to ``heal_refresh_retries`` times with
        doubling simulated backoff.  Returns whether the recharge landed.
        """
        kernel = self.kernel
        attempts = 1 + max(0, self.params.heal_refresh_retries)
        backoff_ns = self.params.heal_refresh_backoff_ns
        failed = 0
        for attempt in range(attempts):
            if attempt > 0:
                if self.trace is not None:
                    self.trace.emit("refresh.retry", bank=bank, row=row,
                                    attempt=attempt)
                kernel.clock.advance(backoff_ns)
                kernel.accountant.charge("softtrr_refresh", backoff_ns)
                backoff_ns *= 2
            if self._attempt(bank, row):
                if failed:
                    self.retried_refreshes += 1
                    injector = getattr(kernel, "fault_injector", None)
                    if injector is not None:
                        injector.note_healed("refresher", failed)
                self.refreshes += 1
                self.refresh_log.append((bank, row, kernel.clock.now_ns))
                if self.trace is not None:
                    self.trace.emit("refresh.row", bank=bank, row=row)
                return True
            failed += 1
        self.failed_refreshes += 1
        return False

    def _attempt(self, bank: int, row: int) -> bool:
        """One clflush+read recharge attempt; the injectable unit."""
        kernel = self.kernel
        if self.attempt_filter is not None and self.attempt_filter(bank, row):
            # The read was issued and cost its latency, but the recharge
            # did not land (modelled failure: e.g. the access served from
            # a row-buffer hit without re-activating the row).
            kernel.clock.advance(kernel.cost.row_refresh_ns)
            kernel.accountant.charge(
                "softtrr_refresh", kernel.cost.row_refresh_ns)
            self.failed_attempts += 1
            injector = getattr(kernel, "fault_injector", None)
            if injector is not None:
                injector.note_refresh_failed()
            if self.trace is not None:
                self.trace.emit("refresh.attempt", bank=bank, row=row, ok=0)
            return False
        paddr = self.mapping.dram_to_phys(bank, row, 0)
        kvaddr = kernel.kvaddr_of(paddr)
        # clflush + read through the direct map: the read's activation
        # recharges the row in the DRAM model.
        kernel.mmu.clflush(paddr)
        kernel.kernel_read(kvaddr, 8)
        kernel.dram.refresh_row(bank, row)
        kernel.clock.advance(kernel.cost.row_refresh_ns)
        kernel.accountant.charge("softtrr_refresh", kernel.cost.row_refresh_ns)
        if self.trace is not None:
            self.trace.emit("refresh.attempt", bank=bank, row=row, ok=1)
        return True

    def compensate(self, missed_windows: int) -> int:
        """Catch-up pass after the watchdog saw missed timer windows.

        Each missed window is an interval in which a traced page could
        have taken one *uncounted* access, so the effective limit drops
        to ``count_limit - missed_windows`` for this pass.  At an
        effective limit <= 1 nothing observed can be trusted and every
        tracked (row, bank) is refreshed.  Returns rows refreshed.
        """
        effective = max(1, self.params.count_limit - missed_windows)
        refreshed = 0
        for row in list(self.structs.pt_row_rbtree.keys()):
            entry = self.structs.pt_row_rbtree.get(row)
            if entry is None:
                continue
            for bank_index, bank_struct in list(entry.banks.items()):
                if effective <= 1 or bank_struct.leak_count >= effective:
                    if self.refresh(bank_index, row):
                        bank_struct.leak_count = 0
                        refreshed += 1
        self.watchdog_refreshes += refreshed
        return refreshed
