"""The Row Refresher (Section IV-D).

Dormant until a charge-leak counter reaches ``count_limit``; then it
reconstructs a physical address from the (bank, row) indexes recorded in
``pt_row_rbtree``, finds the kernel virtual address through the
direct-physical map, flushes the CPU cache for it and *reads* it —
"a read-access to a row can automatically recharge the row and prevent
potential bit flips" — and finally resets ``leak_count`` to 0.

In the simulation the read's row activation heals the disturbance
accumulator via the DRAM model; the explicit ``refresh_row`` call after
the read guarantees the recharge even in the corner case where the row
buffer still held the row open (on real hardware the surrounding bank
traffic closes it)."""

from __future__ import annotations

from typing import List, Tuple

from .profile import SoftTrrParams
from .structures import SoftTrrStructures


class RowRefresher:
    """Refreshes L1PT rows whose charge-leak counters hit the limit."""

    def __init__(self, kernel, structures: SoftTrrStructures,
                 params: SoftTrrParams) -> None:
        self.kernel = kernel
        self.structs = structures
        self.params = params
        self.mapping = kernel.dram.mapping
        self.refreshes = 0
        self.leak_bumps = 0
        #: (bank, row, at_ns) log for diagnostics / benches.
        self.refresh_log: List[Tuple[int, int, int]] = []

    def on_adjacent_access(self, bank: int, row: int) -> int:
        """An adjacent row was accessed: bump nearby PT rows' counters.

        Returns the number of rows refreshed as a consequence.
        """
        refreshed = 0
        for pt_row, bank_struct in self.structs.pt_rows_near(
                row, bank, self.params.max_distance):
            bank_struct.leak_count += 1
            self.leak_bumps += 1
            if bank_struct.leak_count >= self.params.count_limit:
                self.refresh(bank, pt_row)
                bank_struct.leak_count = 0
                refreshed += 1
        return refreshed

    def refresh(self, bank: int, row: int) -> None:
        """Recharge one DRAM row holding L1PT pages."""
        kernel = self.kernel
        paddr = self.mapping.dram_to_phys(bank, row, 0)
        kvaddr = kernel.kvaddr_of(paddr)
        # clflush + read through the direct map: the read's activation
        # recharges the row in the DRAM model.
        kernel.mmu.clflush(paddr)
        kernel.kernel_read(kvaddr, 8)
        kernel.dram.refresh_row(bank, row)
        kernel.clock.advance(kernel.cost.row_refresh_ns)
        kernel.accountant.charge("softtrr_refresh", kernel.cost.row_refresh_ns)
        self.refreshes += 1
        self.refresh_log.append((bank, row, kernel.clock.now_ns))
