"""The offline profile of Section IV-E.

SoftTRR picks its two runtime parameters — the tracer timer interval
``timer_inr`` and the charge-leak limit ``count_limit`` — from DRAM
characteristics measured offline:

* ``threshold = tRC x #ACT`` is the shortest time in which hammering can
  produce a first bit flip (tRC ~= 50 ns, #ACT ~= 20 K on both DDR3 and
  DDR4 once ChipTRR forces DDR4 attacks to split across >= 2 aggressors);
* the tracer counts at most one access per traced page per timer
  interval, so the maximum unprotected hammer window is
  ``timer_inr x (count_limit - 1)``;
* both parameters are unsigned integers and ``count_limit`` must be
  >= 2 (a limit of 1 would refresh on every ordinary access), giving
  ``timer_inr = 1 ms`` and ``count_limit = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..clock import NS_PER_MS
from ..dram.timing import DramTimings
from ..errors import ConfigError
from .ringbuf import DEFAULT_CAPACITY

#: Activation count to first flip the profile assumes (Section IV-E).
DEFAULT_ACT_TO_FIRST_FLIP = 20_000


@dataclass(frozen=True)
class SoftTrrParams:
    """Runtime configuration of the SoftTRR module."""

    #: Tracked adjacency distance: 1 reproduces the ZebRAM-style +-1
    #: assumption (Delta+-1), 6 is the paper's default (Delta+-6).
    max_distance: int = 6
    timer_inr_ns: int = NS_PER_MS
    count_limit: int = 2
    ringbuf_capacity: int = DEFAULT_CAPACITY
    #: Which PTE bit the tracer abuses: "rsvd" (the paper's choice) or
    #: "present" (the rejected design that panics the kernel under fork).
    trace_bit: str = "rsvd"
    #: Page-table levels to protect.  (1,) is the paper's implementation
    #: (all existing attacks target L1PTs); (1, 2) enables the Section
    #: VII extension that also protects L2 (PMD) pages.
    protect_levels: tuple = (1,)
    #: Graceful-degradation knobs (``repro.faults``).  All default to off
    #: so the paper-faithful configuration is byte-identical to before.
    #: Extra read attempts when a row refresh fails (0 = give up at one).
    heal_refresh_retries: int = 0
    #: Simulated wait before the first retry; doubles per further retry.
    heal_refresh_backoff_ns: int = 500
    #: Detect missed timer windows from the simulated clock and compensate
    #: by shrinking the effective count_limit for one catch-up pass.
    heal_watchdog: bool = False
    #: Re-walk collector/tracer state every N ticks (0 = never) to repair
    #: desync from dropped hook deliveries.
    heal_resync_every: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.max_distance <= 6:
            raise ConfigError("max_distance must be within [1, 6] (Kim et al.)")
        if not set(self.protect_levels) <= {1, 2} or 1 not in self.protect_levels:
            raise ConfigError(
                "protect_levels must include 1 and may add 2 (Section VII)")
        if self.timer_inr_ns <= 0:
            raise ConfigError("timer_inr must be positive")
        if self.count_limit < 2:
            raise ConfigError(
                "count_limit must be >= 2: a limit of 1 refreshes on every "
                "ordinary access (Section IV-D)"
            )
        if self.trace_bit not in ("rsvd", "present"):
            raise ConfigError("trace_bit must be 'rsvd' or 'present'")
        if self.heal_refresh_retries < 0:
            raise ConfigError("heal_refresh_retries must be >= 0")
        if self.heal_refresh_backoff_ns <= 0:
            raise ConfigError("heal_refresh_backoff_ns must be positive")
        if self.heal_resync_every < 0:
            raise ConfigError("heal_resync_every must be >= 0")

    @property
    def protection_window_ns(self) -> int:
        """Max unprotected hammer time: timer_inr x (count_limit - 1)."""
        return self.timer_inr_ns * (self.count_limit - 1)

    def with_distance(self, max_distance: int) -> "SoftTrrParams":
        """This configuration at a different adjacency distance."""
        return replace(self, max_distance=max_distance)


@dataclass(frozen=True)
class OfflineProfile:
    """Derives :class:`SoftTrrParams` from DRAM characteristics."""

    timings: DramTimings
    act_to_first_flip: int = DEFAULT_ACT_TO_FIRST_FLIP

    def threshold_ns(self) -> int:
        """threshold = tRC x #ACT: the minimum time to a first flip."""
        return self.timings.t_rc_ns * self.act_to_first_flip

    def derive(self, *, max_distance: int = 6,
               ringbuf_capacity: int = DEFAULT_CAPACITY) -> SoftTrrParams:
        """Pick (timer_inr, count_limit) under the safety equation.

        ``timer_inr x (count_limit - 1) <= threshold`` with integral
        parameters, count_limit >= 2 and timer_inr maximal at whole
        milliseconds (coarser timers cost less).  With the paper's
        numbers this lands exactly on timer_inr = 1 ms, count_limit = 2.
        """
        threshold = self.threshold_ns()
        # Largest whole-millisecond timer not exceeding the threshold.
        timer_ms = max(1, threshold // NS_PER_MS)
        timer_inr = min(timer_ms, threshold) * NS_PER_MS \
            if threshold >= NS_PER_MS else threshold
        timer_inr = min(timer_inr, threshold)
        count_limit = 2
        if timer_inr * (count_limit - 1) > threshold:
            raise ConfigError(
                "cannot satisfy the safety equation with integral parameters"
            )
        return SoftTrrParams(
            max_distance=max_distance,
            timer_inr_ns=int(timer_inr),
            count_limit=count_limit,
            ringbuf_capacity=ringbuf_capacity,
        )

    def is_safe(self, params: SoftTrrParams) -> bool:
        """Whether a configuration keeps the unprotected window below
        the time-to-first-flip."""
        return params.protection_window_ns <= self.threshold_ns()
