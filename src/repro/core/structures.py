"""SoftTRR's bookkeeping structures (Table I) with slab accounting.

Three red-black trees and their node payloads:

* ``pt_rbtree``   — key: PPN of an L1PT page.
* ``adj_rbtree``  — key: PPN of a page adjacent to an L1PT page (a
  staging area: nodes are freed once the tracer has armed the page).
* ``pt_row_rbtree`` — key: DRAM row index; the value holds one
  ``bank_struct`` per bank in which that row hosts L1PT pages, each with
  ``pt_count`` (how many L1PT pages share the bank/row) and
  ``leak_count`` (the charge-leak counter of Section III-C).

Every node allocation goes through a :class:`~repro.kernel.slab.SlabCache`
so the Fig. 4 memory-consumption curves fall out of real allocator
state.  Node sizes are realistic for the kernel structs they model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..kernel.slab import SlabCache
from .rbtree import RbTree

#: Realistic sizes of the kernel structs (rb_node + payload).
PT_NODE_BYTES = 48
ADJ_NODE_BYTES = 48
PT_ROW_NODE_BYTES = 64
BANK_STRUCT_BYTES = 24


@dataclass
class BankStruct:
    """Per-(row, bank) L1PT bookkeeping (Table I)."""

    bank_index: int
    pt_count: int = 0
    leak_count: int = 0


class PtRowEntry:
    """Value of a ``pt_row_rbtree`` node: one or more bank structs."""

    __slots__ = ("banks",)

    def __init__(self) -> None:
        self.banks: Dict[int, BankStruct] = {}

    def bank(self, bank_index: int) -> Optional[BankStruct]:
        """The bank struct for ``bank_index``, or None."""
        return self.banks.get(bank_index)

    def ensure_bank(self, bank_index: int) -> BankStruct:
        """Get-or-create the bank struct for ``bank_index``."""
        entry = self.banks.get(bank_index)
        if entry is None:
            entry = BankStruct(bank_index=bank_index)
            self.banks[bank_index] = entry
        return entry

    def total_pt_count(self) -> int:
        """Sum of pt_count across banks (0 means the node can die)."""
        return sum(b.pt_count for b in self.banks.values())


class SoftTrrStructures:
    """The three trees plus their slab caches, as one unit.

    ``remap`` is the module's in-DRAM row remapping, consumed as offline
    domain knowledge (Section III-A): adjacency queries translate
    through it so "near" means *physically* near.  ``None`` falls back
    to identity arithmetic (logical == physical).
    """

    def __init__(self, remap=None) -> None:
        self.remap = remap
        self.pt_slab = SlabCache("softtrr_pt_node", PT_NODE_BYTES)
        self.adj_slab = SlabCache("softtrr_adj_node", ADJ_NODE_BYTES)
        self.row_slab = SlabCache("softtrr_row_node", PT_ROW_NODE_BYTES)
        self.bank_slab = SlabCache("softtrr_bank_struct", BANK_STRUCT_BYTES)
        self.pt_rbtree = RbTree(on_alloc=self.pt_slab.alloc,
                                on_free=self.pt_slab.free)
        self.adj_rbtree = RbTree(on_alloc=self.adj_slab.alloc,
                                 on_free=self.adj_slab.free)
        self.pt_row_rbtree = RbTree(on_alloc=self.row_slab.alloc,
                                    on_free=self.row_slab.free)
        #: bank-struct slab handles keyed by (row, bank).
        self._bank_handles: Dict[Tuple[int, int], int] = {}

    # --------------------------------------------------------- pt rows
    def add_pt_location(self, row: int, bank: int) -> BankStruct:
        """Record one L1PT page occupying (bank, row)."""
        entry = self.pt_row_rbtree.get(row)
        if entry is None:
            entry = PtRowEntry()
            self.pt_row_rbtree.insert(row, entry)
        bank_struct = entry.bank(bank)
        if bank_struct is None:
            bank_struct = entry.ensure_bank(bank)
            self._bank_handles[(row, bank)] = self.bank_slab.alloc()
        bank_struct.pt_count += 1
        return bank_struct

    def remove_pt_location(self, row: int, bank: int) -> None:
        """Drop one L1PT page from (bank, row); reap empty structures."""
        entry = self.pt_row_rbtree.get(row)
        if entry is None:
            return
        bank_struct = entry.bank(bank)
        if bank_struct is None:
            return
        bank_struct.pt_count -= 1
        if bank_struct.pt_count <= 0:
            del entry.banks[bank]
            handle = self._bank_handles.pop((row, bank), None)
            if handle is not None:
                self.bank_slab.free(handle)
        if not entry.banks:
            self.pt_row_rbtree.delete(row)

    def bank_struct(self, row: int, bank: int) -> Optional[BankStruct]:
        """The bank struct at (row, bank), or None."""
        entry = self.pt_row_rbtree.get(row)
        if entry is None:
            return None
        return entry.bank(bank)

    def neighbor_rows(self, row: int, distance: int) -> List[int]:
        """Rows physically exactly ``distance`` from ``row``."""
        if self.remap is not None:
            return self.remap.neighbors_at(row, distance)
        return [row - distance, row + distance]

    def pt_rows_near(self, row: int, bank: int, max_distance: int
                     ) -> Iterator[Tuple[int, BankStruct]]:
        """(pt_row, bank_struct) pairs physically within ``max_distance``
        of ``row``.

        Distance 0 is excluded: an access to a row recharges that row,
        it does not disturb it.
        """
        for distance in range(1, max_distance + 1):
            for candidate in self.neighbor_rows(row, distance):
                bank_struct = self.bank_struct(candidate, bank)
                if bank_struct is not None:
                    yield candidate, bank_struct

    def has_pt_near(self, row: int, bank: int, max_distance: int) -> bool:
        """Whether any L1PT row lies within ``max_distance`` of ``row``."""
        for _ in self.pt_rows_near(row, bank, max_distance):
            return True
        return False

    # ------------------------------------------------------------ memory
    def memory_bytes(self) -> int:
        """Slab footprint of the three trees (page-granular, like
        /proc/slabinfo; the ring buffer is counted by its owner)."""
        return (
            self.pt_slab.bytes_held()
            + self.adj_slab.bytes_held()
            + self.row_slab.bytes_held()
            + self.bank_slab.bytes_held()
        )

    def live_node_bytes(self) -> int:
        """Object-granular footprint (for finer-grained reporting)."""
        return (
            self.pt_slab.bytes_live()
            + self.adj_slab.bytes_live()
            + self.row_slab.bytes_live()
            + self.bank_slab.bytes_live()
        )
