"""The ``pte_ringbuf`` of Table I / Section IV-C.

The tracer stores captured leaf-PTE references in a pre-allocated ring
buffer with ``head`` and ``tail`` pointers:

* pushing a PTE advances ``head``;
* consuming (re-arming) a PTE advances ``tail``;
* head == tail means empty;
* "When the node number between the tail and the head pointers is no
  less than 80% of the total node number of the ring buffer, the tracer
  allocates a larger ring buffer (e.g., four times of the old ring
  buffer size)" — new pushes land in the new buffer, and "the old ring
  buffer will be freed when its stored PTEs are all consumed".

The paper's pre-allocated buffer is 396 KiB; with 24-byte entries
(pte pointer, vaddr, mm pointer) that is 16 896 entries, which is the
default capacity here.  The capacity bytes feed the Fig. 4 memory
accounting directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SoftTrrError

#: Bytes per ring node: pte pointer + vaddr + mm pointer (Table I).
ENTRY_BYTES = 24

#: 396 KiB pre-allocation / 24 B = 16 896 entries (Section VI-B).
DEFAULT_CAPACITY = (396 * 1024) // ENTRY_BYTES

GROW_FACTOR = 4
GROW_WATERMARK = 0.8


@dataclass(frozen=True)
class PteRef:
    """One ring node: where a traced leaf PTE lives and whom it maps.

    ``ppn`` records the traced physical page so a stale reference (the
    mapping changed between capture and re-arm) can be detected and
    dropped instead of arming an unrelated page.
    """

    pte_paddr: int
    vaddr: int
    pid: int
    ppn: int = 0
    #: 1 for an L1PT entry, 2 for an L2 (huge-page) entry.
    leaf_level: int = 1


class _Ring:
    """One fixed-capacity ring with head/tail pointers."""

    __slots__ = ("slots", "head", "tail", "capacity")

    def __init__(self, capacity: int) -> None:
        # One slot is sacrificed to distinguish full from empty.
        self.capacity = capacity
        self.slots: List[Optional[PteRef]] = [None] * capacity
        self.head = 0
        self.tail = 0

    def __len__(self) -> int:
        return (self.head - self.tail) % self.capacity

    def is_empty(self) -> bool:
        return self.head == self.tail

    def is_full(self) -> bool:
        return (self.head + 1) % self.capacity == self.tail

    def push(self, ref: PteRef) -> None:
        if self.is_full():
            raise SoftTrrError("ring overflow (grow logic failed)")
        self.slots[self.head] = ref
        self.head = (self.head + 1) % self.capacity

    def pop(self) -> PteRef:
        if self.is_empty():
            raise SoftTrrError("pop from empty ring")
        ref = self.slots[self.tail]
        self.slots[self.tail] = None
        self.tail = (self.tail + 1) % self.capacity
        return ref


class PteRingBuffer:
    """The growable generational ring buffer of Section IV-C.

    Pushes land in the newest ring; when it passes the 80 % watermark a
    4x-larger ring is allocated for subsequent pushes.  Pops consume the
    oldest ring first, and a fully drained old ring is freed ("the old
    ring buffer will be freed when its stored PTEs are all consumed").
    In steady state exactly one ring is live; sustained bursts simply
    chain additional generations.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 8:
            raise SoftTrrError("ring buffer capacity implausibly small")
        self._rings: List[_Ring] = [_Ring(capacity)]
        self.grow_events = 0
        self.total_pushed = 0
        self.total_popped = 0

    # ------------------------------------------------------------- state
    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings)

    def is_empty(self) -> bool:
        return len(self) == 0

    def capacity(self) -> int:
        """Total node slots currently allocated."""
        return sum(ring.capacity for ring in self._rings)

    def capacity_bytes(self) -> int:
        """Allocated footprint (what Fig. 4 counts for the ring)."""
        return self.capacity() * ENTRY_BYTES

    # -------------------------------------------------------------- push
    def push(self, ref: PteRef) -> None:
        """Insert a captured PTE at the head of the newest ring."""
        newest = self._rings[-1]
        if len(newest) / newest.capacity >= GROW_WATERMARK:
            self.grow_events += 1
            newest = _Ring(newest.capacity * GROW_FACTOR)
            self._rings.append(newest)
        newest.push(ref)
        self.total_pushed += 1

    # --------------------------------------------------------------- pop
    def pop(self) -> Optional[PteRef]:
        """Consume the least recently inserted PTE (oldest ring first)."""
        while self._rings:
            oldest = self._rings[0]
            if oldest.is_empty():
                if len(self._rings) == 1:
                    return None
                self._rings.pop(0)  # "freed when ... all consumed"
                continue
            self.total_popped += 1
            ref = oldest.pop()
            if oldest.is_empty() and len(self._rings) > 1:
                self._rings.pop(0)
            return ref
        return None  # pragma: no cover - rings list never empties

    def drain(self, limit: Optional[int] = None):
        """Pop up to ``limit`` refs (all, if None); yields them."""
        count = 0
        while limit is None or count < limit:
            ref = self.pop()
            if ref is None:
                return
            count += 1
            yield ref

    def peek_all(self):
        """Yield every pending ref, oldest first, without consuming.

        Diagnostic/resync accessor: the tracer's resync pass uses it to
        tell a page awaiting re-arm (pending here) from one that fell
        out of tracing entirely (a dropped trace fault or ring overflow).
        """
        for ring in self._rings:
            index = ring.tail
            while index != ring.head:
                yield ring.slots[index]
                index = (index + 1) % ring.capacity
