"""The Page Table Collector (Section IV-B).

Responsibilities, as in Figure 1:

* on load, scan every existing process and collect all L1PT pages into
  ``pt_rbtree`` / ``pt_row_rbtree``;
* hook ``__pte_alloc`` and ``__free_pages`` to track page-table births
  and deaths afterwards;
* maintain ``adj_rbtree``: a page is *adjacent* when (a) its own DRAM
  row lies within N rows of an L1PT row in the same bank — the
  *explicit*-attack surface [41], [12] — or (b) its L1PT page's row lies
  within N rows of another L1PT row — the *implicit*-attack surface
  PThammer [57] exploits (Section III-C).

The collector consumes the DRAM address mapping as offline domain
knowledge (the DRAMA workflow of :mod:`repro.dram.drama`); it never
modifies allocator behaviour (design principle DP2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..mmu import bits
from .profile import SoftTrrParams
from .structures import SoftTrrStructures


class PageTableCollector:
    """Collects L1PT pages and the pages adjacent to them."""

    def __init__(self, kernel, structures: SoftTrrStructures,
                 params: SoftTrrParams) -> None:
        self.kernel = kernel
        self.structs = structures
        self.params = params
        self.mapping = kernel.dram.mapping
        #: (bank, row) -> PPNs of L1PT pages with cells in that row.
        self._pts_at: Dict[Tuple[int, int], Set[int]] = {}
        #: pt ppn -> its (bank, row) list (cached; mapping is static).
        self._pt_rows: Dict[int, List[Tuple[int, int]]] = {}
        #: adjacency refcounts: adj ppn -> number of contributing PTs.
        self._adj_refs: Dict[int, int] = {}
        #: pt ppn -> adjacent ppns it contributed.
        self._pt_contrib: Dict[int, Set[int]] = {}
        #: row_pages / page_rows caches (the mapping is static hardware
        #: truth, so caching is exact).
        self._row_pages_cache: Dict[Tuple[int, int], List[int]] = {}
        self._page_rows_cache: Dict[int, List[Tuple[int, int]]] = {}
        #: called with a PPN when a page becomes adjacent (tracer wires
        #: this to its arming queue).
        self.on_new_adjacent: Optional[Callable[[int], None]] = None
        #: called with a PPN when a page stops being adjacent.
        self.on_adjacent_gone: Optional[Callable[[int], None]] = None
        # Fig. 5 statistics.
        self.ever_protected: Set[int] = set()
        self.ever_adjacent: Set[int] = set()
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    # ------------------------------------------------------------ queries
    def is_protected(self, ppn: int) -> bool:
        """Whether ``ppn`` is a collected L1PT page."""
        return ppn in self.structs.pt_rbtree

    def is_adjacent(self, ppn: int) -> bool:
        """Whether ``ppn`` is currently considered adjacent."""
        return ppn in self._adj_refs

    def protected_count(self) -> int:
        """Live protected L1PT pages (Fig. 5 series)."""
        return len(self.structs.pt_rbtree)

    def adjacent_count(self) -> int:
        """Live adjacent pages."""
        return len(self._adj_refs)

    def adjacent_ppns(self) -> List[int]:
        """Snapshot list of the currently adjacent PPNs."""
        return list(self._adj_refs)

    def page_rows_of(self, ppn: int) -> List[Tuple[int, int]]:
        """Cached (bank, row) list of a page."""
        rows = self._page_rows_cache.get(ppn)
        if rows is None:
            rows = self.mapping.page_rows(ppn)
            self._page_rows_cache[ppn] = rows
        return rows

    def _row_pages(self, bank: int, row: int) -> List[int]:
        key = (bank, row)
        pages = self._row_pages_cache.get(key)
        if pages is None:
            if 0 <= row < self.mapping.geometry.rows_per_bank:
                pages = self.mapping.row_pages(bank, row)
            else:
                pages = []
            self._row_pages_cache[key] = pages
        return pages

    def pointed_pages(self, pt_ppn: int) -> List[int]:
        """PPNs referenced by the valid entries of an L1PT page."""
        out: List[int] = []
        for index in range(512):
            entry = self.kernel.mmu.pt_ops.raw_read_entry(pt_ppn, index)
            if bits.is_present(entry):
                out.append(bits.pte_ppn(entry))
        return out

    def _user_accessible(self, ppn: int) -> bool:
        """Adjacent-page candidate filter: mapped into some user space."""
        return self.kernel.rmap.is_mapped(ppn)

    # --------------------------------------------------------- collection
    def initial_collect(self) -> int:
        """Scan every existing process (module-load path).

        Returns the number of protected pages collected.  The simulated
        scan cost (the paper measures ~28 ms for module load) is charged
        by the module facade, proportional to the walked pages.
        """
        span = (self.trace.span_begin("collector.initial_collect")
                if self.trace is not None else 0)
        count = 0
        for process in list(self.kernel.processes.values()):
            for l1_ppn in list(process.mm.pte_page_population.keys()):
                if self.on_pt_alloc(process, l1_ppn):
                    count += 1
            if 2 in self.params.protect_levels:
                for table_ppn, level in list(process.mm.table_levels.items()):
                    if level == 2 and self.on_pmd_alloc(process, table_ppn):
                        count += 1
        if self.trace is not None:
            self.trace.span_end("collector.initial_collect", span)
        return count

    def resync(self) -> int:
        """Re-walk live kernel state to repair lost-hook desync.

        Graceful-degradation path (``repro.faults``): a dropped
        ``__pte_alloc`` notify leaves a live L1PT uncollected, a dropped
        ``__free_pages`` notify leaves a dead one protected.  This pass
        re-collects every live table and prunes protected page-table
        entries whose table no longer exists.  Protected *objects*
        (level 0) are registered explicitly, not via hooks, so they are
        left alone.  Returns the number of repairs made.
        """
        span = (self.trace.span_begin("collector.resync")
                if self.trace is not None else 0)
        repairs = 0
        live_l1: Set[int] = set()
        live_l2: Set[int] = set()
        for process in list(self.kernel.processes.values()):
            for l1_ppn in list(process.mm.pte_page_population.keys()):
                live_l1.add(l1_ppn)
                if self.on_pt_alloc(process, l1_ppn):
                    repairs += 1
            if 2 in self.params.protect_levels:
                for table_ppn, level in list(process.mm.table_levels.items()):
                    if level == 2:
                        live_l2.add(table_ppn)
                        if self.on_pmd_alloc(process, table_ppn):
                            repairs += 1
        for ppn in list(self.structs.pt_rbtree.keys()):
            stored = self.structs.pt_rbtree.get(ppn)
            level = stored[1] if stored else 1
            dead = (level == 1 and ppn not in live_l1) or \
                   (level == 2 and ppn not in live_l2)
            if dead:
                self._remove_pt(ppn)
                repairs += 1
        if self.trace is not None:
            self.trace.span_end("collector.resync", span)
        return repairs

    def on_pt_alloc(self, process, pt_ppn: int) -> bool:
        """__pte_alloc hook: a (possibly new) L1PT page exists."""
        return self._collect_protected(pt_ppn, level=1)

    def on_pmd_alloc(self, process, pmd_ppn: int) -> bool:
        """__pmd_alloc hook (Section VII extension): an L2 page exists."""
        if 2 not in self.params.protect_levels:
            return False
        return self._collect_protected(pmd_ppn, level=2)

    def protect_object_page(self, ppn: int) -> bool:
        """Section VII user API: protect an arbitrary sensitive page
        (e.g. the binary code pages of a setuid process) with the same
        track-and-refresh machinery as page tables."""
        return self._collect_protected(ppn, level=0)

    def _collect_protected(self, ppn: int, *, level: int) -> bool:
        """Common collection path.  ``level``: 1/2 for page tables, 0
        for a trusted-user protected object (no entries to follow)."""
        if ppn in self.structs.pt_rbtree:
            return False
        rows = self.page_rows_of(ppn)
        self._pt_rows[ppn] = rows
        self.structs.pt_rbtree.insert(ppn, (rows, level))
        self.ever_protected.add(ppn)
        for bank, row in rows:
            self.structs.add_pt_location(row, bank)
            self._pts_at.setdefault((bank, row), set()).add(ppn)
        contrib: Set[int] = set()
        # (a) Explicit adjacency: user pages in rows physically near
        # this page's rows (translated through the in-DRAM remap).
        for bank, row in rows:
            for distance in range(1, self.params.max_distance + 1):
                for near_row in self.structs.neighbor_rows(row, distance):
                    for candidate in self._row_pages(bank, near_row):
                        if candidate == ppn:
                            continue
                        if self._user_accessible(candidate):
                            contrib.add(candidate)
        # (b) Implicit adjacency: if another protected page's row is
        # near, every user page reachable through either page table
        # becomes adjacent (the PThammer surface).  Plain protected
        # objects are not walked through, so they have no reachable set.
        near_pts: Set[int] = set()
        for bank, row in rows:
            for distance in range(1, self.params.max_distance + 1):
                for near_row in self.structs.neighbor_rows(row, distance):
                    near_pts |= self._pts_at.get((bank, near_row), set())
        near_pts.discard(ppn)
        if near_pts:
            contrib.update(self._reachable_user_pages(ppn))
            for other in near_pts:
                contrib.update(self._reachable_user_pages(other))
        self._register_adjacent(ppn, contrib)
        return True

    def _reachable_user_pages(self, ppn: int) -> List[int]:
        """User pages whose walks touch this protected page's row."""
        stored = self.structs.pt_rbtree.get(ppn)
        level = stored[1] if stored else 1
        if level == 1:
            return self.pointed_pages(ppn)
        if level == 2:
            out: List[int] = []
            for index in range(512):
                entry = self.kernel.mmu.pt_ops.raw_read_entry(ppn, index)
                if not bits.is_present(entry):
                    continue
                if bits.is_huge(entry):
                    # The L2 entry IS the leaf: arming any page of the
                    # huge mapping arms this entry, so tracking the base
                    # page suffices.
                    out.append(bits.pte_ppn(entry))
                else:
                    out.extend(self.pointed_pages(bits.pte_ppn(entry)))
            return out
        return []  # level 0: protected objects have no entries

    def _register_adjacent(self, owner_pt: int, ppns: Set[int]) -> None:
        recorded = self._pt_contrib.setdefault(owner_pt, set())
        for ppn in ppns:
            if ppn in recorded:
                continue
            recorded.add(ppn)
            self._adj_refs[ppn] = self._adj_refs.get(ppn, 0) + 1
            if self._adj_refs[ppn] == 1:
                self.structs.adj_rbtree.insert(ppn, True)
                self.ever_adjacent.add(ppn)
                if self.on_new_adjacent is not None:
                    self.on_new_adjacent(ppn)

    def register_dynamic_adjacent(self, ppn: int) -> None:
        """A page that became adjacent after collection (tracer path).

        Owned by the synthetic contributor 'dynamic' (-1): it stays
        adjacent until the page itself is freed.
        """
        self._register_adjacent(-1, {ppn})

    def classify_new_page(self, ppn: int, l1_ppn: Optional[int]) -> bool:
        """Is a newly mapped user page adjacent?  (Section IV-C's check:
        "its PPN or its L1PT page's PPN (if exists) is adjacent to any
        PPN in pt_rbtree".)"""
        if len(self.structs.pt_row_rbtree) == 0:
            return False
        for bank, row in self.page_rows_of(ppn):
            if self.structs.has_pt_near(row, bank, self.params.max_distance):
                return True
        if l1_ppn is not None:
            for bank, row in self.page_rows_of(l1_ppn):
                if self.structs.has_pt_near(row, bank,
                                            self.params.max_distance):
                    return True
        return False

    # ------------------------------------------------------------- frees
    def on_free_pages(self, base_ppn: int, order: int, use) -> None:
        """__free_pages hook: protected-page death or adjacent-page
        death.  Protected objects are user frames, so membership (not
        the frame's use) decides the removal path."""
        for ppn in range(base_ppn, base_ppn + (1 << order)):
            if ppn in self.structs.pt_rbtree:
                self._remove_pt(ppn)
            elif ppn in self._adj_refs:
                self._remove_adjacent_page(ppn)

    def _remove_pt(self, pt_ppn: int) -> None:
        self.structs.pt_rbtree.delete(pt_ppn)
        rows = self._pt_rows.pop(pt_ppn, [])
        for bank, row in rows:
            self.structs.remove_pt_location(row, bank)
            members = self._pts_at.get((bank, row))
            if members is not None:
                members.discard(pt_ppn)
                if not members:
                    del self._pts_at[(bank, row)]
        for adj in self._pt_contrib.pop(pt_ppn, set()):
            refs = self._adj_refs.get(adj)
            if refs is None:
                continue
            if refs <= 1:
                del self._adj_refs[adj]
                self.structs.adj_rbtree.delete(adj)
                if self.on_adjacent_gone is not None:
                    self.on_adjacent_gone(adj)
            else:
                self._adj_refs[adj] = refs - 1

    def _remove_adjacent_page(self, ppn: int) -> None:
        self._adj_refs.pop(ppn, None)
        self.structs.adj_rbtree.delete(ppn)
        if self.on_adjacent_gone is not None:
            self.on_adjacent_gone(ppn)
