"""The Adjacent Page Tracer (Section IV-C).

Mechanism, exactly as the paper lays it out:

* A periodic timer (``timer_inr`` = 1 ms) *arms* traced pages by setting
  reserved bit 51 in the leaf PTE of every virtual mapping of every
  adjacent page, then flushing the TLB entry.
* The next access to an armed page takes a page fault whose error code
  has RSVD set.  The hooked ``do_page_fault`` recognises it, clears the
  bit (so the access can resume at full speed), records the PTE in
  ``pte_ringbuf`` for re-arming at the next timer, and bumps the
  charge-leak counters of every L1PT row near (a) the page's own row and
  (b) the page's L1PT row (the implicit/PThammer direction).
* Subsequent accesses within the same interval are deliberately ignored
  — at most one count per page per interval, which is what makes the
  ``threshold = timer_inr x (count_limit - 1)`` arithmetic sound.
* Arming consumes ``adj_rbtree`` nodes (they are freed once armed; the
  ring buffer carries the page from then on), exactly the first-timer /
  subsequent-timer split of Section IV-C.

:class:`PresentBitTracer` is the design the paper *rejected*: it clears
the present bit instead.  It works — until the kernel's own present-bit
checks (fork's PTE copy) meet an armed entry and panic, which is the
experiment motivating reserved-bit tracing.  It is included to
demonstrate that failure mode (see the robustness tests and the
``present_bit_crash`` example scenario).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..mmu import bits
from ..mmu.faults import PageFaultInfo
from .collector import PageTableCollector
from .profile import SoftTrrParams
from .refresher import RowRefresher
from .ringbuf import PteRef, PteRingBuffer


class AdjacentPageTracer:
    """Reserved-bit (bit 51) access tracer."""

    #: PTE bit this tracer flips.  Subclasses override behaviour.
    TRACE_MODE = "rsvd"

    def __init__(self, kernel, collector: PageTableCollector,
                 refresher: RowRefresher, params: SoftTrrParams) -> None:
        self.kernel = kernel
        self.collector = collector
        self.refresher = refresher
        self.params = params
        self.mapping = kernel.dram.mapping
        self.ringbuf = PteRingBuffer(params.ringbuf_capacity)
        #: pte_paddr -> PteRef of currently armed entries.
        self._armed: Dict[int, PteRef] = {}
        self.ticks = 0
        self.armed_total = 0
        self.captured_faults = 0
        self.stale_faults = 0
        self.ever_traced: Set[int] = set()
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    # ================================================================ arm
    def tick(self) -> None:
        """The periodic timer body: re-arm ring PTEs, arm new adj pages."""
        self.ticks += 1
        kernel = self.kernel
        armed = 0
        # 1. Re-arm PTEs captured since the last tick.
        for ref in list(self.ringbuf.drain()):
            if self._arm_ref(ref):
                armed += 1
        # 2. Arm newly adjacent pages and free their adj_rbtree nodes.
        adj_tree = self.collector.structs.adj_rbtree
        for ppn in list(adj_tree.keys()):
            armed += self._arm_ppn(ppn)
            adj_tree.delete(ppn)
        cost = (kernel.cost.timer_base_ns
                + kernel.cost.timer_per_pte_ns * armed)
        kernel.clock.advance(cost)
        kernel.accountant.charge("softtrr_timer", cost)
        self.armed_total += armed

    def _arm_ppn(self, ppn: int) -> int:
        """Arm every virtual mapping of a physical page; returns count."""
        armed = 0
        for pid, vaddr in self.kernel.rmap.mappings_of(ppn):
            process = self.kernel.processes.get(pid)
            if process is None:
                continue
            walk = self.kernel.software_walk(process.mm, vaddr)
            if walk is None:
                continue
            mapped_ppn, leaf_level, pte_paddr, entry = walk
            ref = PteRef(pte_paddr=pte_paddr, vaddr=vaddr, pid=pid,
                         ppn=ppn, leaf_level=leaf_level)
            if self._arm_entry(ref, entry):
                armed += 1
        if armed:
            self.ever_traced.add(ppn)
        return armed

    def _arm_ref(self, ref: PteRef) -> bool:
        """Re-arm a ring-buffer entry, validating it is not stale."""
        entry = self._read_entry(ref.pte_paddr)
        if not bits.is_present(entry):
            return False
        base_ppn = bits.pte_ppn(entry)
        if ref.leaf_level == 2:
            if not base_ppn <= ref.ppn < base_ppn + 512:
                return False
        elif base_ppn != ref.ppn:
            return False
        if not self.collector.is_adjacent(ref.ppn):
            return False  # adjacency revoked since capture
        return self._arm_entry(ref, entry)

    def _arm_entry(self, ref: PteRef, entry: int) -> bool:
        """Set the trace bit in one leaf PTE and flush its TLB entry."""
        if not bits.is_present(entry):
            return False
        if ref.pte_paddr in self._armed:
            return False
        new_entry = self._mark(entry)
        if new_entry == entry:
            return False
        self._write_entry(ref.pte_paddr, new_entry)
        self.kernel.mmu.invlpg(ref.vaddr)
        self._armed[ref.pte_paddr] = ref
        if self.trace is not None:
            self.trace.emit("pte.arm", pte_paddr=ref.pte_paddr,
                            vaddr=ref.vaddr, ppn=ref.ppn)
        return True

    # ============================================================== faults
    def on_page_fault(self, process, fault: PageFaultInfo):
        """do_page_fault hook: capture our trace faults, pass the rest."""
        if not self._claims(fault):
            return None
        entry = self._read_entry(fault.pte_paddr)
        ref = self._armed.pop(fault.pte_paddr, None)
        if ref is None or not self._is_marked(entry):
            # A reserved-bit fault we did not cause: let the kernel
            # treat it as the corruption it is.
            return None
        # Disarm: restore the entry and flush the stale translation.
        self._write_entry(fault.pte_paddr, self._unmark(entry))
        self.kernel.mmu.invlpg(ref.vaddr)
        if self.trace is not None:
            self.trace.emit("pte.disarm", pte_paddr=fault.pte_paddr,
                            vaddr=ref.vaddr)
        cost = self.kernel.cost.trace_fault_ns
        self.kernel.clock.advance(cost)
        self.kernel.accountant.charge("softtrr_trace_fault", cost)
        # Which 4 KiB page was accessed?
        if ref.leaf_level == 2:
            accessed_ppn = bits.pte_ppn(entry) + bits.level_index(fault.vaddr, 1)
        else:
            accessed_ppn = bits.pte_ppn(entry)
        if not self.collector.is_adjacent(accessed_ppn):
            self.stale_faults += 1
            return "softtrr-stale"
        self.captured_faults += 1
        self.ever_traced.add(accessed_ppn)
        if self.trace is not None:
            self.trace.emit("tracer.capture", ppn=accessed_ppn,
                            pte_paddr=ref.pte_paddr)
        # Re-queue for the next timer.
        self.ringbuf.push(PteRef(
            pte_paddr=ref.pte_paddr, vaddr=ref.vaddr, pid=ref.pid,
            ppn=accessed_ppn, leaf_level=ref.leaf_level))
        # Charge-leak updates: (a) the page's own rows (explicit attacks).
        for bank, row in self.collector.page_rows_of(accessed_ppn):
            self.refresher.on_adjacent_access(bank, row)
        # (b) the page's leaf-table rows (implicit attacks/PThammer):
        # walking to this page activates its L1PT row — and, with the
        # Section VII extension, its L2 row too.
        if ref.leaf_level == 1:
            l1_ppn = ref.pte_paddr >> 12
            for bank, row in self.collector.page_rows_of(l1_ppn):
                self.refresher.on_adjacent_access(bank, row)
            if 2 in self.params.protect_levels:
                l2_ppn = self._l2_table_of(ref.pid, ref.vaddr)
                if l2_ppn is not None:
                    for bank, row in self.collector.page_rows_of(l2_ppn):
                        self.refresher.on_adjacent_access(bank, row)
        elif ref.leaf_level == 2 and 2 in self.params.protect_levels:
            l2_ppn = ref.pte_paddr >> 12
            for bank, row in self.collector.page_rows_of(l2_ppn):
                self.refresher.on_adjacent_access(bank, row)
        return "softtrr-traced"

    def _l2_table_of(self, pid: int, vaddr: int) -> Optional[int]:
        """PPN of the L2 (PMD) table covering ``vaddr`` in ``pid``."""
        process = self.kernel.processes.get(pid)
        if process is None:
            return None
        table = process.mm.pml4_ppn
        for level in (4, 3):
            entry = self.kernel.mmu.pt_ops.raw_read_entry(
                table, bits.level_index(vaddr, level))
            if not bits.is_present(entry):
                return None
            table = bits.pte_ppn(entry)
        return table

    def on_page_mapped(self, process, vaddr: int, ppn: int,
                       leaf_level: int) -> None:
        """page-mapped hook: catch pages that become adjacent later."""
        if leaf_level == 2:
            pages = range(ppn, ppn + 512)
        else:
            pages = (ppn,)
        l1_ppn = None
        if leaf_level == 1:
            walk = self.kernel.software_walk(process.mm, vaddr)
            if walk is not None and walk[1] == 1:
                l1_ppn = walk[2] >> 12
        for page in pages:
            if self.collector.is_adjacent(page):
                continue
            if self.collector.classify_new_page(page, l1_ppn):
                self.collector.register_dynamic_adjacent(page)

    def on_pte_cleared(self, pte_paddr: int) -> None:
        """pte-cleared hook: kernel unmap code zeroed this entry.

        The mark died with the entry, so the armed record must go too —
        a stale record would block re-arming when the slot is recycled
        for a new mapping (and desynchronise the tracker from DRAM, the
        exact failure mode the PTE sanitizer exists to catch).
        """
        self._armed.pop(pte_paddr, None)

    def purge_table(self, table_ppn: int) -> None:
        """Forget armed entries living in a freed page-table page.

        Without this, a recycled L1PT frame could alias a stale armed
        record and block re-arming at the same entry address.
        """
        for pte_paddr in list(self._armed):
            if pte_paddr >> 12 == table_ppn:
                del self._armed[pte_paddr]

    def resync_armed(self) -> int:
        """Drop armed records whose PTE no longer carries the mark.

        Graceful-degradation path (``repro.faults``): when the
        ``pte_cleared`` / ``__free_pages`` notify was dropped, the armed
        registry still references slots the kernel has since zeroed or
        recycled.  Re-reading each entry and discarding unmarked ones
        restores the invariant that armed records mirror marked PTEs,
        unblocking re-arming on recycled slots.  Returns records dropped.
        """
        repaired = 0
        for pte_paddr in list(self._armed):
            entry = self._read_entry(pte_paddr)
            if not self._is_marked(entry):
                del self._armed[pte_paddr]
                repaired += 1
        return repaired

    def reflush_armed(self) -> int:
        """Re-issue ``invlpg`` for armed entries with a live TLB entry.

        Graceful-degradation path (``repro.faults`` tlb site): arming
        always flushes the translation, so *any* TLB entry covering an
        armed vaddr is a stale one — a lost shootdown that lets accesses
        bypass the trace fault entirely.  Returns translations flushed.
        """
        flushed = 0
        for ref in list(self._armed.values()):
            if self.kernel.mmu.tlb.peek(ref.vaddr) is not None:
                self.kernel.mmu.invlpg(ref.vaddr)
                flushed += 1
        return flushed

    def requeue_untraced(self) -> int:
        """Put dropped-out adjacent pages back on the arming queue.

        Graceful-degradation path (``repro.faults`` mmu site): a
        swallowed trace fault disarms the PTE without the ring-buffer
        re-queue, so the page silently leaves the arm/capture cycle
        (ring overflow loses pages the same way).  Any *mapped* adjacent
        page that is neither armed, nor pending in the ring, nor already
        queued in ``adj_rbtree`` is re-queued for the next tick.
        Returns pages re-queued.
        """
        armed_ppns = {ref.ppn for ref in self._armed.values()}
        pending_ppns = {ref.ppn for ref in self.ringbuf.peek_all()}
        adj_tree = self.collector.structs.adj_rbtree
        requeued = 0
        for ppn in self.collector.adjacent_ppns():
            if ppn in armed_ppns or ppn in pending_ppns or ppn in adj_tree:
                continue
            if not self.kernel.rmap.is_mapped(ppn):
                continue
            adj_tree.insert(ppn, True)
            requeued += 1
        return requeued

    # ============================================================ teardown
    def disarm_all(self) -> int:
        """Clear the trace bit everywhere (module unload); returns count."""
        restored = 0
        for pte_paddr, ref in list(self._armed.items()):
            entry = self._read_entry(pte_paddr)
            if self._is_marked(entry):
                self._write_entry(pte_paddr, self._unmark(entry))
                self.kernel.mmu.invlpg(ref.vaddr)
                restored += 1
        self._armed.clear()
        return restored

    # ====================================================== bit strategies
    def _claims(self, fault: PageFaultInfo) -> bool:
        return fault.is_reserved_bit and fault.pte_paddr is not None

    @staticmethod
    def _mark(entry: int) -> int:
        return entry | bits.PTE_RSVD_TRACE

    @staticmethod
    def _unmark(entry: int) -> int:
        return entry & ~bits.PTE_RSVD_TRACE

    @staticmethod
    def _is_marked(entry: int) -> bool:
        return bool(entry & bits.PTE_RSVD_TRACE)

    # ------------------------------------------------------------ pt I/O
    def _read_entry(self, pte_paddr: int) -> int:
        table = pte_paddr >> 12
        index = (pte_paddr & 0xFFF) // 8
        return self.kernel.mmu.pt_ops.read_entry(table, index)

    def _write_entry(self, pte_paddr: int, entry: int) -> None:
        table = pte_paddr >> 12
        index = (pte_paddr & 0xFFF) // 8
        self.kernel.mmu.pt_ops.write_entry(table, index, entry)

    # -------------------------------------------------------------- stats
    def traced_live_count(self) -> int:
        """Currently adjacent (traced) pages — the Fig. 5 series."""
        return self.collector.adjacent_count()

    def traced_ever_count(self) -> int:
        """Distinct pages ever traced."""
        return len(self.ever_traced)


class PresentBitTracer(AdjacentPageTracer):
    """The rejected present-bit design (Section IV-C).

    Arms pages by *clearing* the present bit; captures the resulting
    non-present faults by checking its armed-PTE registry.  Works for
    plain loads — and panics the kernel the moment ``fork`` copies an
    address space containing an armed entry, because the kernel's
    present-bit consistency check sees a non-zero, non-present leaf
    "and the tracer is unaware of when the forking occurs and it cannot
    restore present bit to 1 to pass the kernel check".
    """

    TRACE_MODE = "present"

    def _claims(self, fault: PageFaultInfo) -> bool:
        return (
            fault.is_non_present
            and fault.pte_paddr is not None
            and fault.pte_paddr in self._armed
        )

    @staticmethod
    def _mark(entry: int) -> int:
        return entry & ~bits.PTE_PRESENT

    @staticmethod
    def _unmark(entry: int) -> int:
        return entry | bits.PTE_PRESENT

    @staticmethod
    def _is_marked(entry: int) -> bool:
        return not bits.is_present(entry)

    def _arm_entry(self, ref: PteRef, entry: int) -> bool:
        # Present-bit arming must bypass the is_present() guard.
        if ref.pte_paddr in self._armed:
            return False
        if not bits.is_present(entry):
            return False
        self._write_entry(ref.pte_paddr, self._mark(entry))
        self.kernel.mmu.invlpg(ref.vaddr)
        self._armed[ref.pte_paddr] = ref
        if self.trace is not None:
            self.trace.emit("pte.arm", pte_paddr=ref.pte_paddr,
                            vaddr=ref.vaddr, ppn=ref.ppn)
        return True

    def _arm_ref(self, ref: PteRef) -> bool:
        entry = self._read_entry(ref.pte_paddr)
        if not bits.is_present(entry):
            return False
        if not self.collector.is_adjacent(ref.ppn):
            return False
        return self._arm_entry(ref, entry)
