"""The SoftTRR loadable kernel module.

:class:`SoftTrr` wires the collector, tracer and refresher together and
attaches to the kernel exactly the way the paper's LKM does — through
dynamic hooks and a periodic timer, with no kernel modification (DP2):

* ``__pte_alloc``   -> collector (new L1PT pages);
* ``__free_pages``  -> collector (page-table and adjacent-page deaths);
* ``do_page_fault`` -> tracer (captures RSVD trace faults);
* ``page_mapped``   -> tracer (pages that become adjacent later);
* a ``timer_inr``-periodic kernel timer -> tracer tick.

Typical use::

    kernel = Kernel(perf_testbed())
    softtrr = SoftTrr(SoftTrrParams(max_distance=6))
    kernel.load_module("softtrr", softtrr)
    ...
    stats = softtrr.stats()

The two evaluation configurations of Section VI are
``SoftTrrParams(max_distance=6)`` (Δ±6, the default) and
``SoftTrrParams(max_distance=1)`` (Δ±1, the one-row assumption previous
work makes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SoftTrrError
from ..kernel.hooks import (
    HOOK_FREE_PAGES,
    HOOK_PAGE_FAULT,
    HOOK_PAGE_MAPPED,
    HOOK_PMD_ALLOC,
    HOOK_PTE_ALLOC,
    HOOK_PTE_CLEARED,
)
from ..kernel.physmem import FrameUse
from .collector import PageTableCollector
from .profile import OfflineProfile, SoftTrrParams
from .refresher import RowRefresher
from .structures import SoftTrrStructures
from .tracer import AdjacentPageTracer, PresentBitTracer


@dataclass
class SoftTrrStats:
    """Snapshot of the module's observable state."""

    protected_pages: int
    traced_pages_live: int
    traced_pages_ever: int
    refreshes: int
    leak_bumps: int
    captured_faults: int
    ticks: int
    memory_bytes: int
    tree_bytes: int
    ringbuf_bytes: int
    load_time_ns: int
    # Graceful-degradation counters (``repro.faults``); all zero when no
    # fault plan is active and healing is off.
    failed_refreshes: int = 0
    retried_refreshes: int = 0
    watchdog_refreshes: int = 0
    resyncs: int = 0
    resync_repairs: int = 0


class SoftTrr:
    """The SoftTRR module (Figure 1)."""

    name = "softtrr"

    def __init__(self, params: Optional[SoftTrrParams] = None,
                 force_unsafe: bool = False, assume_remap=None) -> None:
        self.params = params or SoftTrrParams()
        #: Skip the offline-profile safety check at load (ablations only).
        self.force_unsafe = force_unsafe
        #: In-DRAM remap the module *believes* the DIMM uses.  None =
        #: use the machine's true remap (the paper's assumption that it
        #: was reverse-engineered correctly); passing IdentityRemap on a
        #: folded module models a wrong assumption (ablation).
        self.assume_remap = assume_remap
        self.kernel = None
        self.structs: Optional[SoftTrrStructures] = None
        self.collector: Optional[PageTableCollector] = None
        self.tracer: Optional[AdjacentPageTracer] = None
        self.refresher: Optional[RowRefresher] = None
        self._timer_event = None
        self._hook_callbacks = []
        self.loaded = False
        self.load_time_ns = 0
        #: Simulated time of the last *delivered* tick; the watchdog
        #: compares successive values against timer_inr to detect ticks
        #: the machine lost (repro.faults timer site).
        self._last_tick_ns: Optional[int] = None
        self.resyncs = 0
        self.resync_repairs = 0
        #: Simulated time the module has added on top of the workload:
        #: timer ticks, captured trace faults (including their kernel
        #: entry), hook work.  The workload engine reads this to keep
        #: slice padding from masking the defense's cost.
        self.overhead_ns = 0
        # Trace hub, or None when tracing is off (picked up from
        # ``kernel.trace_hub`` at load and fanned out to the components).
        self.trace = None

    # ================================================================ load
    def load(self, kernel) -> None:
        """Module init: collect, hook, start the tracer timer."""
        if self.loaded:
            raise SoftTrrError("SoftTRR already loaded")
        self.kernel = kernel
        profile = OfflineProfile(kernel.dram.timings)
        if not self.force_unsafe and not profile.is_safe(self.params):
            raise SoftTrrError(
                f"unsafe configuration: protection window "
                f"{self.params.protection_window_ns} ns exceeds the DRAM "
                f"time-to-first-flip {profile.threshold_ns()} ns"
            )
        remap = self.assume_remap if self.assume_remap is not None \
            else kernel.dram.remap
        self.structs = SoftTrrStructures(remap=remap)
        self.collector = PageTableCollector(kernel, self.structs, self.params)
        self.refresher = RowRefresher(kernel, self.structs, self.params)
        tracer_cls = (PresentBitTracer if self.params.trace_bit == "present"
                      else AdjacentPageTracer)
        self.tracer = tracer_cls(kernel, self.collector, self.refresher,
                                 self.params)
        # Fan the machine's trace hub (if any) out to the components
        # before the initial collection so its span is recorded too.
        hub = getattr(kernel, "trace_hub", None)
        self.trace = hub
        if hub is not None:
            self.collector.trace = hub
            self.refresher.trace = hub
            self.tracer.trace = hub
        # Initial collection, with its one-off load cost (the paper
        # measures ~28 ms): walking every VMA page of every process.
        start = kernel.clock.now_ns
        walked_pages = sum(
            vma.page_count
            for process in kernel.processes.values()
            for vma in process.mm.vmas
        )
        collected = self.collector.initial_collect()
        # ~140 ns per walked VMA page + ~2 us per collected L1PT: at the
        # resident population of a desktop system (~200 K mapped pages)
        # this extrapolates to the paper's ~28 ms one-off load cost.
        kernel.clock.advance(walked_pages * 140 + collected * 2_000)
        self.load_time_ns = kernel.clock.now_ns - start
        # Hooks (kept so unload can detach exactly what it attached).
        self._hook_callbacks = [
            (HOOK_PTE_ALLOC, self._on_pte_alloc),
            (HOOK_FREE_PAGES, self._on_free_pages),
            (HOOK_PAGE_FAULT, self._on_page_fault),
            (HOOK_PAGE_MAPPED, self._on_page_mapped),
            (HOOK_PTE_CLEARED, self._on_pte_cleared),
        ]
        if 2 in self.params.protect_levels:
            self._hook_callbacks.append((HOOK_PMD_ALLOC, self._on_pmd_alloc))
        for point, callback in self._hook_callbacks:
            kernel.hooks.register(point, callback)
        self._timer_event = kernel.timers.add_periodic(
            self.params.timer_inr_ns, self._on_tick, name="softtrr-tick")
        self._last_tick_ns = kernel.clock.now_ns
        self.loaded = True

    def _on_tick(self) -> None:
        kernel = self.kernel
        t0 = kernel.clock.now_ns
        span = (self.trace.span_begin("softtrr.tick")
                if self.trace is not None else 0)
        params = self.params
        if params.heal_watchdog and self._last_tick_ns is not None:
            # Missed-window detection: successive delivered ticks should
            # be one timer_inr apart; each extra interval is a window in
            # which a traced page could have taken an uncounted access.
            gap = t0 - self._last_tick_ns
            missed = gap // params.timer_inr_ns - 1
            if missed >= 1:
                self.refresher.compensate(missed)
                injector = getattr(kernel, "fault_injector", None)
                if injector is not None:
                    injector.note_healed("timers", missed)
        self.tracer.tick()
        if (params.heal_resync_every
                and self.tracer.ticks % params.heal_resync_every == 0):
            self.resync()
        self._last_tick_ns = t0
        self.overhead_ns += kernel.clock.now_ns - t0
        if self.trace is not None:
            self.trace.span_end("softtrr.tick", span)

    def resync(self) -> int:
        """Re-walk collector and armed-PTE state (heal_resync_every).

        Repairs the desync left by dropped hook deliveries: uncollected
        live page tables, stale protected entries, armed records whose
        PTE lost its mark.  Returns the number of repairs.
        """
        if not self.loaded:
            raise SoftTrrError("SoftTRR not loaded")
        hook_repairs = self.collector.resync()
        hook_repairs += self.tracer.resync_armed()
        flushed = self.tracer.reflush_armed()
        requeued = self.tracer.requeue_untraced()
        repairs = hook_repairs + flushed + requeued
        self.resyncs += 1
        self.resync_repairs += repairs
        # Bounded re-walk of live tables: charge like collector hook work.
        cost = self.kernel.cost.collector_hook_ns * max(1, repairs)
        self.kernel.clock.advance(cost)
        self.kernel.accountant.charge("softtrr_collector", cost)
        injector = getattr(self.kernel, "fault_injector", None)
        if injector is not None:
            if hook_repairs:
                injector.note_healed("hooks", hook_repairs)
            if flushed:
                injector.note_healed("tlb", flushed)
            if requeued:
                injector.note_healed("mmu", requeued)
        return repairs

    def _on_page_fault(self, process, fault):
        t0 = self.kernel.clock.now_ns
        result = self.tracer.on_page_fault(process, fault)
        if result is not None:
            # The fault would not exist without tracing: its kernel
            # entry/exit overhead is the module's cost too.
            self.overhead_ns += (self.kernel.clock.now_ns - t0
                                 + self.kernel.cost.page_fault_overhead_ns)
        return result

    def _on_page_mapped(self, process, vaddr, ppn, leaf_level) -> None:
        t0 = self.kernel.clock.now_ns
        # The adjacency check is real kernel work on the mapping path.
        self.kernel.clock.advance(120)
        self.kernel.accountant.charge("softtrr_collector", 120)
        self.tracer.on_page_mapped(process, vaddr, ppn, leaf_level)
        self.overhead_ns += self.kernel.clock.now_ns - t0

    def _on_pte_alloc(self, process, pt_ppn: int) -> None:
        t0 = self.kernel.clock.now_ns
        self.kernel.clock.advance(self.kernel.cost.collector_hook_ns)
        self.kernel.accountant.charge(
            "softtrr_collector", self.kernel.cost.collector_hook_ns)
        self.collector.on_pt_alloc(process, pt_ppn)
        self.overhead_ns += self.kernel.clock.now_ns - t0

    def _on_pte_cleared(self, pte_paddr: int) -> None:
        self.tracer.on_pte_cleared(pte_paddr)

    def _on_pmd_alloc(self, process, pmd_ppn: int) -> None:
        t0 = self.kernel.clock.now_ns
        self.kernel.clock.advance(self.kernel.cost.collector_hook_ns)
        self.kernel.accountant.charge(
            "softtrr_collector", self.kernel.cost.collector_hook_ns)
        self.collector.on_pmd_alloc(process, pmd_ppn)
        self.overhead_ns += self.kernel.clock.now_ns - t0

    # ----------------------------------------------- Section VII user API
    def protect_user_object(self, process, vaddr: int, length: int) -> int:
        """Protect an arbitrary user object (Section VII): "trusted user
        can pass specified objects (i.e., binary code pages of setuid
        processes) to SoftTRR through a provided user API and SoftTRR
        uses similar mechanisms to protect those objects."

        Pre-faults the range, then registers every backing frame as a
        protected page: its DRAM rows join ``pt_row_rbtree``, nearby
        user pages become traced, and the Row Refresher recharges the
        object's rows when hammering is detected.  Returns the number of
        pages protected.
        """
        if not self.loaded:
            raise SoftTrrError("SoftTRR not loaded")
        kernel = self.kernel
        kernel.mlock(process, vaddr, length)
        protected = 0
        end = vaddr + length
        page = vaddr & ~0xFFF
        while page < end:
            ppn = kernel.mapped_ppn_of(process, page)
            if ppn is not None and self.collector.protect_object_page(ppn):
                protected += 1
            page += 4096
        return protected

    def _on_free_pages(self, base_ppn: int, order: int, use) -> None:
        t0 = self.kernel.clock.now_ns
        self.kernel.clock.advance(self.kernel.cost.collector_hook_ns)
        self.kernel.accountant.charge(
            "softtrr_collector", self.kernel.cost.collector_hook_ns)
        self.collector.on_free_pages(base_ppn, order, use)
        if use is FrameUse.PAGE_TABLE:
            for ppn in range(base_ppn, base_ppn + (1 << order)):
                self.tracer.purge_table(ppn)
        self.overhead_ns += self.kernel.clock.now_ns - t0

    # ============================================================== unload
    def unload(self, kernel) -> None:
        """Module exit: detach hooks, stop the timer, disarm PTEs."""
        if not self.loaded:
            raise SoftTrrError("SoftTRR not loaded")
        for point, callback in self._hook_callbacks:
            kernel.hooks.unregister(point, callback)
        self._hook_callbacks = []
        if self._timer_event is not None:
            kernel.timers.cancel(self._timer_event)
            self._timer_event = None
        self.tracer.disarm_all()
        self.loaded = False

    # ================================================================ stats
    def memory_bytes(self) -> int:
        """Footprint of the three trees + the ring buffer (Fig. 4).

        Trees are counted at node granularity ("a total memory size of
        three red-black trees", Section VI-B); the ring buffer at its
        pre-allocated capacity (396 KiB).  Slab-page-granular numbers
        are available via ``structs.memory_bytes()``.
        """
        return (self.structs.live_node_bytes()
                + self.tracer.ringbuf.capacity_bytes())

    def stats(self) -> SoftTrrStats:
        """A consistent snapshot of the module's counters."""
        if self.structs is None:
            raise SoftTrrError("SoftTRR never loaded")
        return SoftTrrStats(
            protected_pages=self.collector.protected_count(),
            traced_pages_live=self.tracer.traced_live_count(),
            traced_pages_ever=self.tracer.traced_ever_count(),
            refreshes=self.refresher.refreshes,
            leak_bumps=self.refresher.leak_bumps,
            captured_faults=self.tracer.captured_faults,
            ticks=self.tracer.ticks,
            memory_bytes=self.memory_bytes(),
            tree_bytes=self.structs.live_node_bytes(),
            ringbuf_bytes=self.tracer.ringbuf.capacity_bytes(),
            load_time_ns=self.load_time_ns,
            failed_refreshes=self.refresher.failed_refreshes,
            retried_refreshes=self.refresher.retried_refreshes,
            watchdog_refreshes=self.refresher.watchdog_refreshes,
            resyncs=self.resyncs,
            resync_repairs=self.resync_repairs,
        )
