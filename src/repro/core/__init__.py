"""SoftTRR: software-only target row refresh (the paper's contribution).

The module mirrors the paper's Figure 1 decomposition:

* :mod:`repro.core.rbtree` / :mod:`repro.core.ringbuf` — the kernel-style
  data structures of Table I (three red-black trees + ``pte_ringbuf``).
* :mod:`repro.core.structures` — the node payloads (``bank_struct`` etc.)
  and their slab-backed memory accounting.
* :mod:`repro.core.profile` — the offline profile of Section IV-E
  (``threshold = tRC x #ACT`` -> ``timer_inr`` / ``count_limit``).
* :mod:`repro.core.collector` — the Page Table Collector.
* :mod:`repro.core.tracer` — the Adjacent Page Tracer (plus the doomed
  present-bit variant the paper explains it rejected).
* :mod:`repro.core.refresher` — the Row Refresher.
* :mod:`repro.core.softtrr` — the loadable-module facade
  (:class:`~repro.core.softtrr.SoftTrr`).
"""

from .rbtree import RbTree
from .ringbuf import PteRingBuffer, PteRef
from .structures import BankStruct, PtRowEntry, SoftTrrStructures
from .profile import OfflineProfile, SoftTrrParams
from .collector import PageTableCollector
from .tracer import AdjacentPageTracer, PresentBitTracer
from .refresher import RowRefresher
from .softtrr import SoftTrr

__all__ = [
    "RbTree",
    "PteRingBuffer",
    "PteRef",
    "BankStruct",
    "PtRowEntry",
    "SoftTrrStructures",
    "OfflineProfile",
    "SoftTrrParams",
    "PageTableCollector",
    "AdjacentPageTracer",
    "PresentBitTracer",
    "RowRefresher",
    "SoftTrr",
]
