"""Red-black tree, implemented from scratch in kernel style.

SoftTRR "reuse[s] the kernel's red-black tree structure, an efficient
self-balancing binary search tree that guarantees searching in
Theta(log n) time" (Section IV-A) for ``pt_rbtree``, ``adj_rbtree`` and
``pt_row_rbtree``.  This is a faithful CLRS-style implementation with
insert, delete, search, min/iteration and the classic invariants:

1. every node is red or black;
2. the root is black;
3. red nodes have black children;
4. every root-to-leaf path has the same number of black nodes.

The tree maps an integer key (PPN or row index) to an arbitrary value.
An optional ``on_alloc``/``on_free`` pair lets the owner charge node
allocations to a slab cache, which is how the Fig. 4 memory accounting
is wired up.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any) -> None:
        self.key = key
        self.value = value
        self.color = RED
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None


class RbTree:
    """An int-keyed red-black tree."""

    def __init__(
        self,
        on_alloc: Optional[Callable[[], Any]] = None,
        on_free: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self._on_alloc = on_alloc
        self._on_free = on_free
        self._handles: dict = {}

    # ------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not None

    def get(self, key: int, default: Any = None) -> Any:
        """Value stored under ``key``, or ``default``."""
        node = self._find(key)
        return node.value if node is not None else default

    def _find(self, key: int) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def min_key(self) -> Optional[int]:
        """Smallest key, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (key, value) iteration."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[int]:
        """In-order key iteration."""
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------- insert
    def insert(self, key: int, value: Any) -> bool:
        """Insert or update; returns True if a new node was created."""
        parent = None
        node = self._root
        while node is not None:
            parent = node
            if key == node.key:
                node.value = value
                return False
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value)
        fresh.parent = parent
        if parent is None:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        if self._on_alloc is not None:
            self._handles[key] = self._on_alloc()
        self._insert_fixup(fresh)
        return True

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent is not None and z.parent.color is RED:
            grand = z.parent.parent
            if grand is None:
                break
            if z.parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        if self._root is not None:
            self._root.color = BLACK

    # ------------------------------------------------------------- delete
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True if it existed."""
        node = self._find(key)
        if node is None:
            return False
        self._delete_node(node)
        self._size -= 1
        if self._on_free is not None:
            handle = self._handles.pop(key, None)
            if handle is not None:
                self._on_free(handle)
        return True

    def pop(self, key: int, default: Any = None) -> Any:
        """Remove ``key`` and return its value (or ``default``)."""
        node = self._find(key)
        if node is None:
            return default
        value = node.value
        self.delete(key)
        return value

    def _transplant(self, u: _Node, v: Optional[_Node]) -> None:
        if u.parent is None:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    @staticmethod
    def _minimum(node: _Node) -> _Node:
        while node.left is not None:
            node = node.left
        return node

    def _delete_node(self, z: _Node) -> None:
        y = z
        y_color = y.color
        if z.left is None:
            x, x_parent = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, x_parent = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x, x_parent)

    def _delete_fixup(self, x: Optional[_Node], parent: Optional[_Node]) -> None:
        while x is not self._root and (x is None or x.color is BLACK):
            if parent is None:
                break
            if x is parent.left:
                w = parent.right
                if w is not None and w.color is RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    w = parent.right
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color is BLACK
                w_right_black = w.right is None or w.right.color is BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_right_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = parent.right
                    w.color = parent.color
                    parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(parent)
                    x = self._root
                    parent = None
            else:
                w = parent.left
                if w is not None and w.color is RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    w = parent.left
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color is BLACK
                w_right_black = w.right is None or w.right.color is BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_left_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = parent.left
                    w.color = parent.color
                    parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(parent)
                    x = self._root
                    parent = None
        if x is not None:
            x.color = BLACK

    # --------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Assert all four red-black invariants (used by tests)."""
        if self._root is None:
            return
        assert self._root.color is BLACK, "root must be black"

        def walk(node: Optional[_Node], lo, hi) -> int:
            if node is None:
                return 1
            assert (lo is None or node.key > lo) and (
                hi is None or node.key < hi
            ), "BST ordering violated"
            if node.color is RED:
                for child in (node.left, node.right):
                    assert child is None or child.color is BLACK, \
                        "red node has red child"
            left_black = walk(node.left, lo, node.key)
            right_black = walk(node.right, node.key, hi)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (1 if node.color is BLACK else 0)

        walk(self._root, None, None)
