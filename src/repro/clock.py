"""Discrete-event simulated clock.

Everything in the reproduction runs on *simulated nanoseconds*: DRAM
activations cost ``tRC``-ish latencies, page faults cost microseconds,
SoftTRR's tracer timer fires every ``timer_inr`` (1 ms in the paper), and
DRAM auto-refresh closes the hammer window every 64 ms.  A single
:class:`SimClock` instance is shared by the DRAM module, the MMU, the
kernel, and the SoftTRR module so that all of those time scales interleave
deterministically.

The clock is passive: time advances only when a component calls
:meth:`SimClock.advance`.  Scheduled events (kernel timers, periodic
housekeeping) do **not** fire from inside ``advance``; instead the kernel
calls :meth:`SimClock.pop_due` at its dispatch points (the top of every
memory-access batch and fault return path) and runs the due callbacks.
This mirrors how a real kernel only services timer interrupts at
interruptible points, and keeps re-entrancy out of the model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .errors import ConfigError

#: Nanoseconds per microsecond / millisecond / second, for readable math.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


@dataclass(frozen=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulated time.

    ``period_ns`` non-zero makes the event re-arm itself each time it is
    popped, which is how kernel periodic timers (and SoftTRR's 1 ms tracer
    timer) are modelled.
    """

    when_ns: int
    seq: int
    callback: Callable[[], None]
    period_ns: int = 0
    name: str = ""


class SimClock:
    """A deterministic, monotonically advancing nanosecond clock.

    Components share one instance.  Typical use::

        clock = SimClock()
        clock.schedule(NS_PER_MS, tracer_tick, period_ns=NS_PER_MS)
        ...
        clock.advance(access_latency_ns)
        for event in clock.pop_due():
            event.callback()
    """

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ConfigError("clock cannot start before t=0")
        self._now_ns = start_ns
        self._heap: List[Tuple[int, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    # ------------------------------------------------------------------ time
    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds (convenience)."""
        return self._now_ns / NS_PER_MS

    def advance(self, delta_ns: int) -> int:
        """Advance simulated time by ``delta_ns`` and return the new time.

        Negative deltas are rejected: simulated time is monotonic.
        """
        if delta_ns < 0:
            raise ConfigError(f"cannot advance clock by {delta_ns} ns")
        self._now_ns += int(delta_ns)
        return self._now_ns

    def advance_to(self, when_ns: int) -> int:
        """Advance simulated time to an absolute timestamp (if later)."""
        if when_ns > self._now_ns:
            self._now_ns = int(when_ns)
        return self._now_ns

    # ---------------------------------------------------------------- events
    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        *,
        period_ns: int = 0,
        name: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to become due ``delay_ns`` from now.

        Returns the event handle, which can be passed to :meth:`cancel`.
        """
        if delay_ns < 0:
            raise ConfigError("cannot schedule an event in the past")
        if period_ns < 0:
            raise ConfigError("event period must be >= 0")
        event = ScheduledEvent(
            when_ns=self._now_ns + delay_ns,
            seq=next(self._seq),
            callback=callback,
            period_ns=period_ns,
            name=name,
        )
        heapq.heappush(self._heap, (event.when_ns, event.seq, event))
        if self.trace is not None:
            self.trace.emit("clock.schedule", at_ns=event.when_ns,
                            period_ns=period_ns, name=name)
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event.  Cancelling twice is a no-op."""
        self._cancelled.add(event.seq)

    def is_cancelled(self, event: ScheduledEvent) -> bool:
        """Whether ``event`` has a pending cancellation.

        Needed by dispatchers that popped a batch of due events and then
        saw one callback cancel a sibling: the sibling is already out of
        the heap, so the heap-side lazy discard cannot stop it — the
        dispatcher must check before firing.
        """
        return event.seq in self._cancelled

    def discard_cancellation(self, event: ScheduledEvent) -> None:
        """Forget a pending cancellation for ``event``.

        A dispatcher that skipped firing a cancelled *one-shot* event
        calls this: no heap copy remains to consume the cancellation
        lazily.  Periodic events must NOT be discarded by dispatchers —
        their re-armed instance (same seq) still sits in the heap and
        relies on the pending cancellation to die at the next pop.
        """
        self._cancelled.discard(event.seq)

    def next_due_ns(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None``."""
        while self._heap:
            when, seq, event = self._heap[0]
            if seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(seq)
                continue
            return when
        return None

    def pop_due(self) -> List[ScheduledEvent]:
        """Pop (without running) every event due at or before *now*.

        Periodic events are transparently re-armed for their next period
        before being returned, so a caller that runs each returned
        callback gets steady-state periodic behaviour.  Events are
        returned in (time, schedule-order) order.
        """
        due: List[ScheduledEvent] = []
        while self._heap and self._heap[0][0] <= self._now_ns:
            _, seq, event = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            due.append(event)
            if event.period_ns > 0:
                # Re-arm relative to the *scheduled* time, not the pop
                # time, so a long stall does not shift the phase of the
                # timer permanently; but never schedule into the past
                # more than one period (coalesce missed ticks, as the
                # kernel's timer wheel effectively does for LKM timers).
                next_when = event.when_ns + event.period_ns
                if next_when <= self._now_ns:
                    periods_missed = (self._now_ns - event.when_ns) // event.period_ns
                    next_when = event.when_ns + (periods_missed + 1) * event.period_ns
                # The renewed event keeps its seq so that a handle from
                # schedule() cancels every future firing, not just the
                # first one.
                renewed = ScheduledEvent(
                    when_ns=next_when,
                    seq=event.seq,
                    callback=event.callback,
                    period_ns=event.period_ns,
                    name=event.name,
                )
                heapq.heappush(self._heap, (renewed.when_ns, renewed.seq, renewed))
        return due

    def pending_count(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)


@dataclass
class CycleAccountant:
    """Accumulates simulated time per named category.

    The performance evaluation (Tables III/IV) needs to know not just the
    total runtime of a workload but *where* SoftTRR added time: page
    faults, timer ticks, row refreshes, and collector hook work.  Each
    component charges its costs here as well as advancing the shared
    clock.
    """

    totals_ns: dict = field(default_factory=dict)

    def charge(self, category: str, delta_ns: int) -> None:
        """Add ``delta_ns`` to ``category``'s running total."""
        self.totals_ns[category] = self.totals_ns.get(category, 0) + int(delta_ns)

    def total(self, category: str) -> int:
        """Total nanoseconds charged to ``category`` so far."""
        return self.totals_ns.get(category, 0)

    def grand_total(self) -> int:
        """Sum across every category."""
        return sum(self.totals_ns.values())

    def snapshot(self) -> dict:
        """A copy of the per-category totals (ns)."""
        return dict(self.totals_ns)

    def reset(self) -> None:
        """Zero every category."""
        self.totals_ns.clear()
