"""The 4-level hardware page walk.

Faithfully models the two behaviours the paper's mechanisms hang on:

* **RSVD faults** — if any entry on the walk has a reserved bit set (in
  particular SoftTRR's bit 51 in a *leaf* entry), the walk raises a page
  fault whose error code has RSVD (and P) set, before the access touches
  the data page.  This is the tracer's capture point.
* **PTE fetches are memory accesses** — each walk step loads its entry
  through the CPU cache; a clflushed (or never-cached) entry reaches
  DRAM and activates the page-table row.  This is PThammer's hammer
  primitive.

Permissions accumulate across levels as on real hardware (user and
write access require US/RW set at *every* level; NX at any level makes
the region non-executable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MmuError, PageFaultException
from . import bits
from .faults import PageFaultInfo, access_error_code
from .page_table import PageTableOps


@dataclass(frozen=True)
class Translation:
    """Result of a successful walk for one virtual address."""

    #: PPN of the 4 KiB frame containing the address.
    ppn: int
    #: Base PPN of the leaf mapping (== ppn for 4 KiB, 2 MiB-aligned for huge).
    base_ppn: int
    #: Effective flags: PTE_RW / PTE_USER present iff allowed at all levels,
    #: PTE_NX present if any level forbids execution.
    flags: int
    #: 1 for a 4 KiB leaf (L1PT entry), 2 for a 2 MiB huge page (L2 entry).
    leaf_level: int
    #: Physical address of the leaf entry.
    pte_paddr: int


class Walker:
    """Hardware page-table walker."""

    def __init__(self, pt_ops: PageTableOps) -> None:
        self.pt_ops = pt_ops
        self.walks = 0

    def walk(
        self,
        cr3_ppn: int,
        vaddr: int,
        *,
        is_write: bool = False,
        is_user: bool = True,
        is_fetch: bool = False,
        pid=None,
    ) -> Translation:
        """Translate ``vaddr`` or raise :class:`PageFaultException`."""
        if not bits.is_canonical(vaddr):
            raise MmuError(f"non-canonical virtual address {vaddr:#x}")
        self.walks += 1
        table_ppn = cr3_ppn
        eff_rw = True
        eff_user = True
        nx = False
        for level in (4, 3, 2, 1):
            index = bits.level_index(vaddr, level)
            pte_paddr = self.pt_ops.entry_paddr(table_ppn, index)
            entry = self.pt_ops.read_entry(table_ppn, index)
            if not bits.is_present(entry):
                raise PageFaultException(PageFaultInfo(
                    vaddr=vaddr,
                    error_code=access_error_code(
                        is_write=is_write, is_user=is_user, is_fetch=is_fetch,
                        present=False,
                    ),
                    leaf_level=level,
                    pte_paddr=pte_paddr,
                    pid=pid,
                ))
            if bits.has_reserved_bits(entry):
                raise PageFaultException(PageFaultInfo(
                    vaddr=vaddr,
                    error_code=access_error_code(
                        is_write=is_write, is_user=is_user, is_fetch=is_fetch,
                        present=True, rsvd=True,
                    ),
                    leaf_level=level,
                    pte_paddr=pte_paddr,
                    pid=pid,
                ))
            eff_rw = eff_rw and bool(entry & bits.PTE_RW)
            eff_user = eff_user and bool(entry & bits.PTE_USER)
            nx = nx or bool(entry & bits.PTE_NX)
            if level == 1:
                base_ppn = bits.pte_ppn(entry)
                leaf_level = 1
                leaf_paddr = pte_paddr
                break
            if level == 2 and bits.is_huge(entry):
                base_ppn = bits.pte_ppn(entry)
                if base_ppn & 0x1FF:
                    raise MmuError(
                        f"2 MiB mapping at {vaddr:#x} has unaligned base "
                        f"ppn {base_ppn:#x}"
                    )
                leaf_level = 2
                leaf_paddr = pte_paddr
                break
            if level == 3 and bits.is_huge(entry):
                raise MmuError("1 GiB pages are not modelled")
            table_ppn = bits.pte_ppn(entry)
        else:  # pragma: no cover - loop always breaks or raises
            raise MmuError("walk fell through")

        flags = 0
        if eff_rw:
            flags |= bits.PTE_RW
        if eff_user:
            flags |= bits.PTE_USER
        if nx:
            flags |= bits.PTE_NX
        self._check_permissions(
            vaddr, flags,
            is_write=is_write, is_user=is_user, is_fetch=is_fetch,
            leaf_level=leaf_level, pte_paddr=leaf_paddr, pid=pid,
        )
        if leaf_level == 2:
            ppn = base_ppn + bits.level_index(vaddr, 1)
        else:
            ppn = base_ppn
        return Translation(
            ppn=ppn, base_ppn=base_ppn, flags=flags,
            leaf_level=leaf_level, pte_paddr=leaf_paddr,
        )

    @staticmethod
    def _check_permissions(
        vaddr: int, flags: int, *, is_write: bool, is_user: bool,
        is_fetch: bool, leaf_level: int, pte_paddr: int, pid=None,
    ) -> None:
        """Raise a protection fault if the effective flags forbid access."""
        violation = (
            (is_user and not flags & bits.PTE_USER)
            or (is_write and is_user and not flags & bits.PTE_RW)
            or (is_fetch and flags & bits.PTE_NX)
        )
        if violation:
            raise PageFaultException(PageFaultInfo(
                vaddr=vaddr,
                error_code=access_error_code(
                    is_write=is_write, is_user=is_user, is_fetch=is_fetch,
                    present=True,
                ),
                leaf_level=leaf_level,
                pte_paddr=pte_paddr,
                pid=pid,
            ))
