"""Page-fault error codes, per Figure 2 of the paper.

The hardware pushes an error code with every #PF.  The bits the
reproduction models are the ones SoftTRR and the kernel's demand-paging
path dispatch on:

====  =====  =========================================================
bit   name   meaning when set
====  =====  =========================================================
0     P      fault caused by a protection/reserved violation on a
             *present* translation (clear => non-present page)
1     W/R    faulting access was a write
2     U/S    faulting access came from user mode
3     RSVD   a reserved bit was set in a paging structure — the error
             code SoftTRR's tracer listens for
4     I/D    faulting access was an instruction fetch
====  =====  =========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ErrorCode(enum.IntFlag):
    """x86 #PF error-code bits (Figure 2)."""

    PRESENT = 1 << 0
    WRITE = 1 << 1
    USER = 1 << 2
    RSVD = 1 << 3
    INSTR = 1 << 4
    PROT_KEY = 1 << 5
    SGX = 1 << 15


@dataclass(frozen=True)
class PageFaultInfo:
    """Everything the fault handler learns about a page fault.

    ``leaf_level`` is the paging level of the entry that caused the
    fault (1 = L1PT entry for a 4 KiB page, 2 = L2/PD entry for a 2 MiB
    huge page), and ``pte_paddr`` is the physical address of that entry —
    the tracer uses both to clear the rsvd bit and record the PTE in its
    ring buffer.
    """

    vaddr: int
    error_code: ErrorCode
    leaf_level: int = 1
    pte_paddr: Optional[int] = None
    pid: Optional[int] = None

    @property
    def is_non_present(self) -> bool:
        """Demand-paging case: the translation was not present."""
        return not (self.error_code & ErrorCode.PRESENT)

    @property
    def is_reserved_bit(self) -> bool:
        """The tracer's case: a reserved PTE bit was set."""
        return bool(self.error_code & ErrorCode.RSVD)

    @property
    def is_write(self) -> bool:
        """Whether the faulting access was a write."""
        return bool(self.error_code & ErrorCode.WRITE)

    @property
    def is_user(self) -> bool:
        """Whether the faulting access came from user mode."""
        return bool(self.error_code & ErrorCode.USER)

    @property
    def is_instruction_fetch(self) -> bool:
        """Whether the faulting access was an instruction fetch."""
        return bool(self.error_code & ErrorCode.INSTR)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"vaddr={self.vaddr:#x} ec={self.error_code!r} "
            f"level={self.leaf_level} pte@{self.pte_paddr if self.pte_paddr is None else hex(self.pte_paddr)}"
        )


def access_error_code(
    *, is_write: bool, is_user: bool, is_fetch: bool, present: bool, rsvd: bool = False
) -> ErrorCode:
    """Build the error code the hardware would push for an access."""
    code = ErrorCode(0)
    if present:
        code |= ErrorCode.PRESENT
    if rsvd:
        code |= ErrorCode.RSVD | ErrorCode.PRESENT
    if is_write:
        code |= ErrorCode.WRITE
    if is_user:
        code |= ErrorCode.USER
    if is_fetch:
        code |= ErrorCode.INSTR
    return code
