"""The MMU facade: TLB + walker + cache in front of DRAM.

:class:`Mmu` is the CPU-side memory interface the kernel and user
processes use.  Responsibilities:

* :meth:`translate` — TLB-first translation; misses run the hardware
  walk (whose PTE loads are real DRAM traffic) and fill the TLB.
* :meth:`load` / :meth:`store` — user-mode data accesses, split per
  page, permission-checked, raising :class:`PageFaultException` for the
  kernel to repair.
* :meth:`phys_load` / :meth:`phys_store` — kernel-mode accesses through
  the direct-physical map (no user page tables involved, but still
  through the cache, so they cost time and can activate rows — the Row
  Refresher depends on exactly that).
* :meth:`clflush` / :meth:`invlpg` — the instructions SoftTRR and the
  attacks lean on.

The MMU is context-free: CR3 is a parameter, and the kernel flushes the
TLB on context switch (:meth:`on_context_switch`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..clock import SimClock
from ..dram.geometry import LINE_BYTES
from ..dram.module import DramModule
from ..errors import PageFaultException
from . import bits
from .cache import CpuCache
from .faults import PageFaultInfo, access_error_code
from .page_table import PageTableOps
from .tlb import Tlb, TlbEntry
from .walker import Translation, Walker


class Mmu:
    """CPU memory-management unit over a DRAM module."""

    def __init__(
        self,
        clock: SimClock,
        dram: DramModule,
        *,
        cache_lines: int = 8192,
        cache_hit_ns: int = 1,
        clflush_ns: int = 12,
        tlb_hit_ns: int = 1,
        invlpg_ns: int = 150,
    ) -> None:
        self.clock = clock
        self.dram = dram
        self.cache = CpuCache(
            clock, capacity_lines=cache_lines,
            hit_ns=cache_hit_ns, clflush_ns=clflush_ns,
        )
        self.tlb = Tlb(clock, hit_ns=tlb_hit_ns)
        self.pt_ops = PageTableOps(dram, self.cache)
        self.walker = Walker(self.pt_ops)
        self.invlpg_ns = invlpg_ns
        # Trace hub, or None when tracing is off (repro.trace attaches).
        # Point events for invlpg live in the Tlb (past the fault
        # injector's wrap, so suppressed invalidations never emit).
        self.trace = None

    # -------------------------------------------------------- translation
    def translate(
        self,
        cr3_ppn: int,
        vaddr: int,
        *,
        is_write: bool = False,
        is_user: bool = True,
        is_fetch: bool = False,
        pid: Optional[int] = None,
    ) -> Translation:
        """Translate one virtual address, using the TLB when possible."""
        cached = self.tlb.lookup(vaddr)
        if cached is not None:
            self._check_cached_permissions(
                vaddr, cached, is_write=is_write, is_user=is_user,
                is_fetch=is_fetch, pid=pid,
            )
            if cached.leaf_level == 2:
                ppn = cached.ppn + bits.level_index(vaddr, 1)
            else:
                ppn = cached.ppn
            return Translation(
                ppn=ppn, base_ppn=cached.ppn, flags=cached.flags,
                leaf_level=cached.leaf_level, pte_paddr=cached.pte_paddr,
            )
        translation = self.walker.walk(
            cr3_ppn, vaddr,
            is_write=is_write, is_user=is_user, is_fetch=is_fetch, pid=pid,
        )
        self.tlb.fill(vaddr, TlbEntry(
            ppn=translation.base_ppn,
            flags=translation.flags,
            leaf_level=translation.leaf_level,
            pte_paddr=translation.pte_paddr,
        ))
        return translation

    def _check_cached_permissions(
        self, vaddr: int, entry: TlbEntry, *, is_write: bool,
        is_user: bool, is_fetch: bool, pid: Optional[int],
    ) -> None:
        violation = (
            (is_user and not entry.flags & bits.PTE_USER)
            or (is_write and is_user and not entry.flags & bits.PTE_RW)
            or (is_fetch and entry.flags & bits.PTE_NX)
        )
        if violation:
            raise PageFaultException(PageFaultInfo(
                vaddr=vaddr,
                error_code=access_error_code(
                    is_write=is_write, is_user=is_user, is_fetch=is_fetch,
                    present=True,
                ),
                leaf_level=entry.leaf_level,
                pte_paddr=entry.pte_paddr,
                pid=pid,
            ))

    # ------------------------------------------------------- user access
    def load(
        self, cr3_ppn: int, vaddr: int, size: int, *,
        is_user: bool = True, is_fetch: bool = False,
        pid: Optional[int] = None,
    ) -> bytes:
        """User-mode load, split per page; faults propagate."""
        out = bytearray()
        cursor = vaddr
        end = vaddr + size
        while cursor < end:
            page_end = bits.page_base(cursor) + 4096
            chunk = min(page_end - cursor, end - cursor)
            translation = self.translate(
                cr3_ppn, cursor, is_write=False, is_user=is_user,
                is_fetch=is_fetch, pid=pid,
            )
            paddr = (translation.ppn << 12) | (cursor & 0xFFF)
            out.extend(self.cache.load(self.dram, paddr, chunk))
            cursor += chunk
        return bytes(out)

    def store(
        self, cr3_ppn: int, vaddr: int, data: bytes, *,
        is_user: bool = True, pid: Optional[int] = None,
    ) -> None:
        """User-mode store, split per page; faults propagate."""
        cursor = vaddr
        pos = 0
        end = vaddr + len(data)
        while cursor < end:
            page_end = bits.page_base(cursor) + 4096
            chunk = min(page_end - cursor, end - cursor)
            translation = self.translate(
                cr3_ppn, cursor, is_write=True, is_user=is_user, pid=pid,
            )
            paddr = (translation.ppn << 12) | (cursor & 0xFFF)
            self.cache.store(self.dram, paddr, data[pos:pos + chunk])
            cursor += chunk
            pos += chunk

    def access_run(
        self, cr3_ppn: int, vaddr: int, size: int, count: int, *,
        data: Optional[bytes] = None, is_user: bool = True,
        is_fetch: bool = False, pid: Optional[int] = None,
    ) -> Tuple[int, Optional[bytes]]:
        """Replay ``count`` repetitions of one user access, translating
        once per page instead of once per touch.

        Semantically identical to ``count`` :meth:`load` calls (or
        :meth:`store` calls when ``data`` is given): TLB hit counters,
        LRU order, permission semantics, cache stats and DRAM traffic
        all match the scalar loop.  The replay only engages while it is
        provably equivalent — every page chunk has a TLB entry whose
        permissions pass, every line is already cached, and (stores) the
        span is a guaranteed row-buffer hit.  Returns ``(completed,
        last_bytes)``; ``completed == 0`` with no side effects when the
        preconditions fail, so the caller finishes scalar-ly (taking any
        fault — e.g. one trace-bit fault per touch of an armed page —
        on the scalar path; this method never raises one).  The caller
        must ensure no kernel timer falls due during the run, since the
        scalar loop would dispatch between touches.
        """
        is_write = data is not None
        if is_write:
            size = len(data)
        if count <= 0 or size <= 0:
            return 0, None
        # Validation pass: entirely side-effect-free (peek/contains).
        chunks = []
        cursor = vaddr
        end = vaddr + size
        while cursor < end:
            page_end = bits.page_base(cursor) + 4096
            chunk = min(page_end - cursor, end - cursor)
            entry = self.tlb.peek(cursor)
            if entry is None:
                return 0, None
            if (
                (is_user and not entry.flags & bits.PTE_USER)
                or (is_write and is_user and not entry.flags & bits.PTE_RW)
                or (is_fetch and entry.flags & bits.PTE_NX)
            ):
                return 0, None
            if entry.leaf_level == 2:
                ppn = entry.ppn + bits.level_index(cursor, 1)
            else:
                ppn = entry.ppn
            paddr = (ppn << 12) | (cursor & 0xFFF)
            line = self.cache.line_of(paddr)
            while line < paddr + chunk:
                if not self.cache.contains(line):
                    return 0, None
                line += LINE_BYTES
            chunks.append((cursor, chunk, paddr))
            cursor += chunk
        if is_write:
            if len(chunks) != 1:
                return 0, None
            _va, _chunk, paddr = chunks[0]
            # write_run validates the row-buffer preconditions itself
            # and applies nothing when they fail.
            if not self.dram.write_run(paddr, data, count):
                return 0, None
            self.tlb.hit_run(vaddr, count)
            self.cache.touch_span(paddr, len(data))
            return count, None
        out = bytearray()
        for va, chunk, paddr in chunks:
            self.tlb.hit_run(va, count)
            self.cache.hit_run(paddr, chunk, count)
            out.extend(self.dram.raw_read(paddr, chunk))
        return count, bytes(out)

    # ------------------------------------------------------ kernel access
    def phys_load(self, paddr: int, size: int) -> bytes:
        """Kernel read through the direct-physical map."""
        return self.cache.load(self.dram, paddr, size)

    def phys_store(self, paddr: int, data: bytes) -> None:
        """Kernel write through the direct-physical map."""
        self.cache.store(self.dram, paddr, data)

    # ------------------------------------------------------ page tables
    def write_pte(self, table_ppn: int, index: int, value: int) -> None:
        """Architectural page-table store — the kernel's sanctioned path.

        Kernel mapping code (and anything outside ``mmu/``) must come
        through here rather than calling ``pt_ops.write_entry`` directly
        (lint rule RPR004): keeping a single entry point is what lets
        the runtime sanitizers observe every PTE store.
        """
        self.pt_ops.write_entry(table_ppn, index, value)

    # -------------------------------------------------------- maintenance
    def clflush(self, paddr: int) -> None:
        """Flush one cache line by physical address."""
        self.cache.clflush(paddr)

    def invlpg(self, vaddr: int) -> None:
        """Invalidate the TLB entry covering ``vaddr``."""
        self.tlb.invlpg(vaddr)
        self.clock.advance(self.invlpg_ns)

    def on_context_switch(self) -> None:
        """CR3 reload semantics: drop all (non-global) TLB entries."""
        self.tlb.flush_all()
