"""x86-64 page-table entry bit layout.

The layout follows the Intel SDM [22] for 4-level paging.  The bit
SoftTRR repurposes is **bit 51**: with MAXPHYADDR = 46 on the paper's
CPUs, bits 46..51 of a PTE are reserved-must-be-zero, and setting any of
them makes the next hardware walk fault with the RSVD error-code bit —
without the kernel ever checking or caring about the bit itself
(Section IV-C: "the tracer chooses a rsrv bit, i.e., bit 51 in the PTE").

Entries are plain 64-bit integers; this module is pure bit arithmetic so
every other layer (walker, kernel, SoftTRR, attacks) shares one source
of truth for the encoding.
"""

from __future__ import annotations

from typing import List, Tuple

# ----------------------------------------------------------------- flags
PTE_PRESENT = 1 << 0
PTE_RW = 1 << 1
PTE_USER = 1 << 2
PTE_PWT = 1 << 3
PTE_PCD = 1 << 4
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
#: Page-size bit: set in an L2 (PD) entry for a 2 MiB page or an L3
#: (PDPT) entry for a 1 GiB page.
PTE_PSE = 1 << 7
PTE_GLOBAL = 1 << 8
#: The reserved bit SoftTRR's tracer sets (bit 51).
PTE_RSVD_TRACE = 1 << 51
PTE_NX = 1 << 63

#: Physical-address field of an entry: bits 12..45 (MAXPHYADDR = 46).
#: Bits 46..51 are reserved; any of them set => RSVD page fault.
MAXPHYADDR = 46
PTE_ADDR_MASK = ((1 << MAXPHYADDR) - 1) & ~0xFFF
#: All reserved-must-be-zero bits of a leaf entry.
PTE_RESERVED_MASK = (((1 << 52) - 1) ^ ((1 << MAXPHYADDR) - 1)) & ~0xFFF | PTE_RSVD_TRACE

# -------------------------------------------------------- address split
#: Paging levels, leaf-first naming used throughout the stack:
#: level 1 = PT (4 KiB leaves), 2 = PD, 3 = PDPT, 4 = PML4.
LEVELS = (4, 3, 2, 1)
ENTRIES_PER_TABLE = 512
PAGE_SHIFT = 12
HUGE_2M_SHIFT = 21
VADDR_BITS = 48


def make_pte(ppn: int, flags: int) -> int:
    """Encode an entry pointing at physical page ``ppn`` with ``flags``."""
    return ((ppn << PAGE_SHIFT) & PTE_ADDR_MASK) | flags


def pte_ppn(entry: int) -> int:
    """Physical page number an entry points at."""
    return (entry & PTE_ADDR_MASK) >> PAGE_SHIFT


def pte_flags(entry: int) -> int:
    """The non-address bits of an entry."""
    return entry & ~PTE_ADDR_MASK


def is_present(entry: int) -> bool:
    """Whether the entry's present bit is set."""
    return bool(entry & PTE_PRESENT)


def has_reserved_bits(entry: int) -> bool:
    """Whether any reserved-must-be-zero bit is set (=> RSVD fault)."""
    return bool(entry & PTE_RESERVED_MASK)


def is_huge(entry: int) -> bool:
    """Whether a PD/PDPT entry maps a huge page (PS bit)."""
    return bool(entry & PTE_PSE)


def level_index(vaddr: int, level: int) -> int:
    """The 9-bit table index for ``vaddr`` at paging ``level`` (1..4)."""
    shift = PAGE_SHIFT + 9 * (level - 1)
    return (vaddr >> shift) & (ENTRIES_PER_TABLE - 1)


def split_vaddr(vaddr: int) -> Tuple[int, int, int, int, int]:
    """(pml4, pdpt, pd, pt, page-offset) of a canonical virtual address."""
    return (
        level_index(vaddr, 4),
        level_index(vaddr, 3),
        level_index(vaddr, 2),
        level_index(vaddr, 1),
        vaddr & 0xFFF,
    )


def vpn_of(vaddr: int) -> int:
    """Virtual page number (4 KiB granularity)."""
    return vaddr >> PAGE_SHIFT


def page_base(vaddr: int) -> int:
    """4 KiB-aligned base of the page containing ``vaddr``."""
    return vaddr & ~0xFFF


def huge_base(vaddr: int) -> int:
    """2 MiB-aligned base of the huge page containing ``vaddr``."""
    return vaddr & ~((1 << HUGE_2M_SHIFT) - 1)


def is_canonical(vaddr: int) -> bool:
    """Whether ``vaddr`` is canonical for 48-bit virtual addressing."""
    top = vaddr >> (VADDR_BITS - 1)
    return top == 0 or top == (1 << (64 - VADDR_BITS + 1)) - 1


def describe(entry: int) -> str:
    """Human-readable rendering of an entry, for diagnostics."""
    if entry == 0:
        return "<empty>"
    names: List[str] = []
    for bit, name in (
        (PTE_PRESENT, "P"),
        (PTE_RW, "RW"),
        (PTE_USER, "US"),
        (PTE_ACCESSED, "A"),
        (PTE_DIRTY, "D"),
        (PTE_PSE, "PS"),
        (PTE_GLOBAL, "G"),
        (PTE_RSVD_TRACE, "RSVD51"),
        (PTE_NX, "NX"),
    ):
        if entry & bit:
            names.append(name)
    return f"ppn={pte_ppn(entry):#x} [{' '.join(names)}]"
