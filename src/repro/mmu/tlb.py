"""TLB model with ``invlpg`` and 2 MiB entries.

The TLB matters to the reproduction for two reasons:

* SoftTRR's tracer must flush the traced page's TLB entry after setting
  the rsvd bit, or the CPU would keep using the cached translation and
  never fault (Section IV-C: the tracer "combines vaddr and mm to flush
  the TLB entry").
* PThammer needs its hammering loads to *miss* the TLB so each load
  performs a page walk that re-fetches the L1PTE from DRAM; its
  kernel-assisted variant uses ``invlpg`` every iteration (Section V-C).

Entries for 4 KiB and 2 MiB pages are kept in separate LRU maps, as on
real cores; ``invlpg`` takes a virtual address and drops whichever entry
covers it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from ..clock import SimClock
from ..errors import ConfigError
from .bits import HUGE_2M_SHIFT, PAGE_SHIFT


@dataclass(frozen=True)
class TlbEntry:
    """A cached translation."""

    ppn: int
    #: Effective flag bits (PTE_RW / PTE_USER / PTE_NX semantics).
    flags: int
    #: 1 for 4 KiB leaves, 2 for 2 MiB huge pages.
    leaf_level: int
    #: Physical address of the leaf PTE (kept so a hit still knows where
    #: its translation lives — used only for diagnostics).
    pte_paddr: int


class Tlb:
    """Split 4K/2M fully-associative LRU TLB."""

    def __init__(self, clock: SimClock, capacity_4k: int = 1536,
                 capacity_2m: int = 32, hit_ns: int = 1) -> None:
        if capacity_4k < 1 or capacity_2m < 1:
            raise ConfigError("TLB capacities must be positive")
        self.clock = clock
        self.capacity_4k = capacity_4k
        self.capacity_2m = capacity_2m
        self.hit_ns = hit_ns
        self._small: OrderedDict = OrderedDict()
        self._huge: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Trace hub, or None when tracing is off (repro.trace attaches).
        # Emission lives here (not in Mmu.invlpg) so an invalidation the
        # fault injector suppressed never shows up in the trace.
        self.trace = None

    # ------------------------------------------------------------- lookup
    def lookup(self, vaddr: int) -> Optional[TlbEntry]:
        """Translation covering ``vaddr``, or None.  A hit costs time."""
        vpn = vaddr >> PAGE_SHIFT
        entry = self._small.get(vpn)
        if entry is not None:
            self._small.move_to_end(vpn)
            self.hits += 1
            self.clock.advance(self.hit_ns)
            return entry
        hvpn = vaddr >> HUGE_2M_SHIFT
        entry = self._huge.get(hvpn)
        if entry is not None:
            self._huge.move_to_end(hvpn)
            self.hits += 1
            self.clock.advance(self.hit_ns)
            return entry
        self.misses += 1
        return None

    def hit_run(self, vaddr: int, count: int) -> bool:
        """Replay ``count`` hitting lookups of ``vaddr`` in one step.

        Equivalent to ``count`` :meth:`lookup` calls that all hit: the
        hit counter and clock advance by ``count`` times their unit and
        the entry moves to MRU (idempotent under repetition).  Returns
        False — with no side effects — if no entry covers ``vaddr``,
        in which case the caller must take the scalar path.
        """
        if count <= 0:
            return True
        vpn = vaddr >> PAGE_SHIFT
        if vpn in self._small:
            self._small.move_to_end(vpn)
        else:
            hvpn = vaddr >> HUGE_2M_SHIFT
            if hvpn not in self._huge:
                return False
            self._huge.move_to_end(hvpn)
        self.hits += count
        self.clock.advance(count * self.hit_ns)
        return True

    def peek(self, vaddr: int) -> Optional[TlbEntry]:
        """Side-effect-free lookup: no time, no LRU movement, no stats.

        Instrumentation for the TLB sanitizer and tests — the equivalent
        of probing the structure with a debugger rather than the CPU.
        """
        entry = self._small.get(vaddr >> PAGE_SHIFT)
        if entry is not None:
            return entry
        return self._huge.get(vaddr >> HUGE_2M_SHIFT)

    def entries(self) -> Iterator[TlbEntry]:
        """Every cached translation, 4 KiB then 2 MiB (instrumentation)."""
        yield from self._small.values()
        yield from self._huge.values()

    # --------------------------------------------------------------- fill
    def fill(self, vaddr: int, entry: TlbEntry) -> None:
        """Insert a translation after a successful walk."""
        if entry.leaf_level == 2:
            key = vaddr >> HUGE_2M_SHIFT
            self._huge[key] = entry
            if len(self._huge) > self.capacity_2m:
                self._huge.popitem(last=False)
        else:
            key = vaddr >> PAGE_SHIFT
            self._small[key] = entry
            if len(self._small) > self.capacity_4k:
                self._small.popitem(last=False)

    # -------------------------------------------------------- invalidation
    def invlpg(self, vaddr: int) -> None:
        """Drop whichever entry covers ``vaddr`` (both granularities)."""
        self.invalidations += 1
        if self.trace is not None:
            self.trace.emit("tlb.invlpg", vaddr=vaddr)
        self._small.pop(vaddr >> PAGE_SHIFT, None)
        self._huge.pop(vaddr >> HUGE_2M_SHIFT, None)

    def flush_all(self) -> None:
        """Full flush (CR3 reload on context switch)."""
        self.invalidations += len(self._small) + len(self._huge)
        if self.trace is not None:
            self.trace.emit("tlb.flush",
                            entries=len(self._small) + len(self._huge))
        self._small.clear()
        self._huge.clear()

    def __len__(self) -> int:
        return len(self._small) + len(self._huge)
