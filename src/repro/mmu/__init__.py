"""x86-64 MMU substrate: PTEs, page walks, TLB, cache, page faults.

SoftTRR's Adjacent Page Tracer works entirely through MMU mechanisms:
it sets an unused *reserved* bit (bit 51) in leaf PTEs so the next access
to the traced page takes a page fault whose error code has the RSVD bit
set (Figure 2 of the paper), and it flushes the stale TLB entry so the
hardware actually re-walks the tables.  PThammer, conversely, abuses the
page walk itself: a TLB- and cache-missing load forces the CPU to fetch
the L1PTE from DRAM, activating the page-table row.  Both behaviours
need a bit-accurate 4-level MMU, which this package provides:

* :mod:`repro.mmu.bits` — PTE flag layout, including rsvd bit 51.
* :mod:`repro.mmu.faults` — page-fault error codes per Figure 2.
* :mod:`repro.mmu.cache` — CPU cache with ``clflush``.
* :mod:`repro.mmu.tlb` — TLB with ``invlpg`` and 2 MiB entries.
* :mod:`repro.mmu.page_table` — page-table entry load/store over DRAM.
* :mod:`repro.mmu.walker` — the 4-level translation walk.
* :mod:`repro.mmu.mmu` — the :class:`~repro.mmu.mmu.Mmu` facade.
"""

from . import bits
from .faults import ErrorCode, PageFaultInfo
from .cache import CpuCache
from .tlb import Tlb, TlbEntry
from .page_table import PageTableOps
from .walker import Translation, Walker
from .mmu import Mmu

__all__ = [
    "bits",
    "ErrorCode",
    "PageFaultInfo",
    "CpuCache",
    "Tlb",
    "TlbEntry",
    "PageTableOps",
    "Translation",
    "Walker",
    "Mmu",
]
