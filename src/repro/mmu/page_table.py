"""Page-table entry load/store over simulated physical memory.

Two access planes again:

* **architectural** (:meth:`PageTableOps.read_entry` /
  :meth:`PageTableOps.write_entry`) — what the hardware walker and the
  kernel's mapping code do.  These go through the CPU cache, so a walk
  whose PTE line was clflushed reaches DRAM and *activates the
  page-table row*.  That activation is the entire physical basis of
  PThammer (implicitly hammering L1PTEs via page walks), so it must not
  be shortcut.
* **raw** (:meth:`PageTableOps.raw_read_entry` / ``raw_write_entry``) —
  instrumentation for tests and integrity checks; free of time and
  side effects.
"""

from __future__ import annotations

import struct

from ..dram.module import DramModule
from ..errors import MmuError
from .bits import ENTRIES_PER_TABLE, PAGE_SHIFT
from .cache import CpuCache

_ENTRY = struct.Struct("<Q")


class PageTableOps:
    """Entry-granular access to page tables stored in DRAM."""

    def __init__(self, dram: DramModule, cache: CpuCache) -> None:
        self.dram = dram
        self.cache = cache

    @staticmethod
    def entry_paddr(table_ppn: int, index: int) -> int:
        """Physical address of entry ``index`` of the table page."""
        if not 0 <= index < ENTRIES_PER_TABLE:
            raise MmuError(f"PTE index {index} out of range")
        return (table_ppn << PAGE_SHIFT) + index * 8

    # ------------------------------------------------------ architectural
    def read_entry(self, table_ppn: int, index: int) -> int:
        """Load an entry through the cache (a walk step).

        The DRAM activation (if the line misses) is tagged as
        walker-originated: load-address PMU sampling cannot see it,
        which is why ANVIL-style detectors miss PThammer.
        """
        paddr = self.entry_paddr(table_ppn, index)
        self.dram.walk_origin = True
        try:
            return _ENTRY.unpack(self.cache.load(self.dram, paddr, 8))[0]
        finally:
            self.dram.walk_origin = False

    def write_entry(self, table_ppn: int, index: int, value: int) -> None:
        """Store an entry through the cache (kernel mapping code)."""
        paddr = self.entry_paddr(table_ppn, index)
        self.cache.store(self.dram, paddr, _ENTRY.pack(value))

    # ------------------------------------------------------------- raw
    def raw_read_entry(self, table_ppn: int, index: int) -> int:
        """Instrumentation read: no time, no activation."""
        paddr = self.entry_paddr(table_ppn, index)
        return _ENTRY.unpack(self.dram.raw_read(paddr, 8))[0]

    def raw_write_entry(self, table_ppn: int, index: int, value: int) -> None:
        """Instrumentation write: no time, no activation."""
        paddr = self.entry_paddr(table_ppn, index)
        self.dram.raw_write(paddr, _ENTRY.pack(value))

    def flush_entry(self, table_ppn: int, index: int) -> None:
        """clflush the cache line holding an entry (PThammer, refresher)."""
        self.cache.clflush(self.entry_paddr(table_ppn, index))
