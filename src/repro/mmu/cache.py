"""CPU cache model with ``clflush``.

A deliberately small model: a fully-associative LRU set of 64-byte line
addresses.  What matters for the reproduction is *which accesses reach
DRAM*, because only DRAM accesses activate rows:

* hammer loops must ``clflush`` (or evict) their aggressors each
  iteration or they would spin in the cache and never hammer;
* PThammer must flush the victim L1PTE's cache line so the page walk
  re-fetches it from DRAM (Section V-C: "kernel-assisted flush through
  explicit instructions, i.e. invlpg for TLB flush and clflush for
  L1PTEs flush");
* SoftTRR's Row Refresher flushes the row's lines before reading them so
  the read actually recharges the DRAM row (Section IV-D).

Writes are modelled write-through (they always reach DRAM), which keeps
the stored bytes single-sourced in the DRAM module.  Cached *data* is
not duplicated here — a hit simply skips the DRAM access; the tiny
realism loss (a flip would be invisible until eviction on real hardware)
does not affect any modelled experiment, since every attack and the
refresher explicitly flush the lines they care about.
"""

from __future__ import annotations

from collections import OrderedDict

from ..clock import SimClock
from ..dram.geometry import LINE_BYTES
from ..dram.module import DramModule
from ..errors import ConfigError


class CpuCache:
    """Fully-associative LRU cache of line presence."""

    def __init__(
        self,
        clock: SimClock,
        capacity_lines: int = 8192,
        hit_ns: int = 1,
        clflush_ns: int = 12,
    ) -> None:
        if capacity_lines < 1:
            raise ConfigError("cache needs at least one line")
        self.clock = clock
        self.capacity_lines = capacity_lines
        self.hit_ns = hit_ns
        self.clflush_ns = clflush_ns
        self._lines: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.evictions = 0

    @staticmethod
    def line_of(paddr: int) -> int:
        """The 64-byte line address containing ``paddr``."""
        return paddr & ~(LINE_BYTES - 1)

    def _touch(self, line: int) -> None:
        self._lines.move_to_end(line)

    def _insert(self, line: int) -> None:
        self._lines[line] = True
        if len(self._lines) > self.capacity_lines:
            self._lines.popitem(last=False)
            self.evictions += 1

    def contains(self, paddr: int) -> bool:
        """Whether the line holding ``paddr`` is cached (no side effects)."""
        return self.line_of(paddr) in self._lines

    # ------------------------------------------------------------- access
    def load(self, dram: DramModule, paddr: int, size: int) -> bytes:
        """Architectural load through the cache.

        Cached lines cost ``hit_ns`` each; missing lines go to DRAM
        (activating rows) and are filled.
        """
        out = bytearray()
        cursor = paddr
        end = paddr + size
        while cursor < end:
            line = self.line_of(cursor)
            chunk = min(line + LINE_BYTES - cursor, end - cursor)
            if line in self._lines:
                self.hits += 1
                self._touch(line)
                self.clock.advance(self.hit_ns)
                out.extend(dram.raw_read(cursor, chunk))
            else:
                self.misses += 1
                dram.read(cursor, chunk)
                out.extend(dram.raw_read(cursor, chunk))
                self._insert(line)
            cursor += chunk
        return bytes(out)

    def hit_run(self, paddr: int, size: int, count: int) -> bool:
        """Replay ``count`` all-hit loads of ``[paddr, paddr+size)``.

        Equivalent to ``count`` :meth:`load` calls whose every line is
        cached (the caller reads the bytes itself via ``dram.raw_read``,
        exactly as the hit path of :meth:`load` does).  Returns False —
        with no side effects — if any line of the span is missing.
        """
        if count <= 0:
            return True
        lines = []
        cursor = self.line_of(paddr)
        end = paddr + size
        while cursor < end:
            if cursor not in self._lines:
                return False
            lines.append(cursor)
            cursor += LINE_BYTES
        for line in lines:
            self._touch(line)
        self.hits += len(lines) * count
        self.clock.advance(len(lines) * count * self.hit_ns)
        return True

    def touch_span(self, paddr: int, size: int) -> None:
        """Move every present line of the span to MRU (no stats, no time).

        Replay helper for repeated write-through stores: :meth:`store`
        only touches lines, so N identical stores leave the same LRU
        order as one touch pass.
        """
        cursor = self.line_of(paddr)
        end = paddr + size
        while cursor < end:
            if cursor in self._lines:
                self._touch(cursor)
            cursor += LINE_BYTES

    def store(self, dram: DramModule, paddr: int, data: bytes) -> None:
        """Architectural write-through store."""
        dram.write(paddr, data)
        cursor = paddr
        end = paddr + len(data)
        while cursor < end:
            line = self.line_of(cursor)
            if line in self._lines:
                self._touch(line)
            else:
                self._insert(line)
            cursor = line + LINE_BYTES

    def clflush(self, paddr: int) -> None:
        """Flush one line (the hammering primitive's best friend)."""
        self.flushes += 1
        self._lines.pop(self.line_of(paddr), None)
        self.clock.advance(self.clflush_ns)

    def flush_range(self, paddr: int, size: int) -> None:
        """clflush every line of a range (refresher / attack setup)."""
        cursor = self.line_of(paddr)
        end = paddr + size
        while cursor < end:
            self.clflush(cursor)
            cursor += LINE_BYTES

    def flush_all(self) -> None:
        """Drop the entire cache (wbinvd-style; used in tests)."""
        self.flushes += len(self._lines)
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)
