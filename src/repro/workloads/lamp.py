"""The LAMP server + Nikto scanner of Section VI-B (Figures 4 and 5).

"We use a real-world use case to measure runtime memory consumption of
SoftTRR, that is, a LAMP server ... We run a common tool (i.e., Nikto)
in another machine for 60 minutes to stress test the LAMP server."

The simulation boots the LAMP process zoo (an Apache master with worker
pool, MySQL, PHP-FPM) and drives it with a Nikto-like scanner: every
simulated minute a burst of scan requests hits the workers, which touch
their working sets, grow their heaps asymptotically toward a steady
state, occasionally get recycled (fork-and-reap), and make MySQL run
queries.  Heap regions are placed at spread-out 2 MiB-aligned addresses
so each region owns its L1PT pages, reproducing the page-table
population dynamics behind Fig. 5.

Per minute the simulation samples the loaded SoftTRR module: total
memory (trees + pre-allocated ring buffer) for Fig. 4, and the
protected/traced page counts for Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..clock import NS_PER_MS
from ..kernel.process import Process
from ..kernel.vma import PAGE
from ..rng import derive_rng

NS_PER_MINUTE = 60 * 1000 * NS_PER_MS

#: Spread heap regions at 4 MiB strides so each owns its L1PTs.
LAMP_REGION_BASE = 0x0000_7C00_0000_0000
LAMP_REGION_STRIDE = 4 * 1024 * 1024


@dataclass
class LampSample:
    """One per-minute measurement (a Fig. 4 / Fig. 5 data point)."""

    minute: int
    memory_bytes: int
    tree_bytes: int
    ringbuf_bytes: int
    protected_pages: int
    traced_pages: int


@dataclass
class _Service:
    """One LAMP process and its heap bookkeeping."""

    process: Process
    regions: List[int]
    target_regions: int
    pages_per_region: int


class LampSimulation:
    """The LAMP + Nikto run behind Figures 4 and 5."""

    def __init__(self, kernel, seed: int = 60, workers: int = 4,
                 requests_per_minute: int = 30) -> None:
        self.kernel = kernel
        self.rng = derive_rng("lamp", seed)
        self.workers = workers
        self.requests_per_minute = requests_per_minute
        self._region_counter = 0
        self._services: Dict[str, _Service] = {}
        self.requests_served = 0
        self.workers_recycled = 0

    # -------------------------------------------------------------- boot
    def _new_region(self, process: Process, pages: int) -> int:
        at = LAMP_REGION_BASE + self._region_counter * LAMP_REGION_STRIDE
        self._region_counter += 1
        base = self.kernel.mmap(process, pages * PAGE, at=at, name="lamp")
        # Touch the first pages so the region's L1PT exists.
        for i in range(min(pages, 4)):
            self.kernel.user_write(process, base + i * PAGE, b"l")
        return base

    def _boot_service(self, name: str, regions: int, target: int,
                      pages_per_region: int) -> _Service:
        process = self.kernel.create_process(name)
        service = _Service(process=process, regions=[],
                           target_regions=target,
                           pages_per_region=pages_per_region)
        for _ in range(regions):
            service.regions.append(
                self._new_region(process, pages_per_region))
        self._services[name] = service
        return service

    def boot(self) -> None:
        """Start the LAMP zoo."""
        self._boot_service("apache-master", regions=2, target=4,
                           pages_per_region=48)
        for i in range(self.workers):
            self._boot_service(f"apache-worker-{i}", regions=3, target=16,
                               pages_per_region=64)
        self._boot_service("mysqld", regions=4, target=24,
                           pages_per_region=96)
        self._boot_service("php-fpm", regions=3, target=16,
                           pages_per_region=64)

    # ----------------------------------------------------------- traffic
    def _handle_request(self) -> None:
        """One Nikto probe: worker + PHP + MySQL activity."""
        kernel = self.kernel
        rng = self.rng
        worker_name = f"apache-worker-{rng.randrange(self.workers)}"
        for name in (worker_name, "php-fpm", "mysqld"):
            service = self._services[name]
            region = rng.choice(service.regions)
            offset = rng.randrange(service.pages_per_region) * PAGE
            if rng.random() < 0.4:
                kernel.user_write(service.process, region + offset, b"r")
            else:
                kernel.user_read(service.process, region + offset, 8)
        self.requests_served += 1

    def _grow_heaps(self, minute: int) -> None:
        """Asymptotic heap growth: fast early, flat in the last quarter
        (the Fig. 4/5 'stable level in the last 15 minutes')."""
        for service in self._services.values():
            deficit = service.target_regions - len(service.regions)
            if deficit > 0 and self.rng.random() < 0.25 + 0.05 * deficit:
                service.regions.append(self._new_region(
                    service.process, service.pages_per_region))

    def _recycle_worker(self) -> None:
        """Apache worker lifecycle: reap one, fork a replacement."""
        kernel = self.kernel
        index = self.rng.randrange(self.workers)
        name = f"apache-worker-{index}"
        old = self._services.pop(name)
        kernel.exit_process(old.process)
        self._boot_service(name, regions=2, target=old.target_regions,
                           pages_per_region=old.pages_per_region)
        self.workers_recycled += 1

    # --------------------------------------------------------------- run
    def run(self, minutes: int = 60,
            on_sample: Optional[Callable[[LampSample], None]] = None
            ) -> List[LampSample]:
        """Run the scan for ``minutes`` simulated minutes; returns the
        per-minute samples (empty stats when SoftTRR is not loaded)."""
        kernel = self.kernel
        if not self._services:
            self.boot()
        samples: List[LampSample] = []
        for minute in range(1, minutes + 1):
            minute_start = kernel.clock.now_ns
            self._grow_heaps(minute)
            for _ in range(self.requests_per_minute):
                self._handle_request()
            if minute % 7 == 0:
                self._recycle_worker()
            # Idle until the minute boundary (the scanner paces itself).
            elapsed = kernel.clock.now_ns - minute_start
            if elapsed < NS_PER_MINUTE:
                kernel.clock.advance(NS_PER_MINUTE - elapsed)
            kernel.dispatch_timers()
            samples.append(self._sample(minute))
            if on_sample is not None:
                on_sample(samples[-1])
        return samples

    def _sample(self, minute: int) -> LampSample:
        module = self.kernel.module("softtrr")
        if module is None:
            return LampSample(minute, 0, 0, 0, 0, 0)
        stats = module.stats()
        return LampSample(
            minute=minute,
            memory_bytes=stats.memory_bytes,
            tree_bytes=stats.tree_bytes,
            ringbuf_bytes=stats.ringbuf_bytes,
            protected_pages=stats.protected_pages,
            traced_pages=stats.traced_pages_live,
        )
