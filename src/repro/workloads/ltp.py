"""LTP-style syscall stress tests (Table V).

Table V stress-tests 20 syscalls of five categories on the vanilla
system and under SoftTRR Δ±1 / Δ±6, expecting zero deviation.  Each
stress driver here loops its syscall with integrity checks (not just
"no crash": data written must read back, children must inherit parent
memory, remapped regions must keep their contents) and reports a
:class:`StressResult`.

The drivers are also what demonstrates the present-bit tracer's fatal
flaw: under ``SoftTrrParams(trace_bit="present")`` the ``clone`` stress
panics the kernel (Section IV-C), while the reserved-bit default sails
through all twenty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ReproError
from ..kernel.syscalls import SyscallTable
from ..kernel.vma import PAGE
from ..rng import derive_rng


@dataclass
class StressResult:
    """Outcome of one stress driver (a Table V cell)."""

    name: str
    category: str
    iterations: int
    passed: bool
    error: Optional[str] = None


def _stress_open(kernel, sys, proc, n, rng):
    for i in range(n):
        fd = sys.open(proc, f"file-{i % 7}")
        sys.close(proc, fd)


def _stress_close(kernel, sys, proc, n, rng):
    fds = [sys.open(proc, f"c-{i % 5}") for i in range(min(n, 64))]
    for fd in fds:
        sys.close(proc, fd)


def _stress_ftruncate(kernel, sys, proc, n, rng):
    fd = sys.open(proc, "trunc")
    for i in range(n):
        size = rng.randrange(0, 4096)
        sys.ftruncate(proc, fd, size)
        assert len(sys._files["trunc"]) == size
    sys.close(proc, fd)


def _stress_rename(kernel, sys, proc, n, rng):
    fd = sys.open(proc, "name-0")
    sys.write(proc, fd, b"payload")
    sys.close(proc, fd)
    for i in range(n):
        sys.rename(proc, f"name-{i}", f"name-{i + 1}")
    assert bytes(sys._files[f"name-{n}"]) == b"payload"


def _stress_listen(kernel, sys, proc, n, rng):
    fd = sys.socket(proc)
    for i in range(n):
        sys.listen(proc, fd, backlog=(i % 128) + 1)
    sys.close(proc, fd)


def _stress_socket(kernel, sys, proc, n, rng):
    for i in range(n):
        fd = sys.socket(proc)
        sys.close(proc, fd)


def _stress_send(kernel, sys, proc, n, rng):
    fd = sys.socket(proc)
    for i in range(n):
        assert sys.send(proc, fd, b"x" * (i % 100 + 1)) == i % 100 + 1
    sys.close(proc, fd)


def _stress_recv(kernel, sys, proc, n, rng):
    fd = sys.socket(proc)
    for i in range(n):
        payload = bytes([i & 0xFF]) * 8
        sys.send(proc, fd, payload)
        assert sys.recv(proc, fd, 8) == payload
    sys.close(proc, fd)


def _stress_mmap(kernel, sys, proc, n, rng):
    for i in range(n):
        base = sys.mmap(proc, 4 * PAGE)
        kernel.user_write(proc, base, bytes([i & 0xFF]))
        assert kernel.user_read(proc, base, 1) == bytes([i & 0xFF])
        sys.munmap(proc, base, 4 * PAGE)


def _stress_munmap(kernel, sys, proc, n, rng):
    bases = [sys.mmap(proc, 2 * PAGE) for _ in range(min(n, 48))]
    for base in bases:
        kernel.user_write(proc, base, b"m")
        sys.munmap(proc, base, 2 * PAGE)
    for base in bases:
        assert proc.mm.find_vma(base) is None


def _stress_brk(kernel, sys, proc, n, rng):
    start = proc.mm.brk
    for i in range(n):
        grown = sys.brk(proc, start + ((i % 8) + 1) * PAGE)
        kernel.user_write(proc, start, b"h")
        assert kernel.user_read(proc, start, 1) == b"h"
        sys.brk(proc, start + PAGE)
    sys.brk(proc, start)


def _stress_mlock(kernel, sys, proc, n, rng):
    base = sys.mmap(proc, 8 * PAGE)
    for i in range(n):
        sys.mlock(proc, base, 8 * PAGE)
    for i in range(8):
        assert kernel.mapped_ppn_of(proc, base + i * PAGE) is not None


def _stress_munlock(kernel, sys, proc, n, rng):
    base = sys.mmap(proc, 4 * PAGE)
    sys.mlock(proc, base, 4 * PAGE)
    for i in range(n):
        sys.munlock(proc, base, 4 * PAGE)


def _stress_mremap(kernel, sys, proc, n, rng):
    base = sys.mmap(proc, 2 * PAGE)
    kernel.user_write(proc, base, b"keep")
    for i in range(n):
        base = sys.mremap(proc, base, 2 * PAGE, 2 * PAGE)
        assert kernel.user_read(proc, base, 4) == b"keep"


def _stress_getpid(kernel, sys, proc, n, rng):
    for _ in range(n):
        assert sys.getpid(proc) == proc.pid


def _stress_exit(kernel, sys, proc, n, rng):
    for i in range(n):
        child = sys.clone(proc, name=f"exiter-{i}")
        sys.exit(child, code=i & 0x7F)
        assert child.exit_code == (i & 0x7F)
        assert not child.alive


def _stress_clone(kernel, sys, proc, n, rng):
    base = sys.mmap(proc, 2 * PAGE)
    kernel.user_write(proc, base, b"inherit")
    for i in range(n):
        child = sys.clone(proc)
        assert kernel.user_read(child, base, 7) == b"inherit"
        sys.exit(child)


def _stress_ioctl(kernel, sys, proc, n, rng):
    fd = sys.open(proc, "dev-node")
    for i in range(n):
        assert sys.ioctl(proc, fd, 0x5401 + i) == 0
    sys.close(proc, fd)


def _stress_prctl(kernel, sys, proc, n, rng):
    for i in range(n):
        assert sys.prctl(proc, f"task-{i}") == 0
    assert proc.name.startswith("task-")


def _stress_vhangup(kernel, sys, proc, n, rng):
    for _ in range(n):
        assert sys.vhangup(proc) == 0


#: Table V rows: name -> (category, driver, default iterations).
LTP_STRESS_TESTS: Dict[str, Tuple[str, Callable, int]] = {
    "open": ("File", _stress_open, 120),
    "close": ("File", _stress_close, 120),
    "ftruncate": ("File", _stress_ftruncate, 120),
    "rename": ("File", _stress_rename, 120),
    "Listen": ("Network", _stress_listen, 120),
    "Socket": ("Network", _stress_socket, 120),
    "Send": ("Network", _stress_send, 120),
    "Recv": ("Network", _stress_recv, 120),
    "mmap": ("Memory", _stress_mmap, 60),
    "munmap": ("Memory", _stress_munmap, 60),
    "brk": ("Memory", _stress_brk, 60),
    "mlock": ("Memory", _stress_mlock, 40),
    "munlock": ("Memory", _stress_munlock, 60),
    "mremap": ("Memory", _stress_mremap, 40),
    "getpid": ("Process", _stress_getpid, 200),
    "exit": ("Process", _stress_exit, 25),
    "clone": ("Process", _stress_clone, 25),
    "ioctl": ("Misc.", _stress_ioctl, 120),
    "prctl": ("Misc.", _stress_prctl, 120),
    "vhangup": ("Misc.", _stress_vhangup, 120),
}


def run_stress_test(kernel, name: str,
                    iterations: Optional[int] = None,
                    seed: Optional[int] = None) -> StressResult:
    """Run one Table V stress driver on a fresh process.

    ``seed`` varies the driver's random stream; the default (None)
    keeps the historical per-test stream so existing runs reproduce.
    """
    category, driver, default_iters = LTP_STRESS_TESTS[name]
    n = iterations if iterations is not None else default_iters
    sys = SyscallTable(kernel)
    proc = kernel.create_process(f"ltp-{name}")
    rng = derive_rng("ltp", name) if seed is None \
        else derive_rng("ltp", name, seed)
    try:
        driver(kernel, sys, proc, n, rng)
    except (ReproError, AssertionError) as exc:
        return StressResult(name=name, category=category, iterations=n,
                            passed=False, error=f"{type(exc).__name__}: {exc}")
    finally:
        if proc.alive and proc.pid in kernel.processes:
            kernel.exit_process(proc)
    return StressResult(name=name, category=category, iterations=n,
                        passed=True)
