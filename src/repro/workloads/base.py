"""Deterministic slice-based workload engine.

The performance evaluation needs the *marginal* cost SoftTRR adds to a
workload, so the engine is built for perfectly fair A/B runs:

* a workload is a seeded, deterministic sequence of kernel interactions
  (page touches, mmap/munmap churn, forks, syscalls) issued in 1 ms
  *slices* of simulated time;
* per slice, the engine issues the profile's *hot-page* touches (the
  resident set a real program hits every millisecond) plus a sampled
  spread over the cold pool, then pads the slice to 1 ms — the padding
  stands in for the program's compute and for the bulk memory traffic
  that is not modelled access-by-access;
* the issued sequence depends only on the seed, never on defense state,
  so the vanilla and SoftTRR runs replay the identical workload and the
  runtime delta is exactly the defense's added cost (page-fault capture,
  timer arming, hook work, row refreshes).

Runtime can exceed ``duration_ms`` x 1 ms when a defense adds work — the
excess over the vanilla run *is* the measured overhead.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..batching import batch_enabled
from ..clock import NS_PER_MS
from ..errors import ConfigError
from ..kernel.vma import PAGE
from ..rng import derive_rng


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape of one benchmark program.

    ``hot_pages`` are touched every slice (a real program's per-ms
    resident set); ``cold_pool_pages`` is the total footprint from which
    ``cold_touches`` extra pages are sampled per slice.  ``churn_prob``
    is the per-slice probability of an mmap+touch+munmap burst (page-
    table churn — what drives the collector).  ``fork_every_slices``
    (if set) forks-and-reaps a child periodically.  ``syscalls_per_slice``
    issues cheap getpid-class syscalls (kernel-entry pressure).
    """

    name: str
    duration_ms: int = 200
    hot_pages: int = 16
    cold_pool_pages: int = 128
    cold_touches: int = 4
    write_fraction: float = 0.3
    churn_prob: float = 0.0
    churn_pages: int = 8
    fork_every_slices: Optional[int] = None
    syscalls_per_slice: int = 0
    #: Touches per hot page per slice (memory-bound programs hit their
    #: resident set many times per millisecond).  Values > 1 are where
    #: the batched access path (:meth:`Kernel.user_access_run`) pays off.
    hot_touch_repeat: int = 1
    category: str = "cpu"

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ConfigError("workload needs a positive duration")
        if self.hot_pages < 0 or self.cold_pool_pages < self.hot_pages:
            raise ConfigError("cold pool must contain the hot set")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be a probability")
        if self.hot_touch_repeat < 1:
            raise ConfigError("hot_touch_repeat must be >= 1")

    def replace(self, **overrides) -> "WorkloadProfile":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return dataclasses.replace(self, **overrides)


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    runtime_ns: int
    slices: int
    touches: int
    forks: int
    churn_events: int
    syscalls: int
    #: Kernel accountant snapshot delta (per-category ns).
    accounting: Dict[str, int] = field(default_factory=dict)

    @property
    def runtime_ms(self) -> float:
        """Runtime in milliseconds."""
        return self.runtime_ns / NS_PER_MS


class SliceWorkload:
    """Runs one :class:`WorkloadProfile` against a kernel."""

    def __init__(self, kernel, profile: WorkloadProfile, seed: int = 1234,
                 use_batch: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.profile = profile
        self.seed = seed
        #: None = consult the ``REPRO_BATCH`` knob at run time.  The
        #: batched and scalar hot loops consume the seeded rng
        #: identically and are asserted byte-equivalent by the
        #: differential suite, so this cannot change any measurement.
        self.use_batch = use_batch

    def run(self) -> WorkloadResult:
        """Execute the workload; returns its measured result."""
        kernel = self.kernel
        prof = self.profile
        rng = derive_rng("workload", prof.name, self.seed)
        process = kernel.create_process(prof.name)
        base = kernel.mmap(process, prof.cold_pool_pages * PAGE,
                           name=f"{prof.name}-ws")
        pages = [base + i * PAGE for i in range(prof.cold_pool_pages)]
        hot = pages[:prof.hot_pages]
        cold = pages[prof.hot_pages:] or hot
        # Pre-fault the hot set (programs warm up before the measured
        # region; this also avoids demand-paging noise in the A/B delta).
        for vaddr in hot:
            kernel.user_write(process, vaddr, b"w")
        accounting_before = kernel.accountant.snapshot()
        touches = forks = churn_events = syscalls = 0
        repeat = prof.hot_touch_repeat
        use_batch = (batch_enabled() if self.use_batch is None
                     else self.use_batch)
        defense_seen = kernel.defense_overhead_ns()
        start_ns = kernel.clock.now_ns
        for slice_index in range(prof.duration_ms):
            slice_start = kernel.clock.now_ns
            kernel.dispatch_timers()
            # Hot set: touched every slice (hot_touch_repeat times per
            # page).  One rng draw per page decides read vs write for
            # the whole repeat run, so both paths consume the seed
            # identically.
            for vaddr in hot:
                is_write = rng.random() < prof.write_fraction
                if use_batch:
                    if is_write:
                        kernel.user_access_run(
                            process, vaddr, repeat, data=b"x")
                    else:
                        kernel.user_access_run(process, vaddr, repeat, size=8)
                elif is_write:
                    for _ in range(repeat):
                        kernel.user_write(process, vaddr, b"x")
                else:
                    for _ in range(repeat):
                        kernel.user_read(process, vaddr, 8)
                touches += repeat
            # Cold spread.
            for _ in range(prof.cold_touches):
                vaddr = rng.choice(cold)
                kernel.user_read(process, vaddr, 8)
                touches += 1
            # Page-table churn.
            if prof.churn_prob and rng.random() < prof.churn_prob:
                churn_events += 1
                scratch = kernel.mmap(process, prof.churn_pages * PAGE,
                                      name=f"{prof.name}-churn")
                for i in range(prof.churn_pages):
                    kernel.user_write(process, scratch + i * PAGE, b"c")
                kernel.munmap(process, scratch, prof.churn_pages * PAGE)
            # Fork pressure.
            if (prof.fork_every_slices
                    and slice_index % prof.fork_every_slices == 0
                    and slice_index > 0):
                child = kernel.fork(process)
                kernel.exit_process(child)
                forks += 1
            # Kernel-entry pressure.
            for _ in range(prof.syscalls_per_slice):
                kernel.dispatch_timers()
                kernel.clock.advance(kernel.cost.syscall_ns)
                syscalls += 1
            # Pad the slice to 1 ms of *program* time (compute + the
            # unmodelled bulk of its memory traffic).  Defense-added
            # time (module overhead accumulators) rides on top of the
            # padding — otherwise the padding would silently absorb it
            # and every overhead measurement would read zero.
            defense_now = kernel.defense_overhead_ns()
            defense_delta = defense_now - defense_seen
            defense_seen = defense_now
            elapsed = kernel.clock.now_ns - slice_start
            target = NS_PER_MS + defense_delta
            if elapsed < target:
                kernel.clock.advance(target - elapsed)
        runtime = kernel.clock.now_ns - start_ns
        accounting_after = kernel.accountant.snapshot()
        delta = {
            key: accounting_after.get(key, 0) - accounting_before.get(key, 0)
            for key in accounting_after
        }
        kernel.exit_process(process)
        return WorkloadResult(
            name=prof.name,
            runtime_ns=runtime,
            slices=prof.duration_ms,
            touches=touches,
            forks=forks,
            churn_events=churn_events,
            syscalls=syscalls,
            accounting=delta,
        )
