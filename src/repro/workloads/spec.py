"""SPECspeed 2017 Integer-like programs (Table III).

Each profile mirrors the qualitative memory behaviour of the real
benchmark at slice-engine scale:

* ``mcf_s`` / ``omnetpp_s`` / ``xalancbmk_s`` — large, pointer-chasing
  footprints with bigger per-ms resident sets (these carry the highest
  Δ±6 overheads in Table III);
* ``gcc_s`` — heavy allocation churn (compilers mmap constantly);
* ``perlbench_s`` — interpreter with moderate heap churn;
* ``x264_s`` / ``xz_s`` — streaming over large buffers;
* ``deepsjeng_s`` / ``leela_s`` — game-tree search, cache-resident;
* ``exchange2_s`` — tiny footprint, essentially pure compute (the
  near-zero/negative rows of Table III).
"""

from __future__ import annotations

from typing import Dict

from .base import WorkloadProfile

#: Default slice count per program (each slice = 1 ms simulated).
SPEC_DURATION_MS = 160

SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="perlbench_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=14, cold_pool_pages=192, cold_touches=5,
            write_fraction=0.35, churn_prob=0.08, churn_pages=6,
        ),
        WorkloadProfile(
            name="gcc_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=16, cold_pool_pages=256, cold_touches=6,
            write_fraction=0.4, churn_prob=0.25, churn_pages=10,
        ),
        WorkloadProfile(
            name="mcf_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=26, cold_pool_pages=512, cold_touches=10,
            write_fraction=0.3, churn_prob=0.02,
        ),
        WorkloadProfile(
            name="omnetpp_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=30, cold_pool_pages=448, cold_touches=9,
            write_fraction=0.45, churn_prob=0.1, churn_pages=8,
        ),
        WorkloadProfile(
            name="xalancbmk_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=34, cold_pool_pages=512, cold_touches=10,
            write_fraction=0.35, churn_prob=0.12, churn_pages=8,
        ),
        WorkloadProfile(
            name="x264_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=18, cold_pool_pages=320, cold_touches=6,
            write_fraction=0.5, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="deepsjeng_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=12, cold_pool_pages=160, cold_touches=4,
            write_fraction=0.3, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="leela_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=12, cold_pool_pages=144, cold_touches=4,
            write_fraction=0.25, churn_prob=0.01,
        ),
        WorkloadProfile(
            name="exchange2_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=6, cold_pool_pages=64, cold_touches=2,
            write_fraction=0.2, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="xz_s", duration_ms=SPEC_DURATION_MS,
            hot_pages=20, cold_pool_pages=384, cold_touches=7,
            write_fraction=0.55, churn_prob=0.05, churn_pages=12,
        ),
    )
}

#: Table III row order.
SPEC_ORDER = [
    "perlbench_s", "gcc_s", "mcf_s", "omnetpp_s", "xalancbmk_s",
    "x264_s", "deepsjeng_s", "leela_s", "exchange2_s", "xz_s",
]
