"""Phoronix-like programs (Table IV).

The paper "select[s] a subset of the available programs to stress-test
performance of CPU, memory, network I/O and disk I/O"; the seventeen
rows of Table IV are modelled with matching categories:

* server/network: ``Apache`` (fork + socket churn);
* disk I/O: ``unpack-linux``, ``iozone``, ``postmark`` (file syscalls +
  page churn);
* memory bandwidth: the four ``stream:*`` kernels and two ``ramspeed:*``
  runs (large streaming footprints);
* CPU: ``compress-7zip``, ``openssl``, ``pybench``, ``phpbench``;
* cache: the three ``cacheben:*`` variants (cache-resident hot sets).
"""

from __future__ import annotations

from typing import Dict

from .base import WorkloadProfile

PHX_DURATION_MS = 140

PHORONIX_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="Apache", duration_ms=PHX_DURATION_MS, category="network",
            hot_pages=12, cold_pool_pages=192, cold_touches=5,
            write_fraction=0.4, churn_prob=0.15, churn_pages=6,
            fork_every_slices=24, syscalls_per_slice=4,
        ),
        WorkloadProfile(
            name="unpack-linux", duration_ms=PHX_DURATION_MS, category="disk",
            hot_pages=14, cold_pool_pages=320, cold_touches=8,
            write_fraction=0.7, churn_prob=0.35, churn_pages=12,
            syscalls_per_slice=6,
        ),
        WorkloadProfile(
            name="iozone", duration_ms=PHX_DURATION_MS, category="disk",
            hot_pages=16, cold_pool_pages=384, cold_touches=8,
            write_fraction=0.6, churn_prob=0.1, churn_pages=16,
            syscalls_per_slice=8,
        ),
        WorkloadProfile(
            name="postmark", duration_ms=PHX_DURATION_MS, category="disk",
            hot_pages=10, cold_pool_pages=192, cold_touches=6,
            write_fraction=0.55, churn_prob=0.25, churn_pages=4,
            syscalls_per_slice=10,
        ),
        WorkloadProfile(
            name="stream:Copy", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=24, cold_pool_pages=512, cold_touches=12,
            write_fraction=0.5, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="stream:Scale", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=24, cold_pool_pages=512, cold_touches=12,
            write_fraction=0.5, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="stream:Triad", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=26, cold_pool_pages=512, cold_touches=12,
            write_fraction=0.45, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="stream:Add", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=26, cold_pool_pages=512, cold_touches=12,
            write_fraction=0.45, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="compress-7zip", duration_ms=PHX_DURATION_MS, category="cpu",
            hot_pages=22, cold_pool_pages=448, cold_touches=8,
            write_fraction=0.5, churn_prob=0.08, churn_pages=8,
        ),
        WorkloadProfile(
            name="openssl", duration_ms=PHX_DURATION_MS, category="cpu",
            hot_pages=6, cold_pool_pages=64, cold_touches=2,
            write_fraction=0.2, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="pybench", duration_ms=PHX_DURATION_MS, category="cpu",
            hot_pages=10, cold_pool_pages=128, cold_touches=4,
            write_fraction=0.35, churn_prob=0.05, churn_pages=4,
        ),
        WorkloadProfile(
            name="phpbench", duration_ms=PHX_DURATION_MS, category="cpu",
            hot_pages=10, cold_pool_pages=128, cold_touches=4,
            write_fraction=0.35, churn_prob=0.06, churn_pages=4,
        ),
        WorkloadProfile(
            name="cacheben:read", duration_ms=PHX_DURATION_MS, category="cache",
            hot_pages=8, cold_pool_pages=96, cold_touches=2,
            write_fraction=0.0, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="cacheben:write", duration_ms=PHX_DURATION_MS, category="cache",
            hot_pages=8, cold_pool_pages=96, cold_touches=2,
            write_fraction=1.0, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="cacheben:modify", duration_ms=PHX_DURATION_MS, category="cache",
            hot_pages=8, cold_pool_pages=96, cold_touches=2,
            write_fraction=0.5, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="ramspeed:INT", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=20, cold_pool_pages=448, cold_touches=10,
            write_fraction=0.4, churn_prob=0.0,
        ),
        WorkloadProfile(
            name="ramspeed:FP", duration_ms=PHX_DURATION_MS, category="memory",
            hot_pages=20, cold_pool_pages=448, cold_touches=10,
            write_fraction=0.4, churn_prob=0.0,
        ),
    )
}

#: Table IV row order.
PHORONIX_ORDER = [
    "Apache", "unpack-linux", "iozone", "postmark",
    "stream:Copy", "stream:Scale", "stream:Triad", "stream:Add",
    "compress-7zip", "openssl", "pybench", "phpbench",
    "cacheben:read", "cacheben:write", "cacheben:modify",
    "ramspeed:INT", "ramspeed:FP",
]
