"""Benchmark workloads for the Section VI performance evaluation.

* :mod:`repro.workloads.base` — the deterministic slice-based workload
  engine driving the simulated kernel/MMU/DRAM.
* :mod:`repro.workloads.spec` — the 10 SPECspeed 2017 Integer-like
  programs of Table III.
* :mod:`repro.workloads.phoronix` — the 17 Phoronix-like programs of
  Table IV (CPU, memory, network I/O and disk I/O stressors).
* :mod:`repro.workloads.lamp` — the LAMP server + Nikto scanner of
  Figures 4 and 5.
* :mod:`repro.workloads.ltp` — the 20 LTP-style syscall stress tests of
  Table V.
"""

from .base import SliceWorkload, WorkloadProfile, WorkloadResult
from .spec import SPEC_PROFILES
from .phoronix import PHORONIX_PROFILES
from .lamp import LampSimulation, LampSample
from .ltp import LTP_STRESS_TESTS, run_stress_test, StressResult

__all__ = [
    "SliceWorkload",
    "WorkloadProfile",
    "WorkloadResult",
    "SPEC_PROFILES",
    "PHORONIX_PROFILES",
    "LampSimulation",
    "LampSample",
    "LTP_STRESS_TESTS",
    "run_stress_test",
    "StressResult",
]
