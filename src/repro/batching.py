"""Gating for the batched fast paths (the ``REPRO_BATCH`` knob).

The batched execution layer (``DramModule.hammer_batch``,
``Mmu.access_run``, the workload engine's hot-touch replay) is
*semantically invisible*: every batched run produces byte-identical DRAM
state, identical flip events and identical simulated time as the scalar
path (enforced by ``tests/perf/test_differential_equivalence.py``).
Batching is therefore on by default.

Setting ``REPRO_BATCH=0`` in the environment forces every component that
consults :func:`batch_enabled` back onto the scalar path, so any paper
benchmark can be replayed access-by-access for spot-check parity.

``REPRO_DENSE`` gates the disturbance accumulator *store* the same way:
the array-backed dense core (``repro.dram.dense``) is the default;
``REPRO_DENSE=0`` keeps the original dict-keyed
:class:`~repro.dram.disturbance.DisturbanceEngine` as the differential
baseline.  The two cores are bit-identical in every observable
(enforced by ``tests/perf/test_generative_differential.py``); the knob
is consulted at machine construction, not per call, because the store
layout is fixed for an engine's lifetime.
"""

from __future__ import annotations

import os

__all__ = ["batch_enabled", "dense_enabled"]

#: Environment values that disable the batched fast paths.
_OFF_VALUES = frozenset({"0", "false", "no", "off"})


def batch_enabled(default: bool = True) -> bool:
    """Whether batched fast paths should be used.

    Reads ``REPRO_BATCH`` at call time (not import time) so a test or
    bench harness can flip the knob between runs.
    """
    value = os.environ.get("REPRO_BATCH")
    if value is None:
        return default
    return value.strip().lower() not in _OFF_VALUES


def dense_enabled(default: bool = True) -> bool:
    """Whether the array-backed dense disturbance core should be used.

    Reads ``REPRO_DENSE`` at call time; consulted once per
    :class:`~repro.dram.module.DramModule` construction.
    """
    value = os.environ.get("REPRO_DENSE")
    if value is None:
        return default
    return value.strip().lower() not in _OFF_VALUES
