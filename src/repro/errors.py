"""Exception hierarchy for the SoftTRR reproduction stack.

Every layer of the simulation (DRAM, MMU, kernel, SoftTRR module, attacks)
raises exceptions derived from :class:`ReproError` so callers can
distinguish simulation bugs from modelled hardware/kernel events.

Two exceptions are *modelled events* rather than errors:

* :class:`PageFaultException` is the simulated hardware exception raised by
  the MMU when a translation violates the paging structures.  The kernel's
  ``do_page_fault`` path catches it, exactly as the real interrupt vector
  does.
* :class:`KernelPanic` models a kernel abort (e.g. the crash the paper
  describes when a tracer based on the *present* bit races with ``fork``'s
  present-bit checks, Section IV-C).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction stack."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class DramError(ReproError):
    """An invalid operation against the DRAM substrate."""


class AddressMappingError(DramError):
    """A physical<->DRAM address mapping is malformed or not invertible."""


class MmuError(ReproError):
    """An invalid operation against the MMU substrate."""


class KernelError(ReproError):
    """An invalid operation against the simulated kernel."""


class OutOfMemoryError(KernelError):
    """The buddy or slab allocator ran out of physical memory."""


class BadAddressError(KernelError):
    """A syscall was given an address outside any VMA (simulated EFAULT)."""


class HookError(KernelError):
    """Inline-hook installation or removal failed."""


class KernelPanic(KernelError):
    """The simulated kernel hit an unrecoverable inconsistency and aborted.

    This is the modelled equivalent of a real kernel ``BUG()``/oops.  The
    paper's motivation for tracing with the *reserved* bit instead of the
    *present* bit is precisely that the present bit causes such a panic
    when the kernel's own present-bit checks (e.g. during ``fork``) observe
    a PTE the tracer cleared.
    """


class SoftTrrError(ReproError):
    """An invalid operation against the SoftTRR module itself."""


class FaultError(ReproError):
    """A fault-injection spec or plan is malformed (``repro.faults``)."""


class SanitizerViolationError(ReproError):
    """A runtime invariant sanitizer caught a breach (strict mode), or a
    :meth:`SanitizerReport.assert_clean` found accumulated violations."""


class DefenseError(ReproError):
    """An invalid operation against one of the baseline defenses."""


class AttackError(ReproError):
    """An attack primitive was used incorrectly or could not proceed."""


class TemplatingError(AttackError):
    """Flip templating could not find the requested vulnerable pages."""


class PatternError(ReproError):
    """A hammer-pattern program failed to parse, resolve or compile."""


class PageFaultException(ReproError):
    """Simulated hardware page fault (see ``repro.mmu.faults``).

    Carries a :class:`repro.mmu.faults.PageFaultInfo` describing the
    faulting virtual address and the x86 error code bits of Figure 2 of
    the paper.
    """

    def __init__(self, info) -> None:
        super().__init__(f"page fault: {info}")
        self.info = info


class SegmentationFault(ReproError):
    """A user access could not be repaired by the kernel (SIGSEGV)."""

    def __init__(self, vaddr: int, reason: str = "") -> None:
        detail = f" ({reason})" if reason else ""
        super().__init__(f"segmentation fault at {vaddr:#x}{detail}")
        self.vaddr = vaddr
        self.reason = reason
