"""Crash-tolerant fleet state on disk: manifest + per-shard JSONL.

Layout of an ``experiment_result_dir``::

    fleet.json            the manifest: spec + expanded cell list
    shards/shard-NNN.jsonl  append-only completed-cell records
    report.json           the aggregate report (``repro-fleet report``)

Durability contract:

* ``fleet.json`` and ``report.json`` are written atomically
  (:func:`repro.cli_common.atomic_write_text`), so a SIGKILL can never
  tear them.
* Shard files are *append-only*: one JSON line per finished cell
  (completed or quarantined), flushed and fsynced per record.  The
  appends **are** the checkpoint — there is no separate progress file
  to get out of sync.
* A kill mid-append leaves at most one torn trailing line per shard.
  The loader skips unparseable lines (counting them), and
  :meth:`ResultDir.repair_shards` terminates a torn tail with a
  newline before new appends, so the garbage stays isolated on its own
  line forever and the cell simply re-runs.
* Records never contain wall-clock data, which is what makes a resumed
  fleet's aggregate report byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, List, Mapping, Optional

from ..cli_common import atomic_write_text
from ..errors import ConfigError
from .spec import FleetCell, FleetSpec

__all__ = ["MANIFEST_NAME", "REPORT_NAME", "ResultDir"]

MANIFEST_NAME = "fleet.json"
REPORT_NAME = "report.json"
_SHARD_DIR = "shards"
_MANIFEST_VERSION = 1


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultDir:
    """One fleet's ``experiment_result_dir`` (manifest + shards)."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._handles: Dict[int, IO[str]] = {}

    # ------------------------------------------------------------ paths
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, REPORT_NAME)

    def shard_path(self, shard: int) -> str:
        return os.path.join(self.root, _SHARD_DIR, f"shard-{shard:03d}.jsonl")

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    # --------------------------------------------------------- manifest
    def initialise(self, spec: FleetSpec, cells: List[FleetCell]) -> None:
        """Create the dir and write the manifest (atomic; run once)."""
        os.makedirs(os.path.join(self.root, _SHARD_DIR), exist_ok=True)
        if self.exists():
            raise ConfigError(
                f"{self.root} already holds a fleet manifest; use resume "
                "(or pick a fresh --out directory)")
        manifest = {
            "version": _MANIFEST_VERSION,
            "spec": spec.to_dict(),
            "cells": [cell.to_dict() for cell in cells],
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, sort_keys=True, indent=2) + "\n")

    def load_manifest(self) -> Dict[str, object]:
        """The manifest dict (raises ConfigError when absent/corrupt)."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise ConfigError(
                f"{self.root} holds no fleet manifest "
                f"({MANIFEST_NAME}); run a fleet first") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"corrupt fleet manifest {self.manifest_path}: {exc}"
            ) from None
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ConfigError(
                f"fleet manifest version {manifest.get('version')!r} is "
                f"not {_MANIFEST_VERSION}")
        return manifest

    def load_spec(self) -> FleetSpec:
        return FleetSpec.from_dict(self.load_manifest()["spec"])

    def load_cells(self) -> List[FleetCell]:
        return [FleetCell.from_dict(cell)
                for cell in self.load_manifest()["cells"]]

    def verify_expansion(self) -> List[FleetCell]:
        """Manifest cells, checked against a fresh spec expansion.

        Resume re-expands the stored spec and demands the same cell ids
        in the same order — a manifest that disagrees with its own spec
        (hand-edited, mixed fleet versions) must not silently resume.
        """
        manifest_cells = self.load_cells()
        expanded = self.load_spec().expand()
        if ([c.cell_id for c in manifest_cells]
                != [c.cell_id for c in expanded]):
            raise ConfigError(
                f"{self.root}: manifest cells disagree with the spec "
                "expansion; the result dir is corrupt")
        return manifest_cells

    # ----------------------------------------------------------- records
    def append_record(self, record: Mapping) -> None:
        """Append one completed-cell record to its shard (fsynced).

        The record must carry ``shard`` and ``cell_id``; the line is
        canonical JSON so identical outcomes are identical bytes.
        """
        shard = int(record["shard"])
        handle = self._handles.get(shard)
        if handle is None:
            path = self.shard_path(shard)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle = open(path, "a", encoding="utf-8")
            self._handles[shard] = handle
        handle.write(_canonical_json(dict(record)) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        """Close any shard append handles."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "ResultDir":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def repair_shards(self) -> int:
        """Terminate torn shard tails with a newline; returns the count.

        Called before resuming appends: a shard whose last byte is not
        ``\\n`` was torn by a kill mid-append, and appending straight
        after it would concatenate a fresh record onto the garbage.
        """
        repaired = 0
        shard_dir = os.path.join(self.root, _SHARD_DIR)
        if not os.path.isdir(shard_dir):
            return 0
        for name in sorted(os.listdir(shard_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(shard_dir, name)
            with open(path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    continue
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                    repaired += 1
        return repaired

    def load_records(self) -> Dict[str, dict]:
        """All parseable records, keyed by cell id (first write wins).

        Unparseable lines (torn tails from a kill) and duplicate cell
        ids (a cell re-run after a kill landed between append and
        death) are tolerated; the counts are reported via
        :meth:`scan`.
        """
        return self.scan()["records"]

    def scan(self) -> Dict[str, object]:
        """Records plus integrity counters for status reporting."""
        records: Dict[str, dict] = {}
        torn_lines = 0
        duplicates = 0
        shard_dir = os.path.join(self.root, _SHARD_DIR)
        names = (sorted(os.listdir(shard_dir))
                 if os.path.isdir(shard_dir) else [])
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            with open(os.path.join(shard_dir, name), "r",
                      encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        torn_lines += 1
                        continue
                    cell_id = record.get("cell_id")
                    if not isinstance(cell_id, str):
                        torn_lines += 1
                        continue
                    if cell_id in records:
                        duplicates += 1
                        continue
                    records[cell_id] = record
        return {
            "records": records,
            "torn_lines": torn_lines,
            "duplicates": duplicates,
        }

    # ------------------------------------------------------------ report
    def write_report(self, report: Mapping) -> str:
        """Atomically write ``report.json``; returns its path."""
        atomic_write_text(
            self.report_path,
            json.dumps(report, sort_keys=True, indent=2) + "\n")
        return self.report_path

    def read_report(self) -> Optional[dict]:
        try:
            with open(self.report_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
