"""Fleet cell runners: one cell dict in, one JSON-stable payload out.

Every runner is a pure function of the cell (seeded RNG, simulated
clock), so a retried or resumed cell reproduces its payload byte-for-
byte — the property the fleet's resume invariant rests on.  Runners
raise on failure; retry/backoff/quarantine policy belongs to the
supervisor, not here.

* ``scenario`` — materialise the cell onto a registered
  :class:`~repro.scenarios.spec.ScenarioSpec` (defense/seed/fault-plan
  overrides applied) and execute it through
  :func:`~repro.scenarios.runner.run_scenario`.
* ``window`` — a protection-window bench: hammer the cheapest
  vulnerable neighbourhood on a fresh machine with spans-level tracing
  and report flips, refresh overhead, windows covered and the span
  latency histograms (the fleet report's p50/p99 source).
* ``synthetic`` — hash-derived payloads plus scripted misbehaviour
  (poison / flaky / hang / pacing via ``runner_params``) for the
  fleet's own robustness tests and the CI smoke job.
* ``fuzz`` — one point of the seeded pattern-fuzz campaign
  (:mod:`repro.patterns.fuzz`), regenerated purely from the cell's
  ``point-<index>`` name and the campaign seed in ``runner_params`` —
  so a resumed fleet re-derives exactly the pattern a killed one was
  hammering.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Mapping, Optional

from ..errors import ConfigError

__all__ = [
    "WINDOW_PATTERNS",
    "fuzz_point_index",
    "materialise_scenario",
    "run_fleet_cell",
    "run_window_cell",
]

#: Patterns the ``window`` runner accepts on the scenarios axis.
WINDOW_PATTERNS = ("one_sided", "double_sided", "many_sided")

#: Fallback protection-window length when the cell's defense is not
#: SoftTRR (the paper's 1 ms refresh deadline).
_DEFAULT_WINDOW_NS = 1_000_000


# ------------------------------------------------------------- scenario
def materialise_scenario(cell: Mapping):
    """The cell's derived ScenarioSpec: base scenario + axis overrides.

    The seed and fault-plan axes travel through ``params`` (the
    scenario runner hands them to machine assembly); the defense axis
    replaces the base spec's defense/params wholesale when set.
    """
    from ..scenarios.registry import scenario
    from ..scenarios.spec import ScenarioSpec

    base = scenario(cell["scenario"])
    params = dict(base.params)
    if cell.get("seed") is not None:
        params["seed"] = cell["seed"]
    if cell.get("fault_plan"):
        params["fault_plan"] = dict(cell["fault_plan"])
    defense = base.defense
    defense_params = base.defense_params
    if cell.get("defense"):
        defense = cell["defense"]
        defense_params = dict(cell.get("defense_params") or {})
    return ScenarioSpec(
        name=base.name,
        kind=base.kind,
        group=base.group,
        title=base.title,
        machine=base.machine,
        defense=defense,
        defense_params=defense_params,
        attack=base.attack,
        workload=base.workload,
        pattern=base.pattern,
        params=params,
    )


def _run_scenario_cell(cell: Mapping, runner_params: Mapping,
                       attempt: int) -> dict:
    from ..scenarios.runner import run_scenario

    spec = materialise_scenario(cell)
    result = run_scenario(spec)
    payload = dict(result.payload)
    payload.setdefault("kind", spec.kind)
    # The resolved defense (base scenario's or the axis override), so
    # the fleet report can group scenario cells without the registry.
    payload.setdefault("defense", spec.defense)
    return payload


# --------------------------------------------------------------- window
def run_window_cell(
    pattern: str,
    defense: Optional[str] = None,
    defense_params: Optional[Mapping] = None,
    seed: Optional[int] = None,
    fault_plan: Optional[Mapping] = None,
    machine_name: str = "tiny",
    rounds: int = 50,
    budget_factor: float = 1.5,
) -> dict:
    """One protection-window bench cell; deterministic in all args.

    Builds a sanitized machine with spans-level tracing, hammers the
    cheapest vulnerable neighbourhood with ``pattern`` at
    ``budget_factor`` x the victim's flip threshold, and reports the
    protection story (flips, refreshes, windows covered, erosion under
    an active fault plan) plus the raw span histograms.
    """
    from ..analysis.zoo import TINY_DEFENSE_PARAMS, _PATTERN_OFFSETS
    from ..machine import Machine, MachineConfig

    if pattern not in WINDOW_PATTERNS:
        raise ConfigError(
            f"unknown window pattern {pattern!r}; known: "
            f"{WINDOW_PATTERNS}")
    defense = defense or "vanilla"
    params: Dict[str, object] = dict(
        TINY_DEFENSE_PARAMS.get(defense, {}) if machine_name == "tiny"
        else {})
    params.update(defense_params or {})
    machine = Machine(MachineConfig(
        machine=machine_name,
        defense=defense,
        defense_params=params,
        sanitize=True,
        strict_sanitizers=False,
        seed=seed,
        fault_plan=fault_plan,
        trace="spans",
    ))
    dram = machine.dram
    bank, victim, threshold = _cheapest_victim(machine, _PATTERN_OFFSETS)
    offsets = _PATTERN_OFFSETS[pattern]
    budget = int(budget_factor * threshold)
    per_round = max(1, budget // max(1, rounds))
    aggressors = [
        dram.mapping.dram_to_phys(bank, victim + offset, 0)
        for offset in offsets]
    hammer_start = machine.clock.now_ns
    for _ in range(rounds):
        for paddr in aggressors:
            dram.hammer(paddr, per_round)
    hammer_ns = machine.clock.now_ns - hammer_start
    flips = sum(1 for flip in dram.flip_log if flip.at_ns >= hammer_start)
    window_ns = _DEFAULT_WINDOW_NS
    softtrr = getattr(machine, "softtrr", None)
    if softtrr is not None:
        window_ns = softtrr.params.protection_window_ns
    activations = dram.total_activations
    refreshes = dram.actuator.refreshes
    payload: Dict[str, object] = {
        "kind": "window",
        "pattern": pattern,
        "defense": defense,
        "seed": seed,
        "victim": [bank, victim],
        "victim_threshold": threshold,
        "aggressors": len(offsets),
        "acts_per_aggressor": per_round * rounds,
        "flip_events": flips,
        "protected": flips == 0,
        "activations": activations,
        "refreshes": refreshes,
        "refresh_overhead": (refreshes / activations
                             if activations else 0.0),
        "window_ns": window_ns,
        "windows": hammer_ns // window_ns,
        "hammer_ns": hammer_ns,
        "erosion_ns": _window_erosion_ns(machine, fault_plan, softtrr),
        "span_histograms": machine.telemetry.span_histograms(),
    }
    return payload


def _cheapest_victim(machine, pattern_offsets):
    """(bank, row, threshold) of the cheapest hammerable victim.

    Mirrors the zoo's search; rows too close to the bank edge for the
    widest pattern are skipped so every pattern hits the same victim.
    """
    dram = machine.dram
    margin = max(max(abs(off) for off in offsets)
                 for offsets in pattern_offsets.values())
    best = None
    for bank in range(dram.geometry.num_banks):
        for row in range(margin, dram.geometry.rows_per_bank - margin):
            cells = dram.engine.vulnerable_cells(bank, row)
            if cells and (best is None or cells[0].threshold < best[2]):
                best = (bank, row, cells[0].threshold)
    if best is None:
        raise ConfigError("machine seed produced no vulnerable rows")
    return best


def _window_erosion_ns(machine, fault_plan: Optional[Mapping],
                       softtrr) -> int:
    """Protection time lost to unhealed faults (0 without a plan)."""
    if not fault_plan or softtrr is None:
        return 0
    from ..analysis.chaos import _erosion_ns
    from ..faults import FaultPlan

    plan = FaultPlan.coerce(fault_plan)
    trr = softtrr.params
    total = 0
    for site in plan.sites():
        counters = machine.telemetry.group(f"faults.{site}")
        if "injected" in counters:
            total += _erosion_ns(site, counters, trr.timer_inr_ns,
                                 trr.protection_window_ns)
    return total


def _run_window_cell(cell: Mapping, runner_params: Mapping,
                     attempt: int) -> dict:
    return run_window_cell(
        pattern=cell["scenario"],
        defense=cell.get("defense"),
        defense_params=cell.get("defense_params"),
        seed=cell.get("seed"),
        fault_plan=cell.get("fault_plan"),
        machine_name=runner_params.get("machine", "tiny"),
        rounds=runner_params.get("rounds", 50),
        budget_factor=runner_params.get("budget_factor", 1.5),
    )


# ----------------------------------------------------------------- fuzz
def fuzz_point_index(name: str) -> int:
    """The point index behind a ``point-<N>`` scenarios-axis name."""
    prefix, _, digits = name.partition("-")
    if prefix != "point" or not digits.isdigit():
        raise ConfigError(
            f"fuzz cells are named 'point-<index>', not {name!r}")
    return int(digits)


def _run_fuzz_cell(cell: Mapping, runner_params: Mapping,
                   attempt: int) -> dict:
    """One fuzz-campaign point as a fleet cell.

    The point is regenerated from ``(fuzz_seed, index)`` alone, so a
    retried or resumed cell hammers the identical pattern.  The
    defense axis picks the defense (default vanilla); the target
    follows the campaign convention (SoftTRR gets the page-table leg)
    unless ``runner_params["target"]`` pins it.
    """
    from ..patterns.fuzz import _target_for, point_spec, sample_point
    from ..patterns.scenario import run_pattern_scenario

    index = fuzz_point_index(cell["scenario"])
    fuzz_seed = runner_params.get("fuzz_seed", 11)
    point = sample_point(
        fuzz_seed, index,
        max_sides=runner_params.get("max_sides", 8))
    defense = cell.get("defense") or "vanilla"
    target = runner_params.get("target") or _target_for(defense)
    spec = point_spec(
        point, defense, fuzz_seed, target=target,
        defense_params=cell.get("defense_params"),
        machine_name=runner_params.get("machine", "tiny"))
    params = dict(spec.params)
    if cell.get("seed") is not None:
        params["seed"] = cell["seed"]
    if cell.get("fault_plan"):
        params["fault_plan"] = dict(cell["fault_plan"])
    from ..scenarios.spec import ScenarioSpec

    payload = run_pattern_scenario(ScenarioSpec(
        name=spec.name, kind=spec.kind, group=spec.group,
        title=spec.title, machine=spec.machine, defense=spec.defense,
        defense_params=spec.defense_params, pattern=spec.pattern,
        params=params))
    payload["kind"] = "pattern"
    payload["point"] = point.to_dict()
    return payload


# ------------------------------------------------------------ synthetic
#: Span-histogram boundaries the synthetic runner mirrors (the same
#: edges as repro.trace.metrics.DURATION_BUCKETS_NS, duplicated here so
#: synthetic cells never import the metrics layer; the fleet tests pin
#: the two tuples equal).
_SYNTH_BOUNDARIES = (
    100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
)


def _cell_selectors(cell: Mapping) -> List[str]:
    """Names ``runner_params`` targeting can match this cell by."""
    selectors = [cell["scenario"], cell["cell_id"]]
    if cell.get("seed") is not None:
        selectors.append(f"{cell['scenario']}@{cell['seed']}")
    return selectors


def _selected(cell: Mapping, targets) -> bool:
    if not targets:
        return False
    chosen = set(targets)
    return any(sel in chosen for sel in _cell_selectors(cell))


def _run_synthetic_cell(cell: Mapping, runner_params: Mapping,
                        attempt: int) -> dict:
    """Hash-derived deterministic payload with scripted misbehaviour.

    ``runner_params`` knobs (each selector matches the scenario name,
    ``scenario@seed``, or the cell id):

    * ``poison`` — cells that raise on every attempt (quarantine bait);
    * ``flaky`` — mapping of selector -> number of failing attempts
      before success (exercises the retry path);
    * ``hang`` / ``hang_s`` — cells that sleep past the fleet timeout;
    * ``sleep_ms`` — per-cell pacing so tests can kill a fleet mid-run.
    """
    if _selected(cell, runner_params.get("poison")):
        raise RuntimeError(f"synthetic poison cell {cell['cell_id']}")
    flaky = runner_params.get("flaky") or {}
    for selector in _cell_selectors(cell):
        failures = flaky.get(selector)
        if failures is not None and attempt <= int(failures):
            raise RuntimeError(
                f"synthetic flaky cell {cell['cell_id']} "
                f"(attempt {attempt}/{failures})")
    if _selected(cell, runner_params.get("hang")):
        time.sleep(float(runner_params.get("hang_s", 3600.0)))
    sleep_ms = runner_params.get("sleep_ms", 0)
    if sleep_ms:
        time.sleep(sleep_ms / 1000.0)
    digest = hashlib.sha256(
        ("synthetic:" + cell["cell_id"]).encode("utf-8")).digest()
    h = int.from_bytes(digest[:8], "big")
    flips = (h >> 8) % 3 + 1 if h % 7 == 0 else 0
    activations = 1_000 + h % 4_096
    refreshes = h % 64
    observations = [
        (int.from_bytes(digest[i:i + 2], "big") * 37) % 400_000
        for i in range(0, 24, 2)]
    return {
        "kind": "synthetic",
        "defense": cell.get("defense") or "vanilla",
        "seed": cell.get("seed"),
        "flip_events": flips,
        "protected": flips == 0,
        "activations": activations,
        "refreshes": refreshes,
        "refresh_overhead": refreshes / activations,
        "window_ns": _DEFAULT_WINDOW_NS,
        "windows": 64 + h % 64,
        "erosion_ns": (h % 5) * 50_000 if cell.get("fault_plan") else 0,
        "span_histograms": {
            "synthetic.tick": _synth_histogram(observations)},
    }


def _synth_histogram(observations) -> dict:
    """A Histogram.as_dict()-shaped record without touching metrics."""
    counts = [0] * (len(_SYNTH_BOUNDARIES) + 1)
    for value in observations:
        index = len(_SYNTH_BOUNDARIES)
        for i, edge in enumerate(_SYNTH_BOUNDARIES):
            if value <= edge:
                index = i
                break
        counts[index] += 1
    return {
        "boundaries": list(_SYNTH_BOUNDARIES),
        "counts": counts,
        "total": len(observations),
        "sum": sum(observations),
    }


_RUNNERS = {
    "scenario": _run_scenario_cell,
    "window": _run_window_cell,
    "synthetic": _run_synthetic_cell,
    "fuzz": _run_fuzz_cell,
}


def run_fleet_cell(cell: Mapping, runner: str, runner_params: Mapping,
                   attempt: int = 1) -> dict:
    """Execute one cell with the named runner (raises on failure)."""
    try:
        execute = _RUNNERS[runner]
    except KeyError:
        raise ConfigError(
            f"unknown cell runner {runner!r}; known: "
            f"{tuple(_RUNNERS)}") from None
    return execute(cell, dict(runner_params or {}), attempt)
