"""The fleet supervisor: work-stealing pool + timeout/retry/quarantine.

The supervisor is the only process that touches the result dir.  It
feeds cell work items into one shared queue (idle workers pull the
next available cell — work-stealing without a scheduler), watches a
per-cell wall-clock deadline from the moment a worker announces the
cell, and finalises every cell exactly once:

* a completed cell is appended to its shard JSONL immediately
  (flush + fsync — the append *is* the checkpoint);
* a failing cell is retried with exponential backoff
  (``backoff_s * 2^(attempt-1)``) up to ``max_attempts``;
* a cell that exhausts its budget is **quarantined**: recorded as a
  structured failure and the fleet keeps going — graceful
  degradation, never sink the run;
* a hung cell is killed (the worker is terminated and replaced) and
  treated as one failed attempt.

Wall-clock time in this module is deliberate and lint-sanctioned: the
supervisor operates in the *host* time domain (timeouts, backoff) and
none of it ever reaches a record — records are pure functions of the
cell, which is what makes a killed fleet resume byte-identically.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_mod
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from .checkpoint import ResultDir
from .runners import run_fleet_cell
from .spec import FleetCell, FleetSpec

__all__ = ["FleetSummary", "resume_fleet", "run_fleet"]

#: Supervisor poll interval while waiting on worker results (seconds).
_POLL_S = 0.02

FleetSummary = Dict[str, object]
_Progress = Optional[Callable[[Mapping], None]]


def _worker_main(spec_dict: dict, work_q, result_q) -> None:
    """Worker loop: pull cells until the ``None`` sentinel arrives."""
    spec = FleetSpec.from_dict(spec_dict)
    pid = os.getpid()
    while True:
        item = work_q.get()
        if item is None:
            break
        cell = item["cell"]
        attempt = item["attempt"]
        result_q.put(("started", pid, cell["cell_id"], attempt, None))
        try:
            payload = run_fleet_cell(
                cell, spec.runner, spec.runner_params, attempt)
        except Exception as exc:  # noqa: BLE001 — the worker boundary
            result_q.put(("failed", pid, cell["cell_id"], attempt, {
                "type": type(exc).__name__,
                "message": str(exc)[:200],
            }))
        else:
            result_q.put(("ok", pid, cell["cell_id"], attempt, payload))


def run_fleet(spec: FleetSpec, out_dir: str, jobs: int = 1,
              progress: _Progress = None) -> FleetSummary:
    """Expand ``spec``, initialise ``out_dir`` and drive every cell."""
    spec.validate_names()
    cells = spec.expand()
    result_dir = ResultDir(out_dir)
    result_dir.initialise(spec, cells)
    return _drive(result_dir, spec, cells, {}, jobs, progress)


def resume_fleet(out_dir: str, jobs: int = 1,
                 progress: _Progress = None) -> FleetSummary:
    """Pick a killed fleet back up from its manifest and shards."""
    result_dir = ResultDir(out_dir)
    cells = result_dir.verify_expansion()
    spec = result_dir.load_spec()
    repaired = result_dir.repair_shards()
    done = result_dir.load_records()
    summary = _drive(result_dir, spec, cells, done, jobs, progress)
    summary["repaired_shard_tails"] = repaired
    return summary


def _drive(result_dir: ResultDir, spec: FleetSpec,
           cells: List[FleetCell], done: Dict[str, dict], jobs: int,
           progress: _Progress) -> FleetSummary:
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    pending = [cell for cell in cells if cell.cell_id not in done]
    summary: FleetSummary = {
        "cells": len(cells),
        "already_done": len(cells) - len(pending),
        "ran": 0,
        "ok": 0,
        "quarantined": 0,
        "retries": 0,
        "timeouts": 0,
        "worker_deaths": 0,
    }
    if not pending:
        result_dir.close()
        return summary
    with result_dir:
        _Supervisor(result_dir, spec, pending, jobs, progress,
                    summary).run()
    return summary


class _Supervisor:
    """One fleet drive: owns the pool, the deadlines and the ledger."""

    def __init__(self, result_dir: ResultDir, spec: FleetSpec,
                 pending: List[FleetCell], jobs: int,
                 progress: _Progress, summary: FleetSummary) -> None:
        self.result_dir = result_dir
        self.spec = spec
        self.spec_dict = spec.to_dict()
        self.progress = progress
        self.summary = summary
        self.cells = {cell.cell_id: cell for cell in pending}
        self.outstanding = len(pending)
        self.finalized: set = set()
        #: attempts already *dispatched* per cell id.
        self.attempts: Dict[str, int] = {}
        #: pid -> (cell_id, attempt, wall deadline).
        self.in_flight: Dict[int, Tuple[str, int, float]] = {}
        #: (due, sequence, cell_id) retry heap.
        self.retries: List[Tuple[float, int, str]] = []
        self._retry_seq = 0
        self.jobs = max(1, min(jobs, len(pending)))
        ctx = multiprocessing.get_context()
        self.work_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._ctx = ctx

    # ----------------------------------------------------------- control
    def run(self) -> None:
        for cell in self.cells.values():
            self._dispatch(cell.cell_id)
        for _ in range(self.jobs):
            self._spawn_worker()
        try:
            while self.outstanding > 0:
                self._pump_retries()
                self._pump_results()
                self._reap_timeouts()
                self._reap_dead_workers()
        finally:
            self._shutdown()

    def _spawn_worker(self) -> None:
        worker = self._ctx.Process(
            target=_worker_main,
            args=(self.spec_dict, self.work_q, self.result_q),
            daemon=True,
        )
        worker.start()
        self.workers[worker.pid] = worker

    def _shutdown(self) -> None:
        for _ in self.workers:
            self.work_q.put(None)
        deadline = time.monotonic() + 5.0
        for worker in self.workers.values():
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        self.work_q.close()
        self.result_q.close()

    # ---------------------------------------------------------- dispatch
    def _dispatch(self, cell_id: str) -> None:
        attempt = self.attempts.get(cell_id, 0) + 1
        self.attempts[cell_id] = attempt
        self.work_q.put({
            "cell": self.cells[cell_id].to_dict(),
            "attempt": attempt,
        })

    def _pump_retries(self) -> None:
        now = time.monotonic()
        while self.retries and self.retries[0][0] <= now:
            _, _, cell_id = heapq.heappop(self.retries)
            if cell_id in self.finalized:
                continue
            self._dispatch(cell_id)

    # ----------------------------------------------------------- results
    def _pump_results(self) -> None:
        try:
            kind, pid, cell_id, attempt, extra = self.result_q.get(
                timeout=_POLL_S)
        except queue_mod.Empty:
            return
        if kind == "started":
            if cell_id in self.finalized:
                # A stale duplicate dispatch (late result raced a
                # retry); let it run, its result will be ignored.
                return
            self.in_flight[pid] = (
                cell_id, attempt,
                time.monotonic() + self.spec.timeout_s)
            return
        self.in_flight.pop(pid, None)
        if cell_id in self.finalized:
            return
        if kind == "ok":
            self._finalize_ok(cell_id, attempt, extra)
        else:
            self._attempt_failed(cell_id, attempt, extra)

    def _reap_timeouts(self) -> None:
        now = time.monotonic()
        expired = [(pid, entry) for pid, entry in self.in_flight.items()
                   if entry[2] <= now]
        for pid, (cell_id, attempt, _) in expired:
            del self.in_flight[pid]
            self._kill_worker(pid)
            self.summary["timeouts"] = int(self.summary["timeouts"]) + 1
            if cell_id not in self.finalized:
                self._attempt_failed(cell_id, attempt, {
                    "type": "CellTimeout",
                    "message": (f"exceeded the {self.spec.timeout_s}s "
                                "per-cell wall-clock budget"),
                })
            self._spawn_worker()

    def _reap_dead_workers(self) -> None:
        dead = [pid for pid, worker in self.workers.items()
                if not worker.is_alive()]
        for pid in dead:
            self.workers.pop(pid).join(timeout=0.1)
            entry = self.in_flight.pop(pid, None)
            self.summary["worker_deaths"] = (
                int(self.summary["worker_deaths"]) + 1)
            if entry is not None:
                cell_id, attempt, _ = entry
                if cell_id not in self.finalized:
                    self._attempt_failed(cell_id, attempt, {
                        "type": "WorkerDied",
                        "message": "worker process died mid-cell",
                    })
            if self.outstanding > 0:
                self._spawn_worker()

    def _kill_worker(self, pid: int) -> None:
        worker = self.workers.pop(pid, None)
        if worker is None:
            return
        worker.terminate()
        worker.join(timeout=2.0)
        if worker.is_alive():
            worker.kill()
            worker.join(timeout=1.0)

    # ---------------------------------------------------------- finalise
    def _record_base(self, cell_id: str, attempts: int) -> dict:
        cell = self.cells[cell_id]
        return {
            "cell_id": cell.cell_id,
            "index": cell.index,
            "shard": cell.shard,
            "scenario": cell.scenario,
            "seed": cell.seed,
            "defense": cell.defense,
            "attempts": attempts,
        }

    def _finalize_ok(self, cell_id: str, attempt: int,
                     payload: Mapping) -> None:
        record = self._record_base(cell_id, attempt)
        record["status"] = "ok"
        record["payload"] = payload
        self._finalize(cell_id, record)
        self.summary["ok"] = int(self.summary["ok"]) + 1

    def _attempt_failed(self, cell_id: str, attempt: int,
                        error: Mapping) -> None:
        if attempt < self.spec.max_attempts:
            self.summary["retries"] = int(self.summary["retries"]) + 1
            delay = self.spec.backoff_s * (2 ** (attempt - 1))
            self._retry_seq += 1
            heapq.heappush(
                self.retries,
                (time.monotonic() + delay, self._retry_seq, cell_id))
            self._emit({"event": "retry", "cell_id": cell_id,
                        "attempt": attempt, "error": dict(error),
                        "delay_s": delay})
            return
        record = self._record_base(cell_id, attempt)
        record["status"] = "quarantined"
        record["error"] = dict(error)
        self._finalize(cell_id, record)
        self.summary["quarantined"] = (
            int(self.summary["quarantined"]) + 1)

    def _finalize(self, cell_id: str, record: dict) -> None:
        self.result_dir.append_record(record)
        self.finalized.add(cell_id)
        self.outstanding -= 1
        self.summary["ran"] = int(self.summary["ran"]) + 1
        self._emit({"event": record["status"], "cell_id": cell_id,
                    "attempts": record["attempts"],
                    "done": len(self.finalized),
                    "total": len(self.cells)})

    def _emit(self, event: Mapping) -> None:
        if self.progress is not None:
            self.progress(event)
