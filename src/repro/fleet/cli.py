"""``repro-fleet``: run/resume/status/report for fleet sweeps.

Examples::

    # 3 patterns x 7 defenses x 25 seeds = 525 window cells
    repro-fleet run --out results/fleet \\
        --runner window --scenarios one_sided double_sided many_sided \\
        --defenses vanilla chiptrr softtrr para misra_gries ptmp dapper \\
        --seeds-range 1 25 --jobs 8

    # killed mid-run?  pick it back up:
    repro-fleet resume results/fleet --jobs 8

    repro-fleet status results/fleet --check       # complete?
    repro-fleet report results/fleet --out fleet_report.json

A spec can also travel as JSON (``--spec fleet.json``), which is the
only way to put fault plans with full per-spec control on the fourth
axis; ``--fault-sites`` covers the common single-site case inline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Mapping, Optional

from .. import cli_common
from ..errors import ConfigError, ReproError
from .checkpoint import ResultDir
from .report import build_report, fleet_status, render_report
from .spec import CELL_RUNNERS, FleetSpec
from .supervisor import resume_fleet, run_fleet

__all__ = ["main"]

#: Probability for ``--fault-sites`` single-site plans (matches the
#: chaos harness default intensity).
_FAULT_SITE_PROBABILITY = 0.1


def _build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        prog="repro-fleet",
        description=("Sharded, checkpointed, crash-tolerant experiment "
                     "fleets over the scenario runner."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="expand a fleet spec and run every cell")
    run.add_argument(
        "--spec", metavar="PATH",
        help="fleet spec JSON (axes + knobs); CLI flags below override "
             "nothing when --spec is given")
    run.add_argument(
        "--scenarios", nargs="*", default=[],
        help="scenarios axis (registered scenario names, window "
             "patterns, or synthetic cell names — per --runner)")
    run.add_argument(
        "--group", action="append", default=[],
        help="add every scenario of a registered group (repeatable; "
             "scenario runner only)")
    run.add_argument(
        "--seeds", nargs="*", type=int, default=[],
        help="seeds axis (machine/workload seeds)")
    run.add_argument(
        "--seeds-range", nargs=2, type=int, metavar=("FIRST", "LAST"),
        help="seeds axis as an inclusive integer range")
    cli_common.add_defenses_option(
        run,
        help_text="defenses axis (registry names; params scale to the "
                  "machine inside the runner)")
    run.add_argument(
        "--fault-sites", nargs="*", default=[],
        help="fault-plan axis: one single-site plan per named site at "
             f"probability {_FAULT_SITE_PROBABILITY}")
    run.add_argument(
        "--runner", choices=list(CELL_RUNNERS), default="scenario",
        help="cell runner (default scenario)")
    run.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard count for the result dir (default 4)")
    run.add_argument(
        "--timeout", type=float, default=120.0, metavar="S",
        help="per-cell wall-clock timeout in seconds (default 120)")
    run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts before a cell is quarantined (default 3)")
    run.add_argument(
        "--backoff", type=float, default=0.5, metavar="S",
        help="retry backoff base in seconds, doubling per attempt "
             "(default 0.5)")
    cli_common.add_jobs_option(run)
    cli_common.add_json_option(run)
    cli_common.add_out_option(
        run, help_text="the experiment result dir (required)")

    resume = sub.add_parser(
        "resume", help="pick a killed fleet back up from its manifest")
    resume.add_argument("result_dir", help="the experiment result dir")
    cli_common.add_jobs_option(resume)
    cli_common.add_json_option(resume)

    status = sub.add_parser(
        "status", help="progress + integrity digest for a result dir")
    status.add_argument("result_dir", help="the experiment result dir")
    cli_common.add_json_option(status)
    cli_common.add_check_option(
        status,
        help_text="exit non-zero unless every cell is accounted for "
                  "(completed or quarantined) — the CI gate")

    report = sub.add_parser(
        "report", help="build the aggregate report (canonical JSON)")
    report.add_argument("result_dir", help="the experiment result dir")
    cli_common.add_json_option(report)
    cli_common.add_out_option(
        report,
        help_text="also write report.json-style output to PATH "
                  "(default: <result_dir>/report.json)")
    return parser


def _spec_from_args(args: argparse.Namespace) -> FleetSpec:
    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read fleet spec {args.spec}: {exc}")
        return FleetSpec.from_dict(payload)
    scenarios = list(args.scenarios)
    for group in args.group:
        from ..scenarios.registry import scenario_group

        scenarios.extend(spec.name for spec in scenario_group(group))
    if not scenarios:
        raise ConfigError(
            "nothing to run: give --scenarios/--group or --spec")
    seeds = list(args.seeds)
    if args.seeds_range:
        first, last = args.seeds_range
        if last < first:
            raise ConfigError("--seeds-range LAST must be >= FIRST")
        seeds.extend(range(first, last + 1))
    fault_plans: List[Optional[Mapping]] = []
    if args.fault_sites:
        from ..faults import FAULT_SITES, SITE_MODES

        fault_plans.append(None)  # keep an unfaulted baseline point
        for site in args.fault_sites:
            if site not in FAULT_SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; known: {FAULT_SITES}")
            fault_plans.append({"specs": [{
                "site": site,
                "mode": SITE_MODES[site][0],
                "probability": _FAULT_SITE_PROBABILITY,
            }], "seed": 0})
    return FleetSpec(
        scenarios=tuple(scenarios),
        seeds=tuple(seeds),
        defenses=tuple(args.defenses),
        fault_plans=tuple(fault_plans),
        runner=args.runner,
        shards=args.shards,
        timeout_s=args.timeout,
        max_attempts=args.max_attempts,
        backoff_s=args.backoff,
    )


def _progress_printer(json_mode: bool):
    if json_mode:
        return None

    def emit(event: Mapping) -> None:
        if event["event"] in ("ok", "quarantined"):
            print(f"[{event['done']}/{event['total']}] "
                  f"{event['cell_id']} {event['event']} "
                  f"(attempts={event['attempts']})", file=sys.stderr)
        elif event["event"] == "retry":
            error = event["error"]
            print(f"retry {event['cell_id']} attempt {event['attempt']} "
                  f"failed ({error['type']}); backing off "
                  f"{event['delay_s']:.2f}s", file=sys.stderr)

    return emit


def _print_summary(summary: Mapping, result_dir: str,
                   json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(dict(summary, result_dir=result_dir),
                         sort_keys=True))
    else:
        print(f"fleet: {summary['ok']} ok, "
              f"{summary['quarantined']} quarantined, "
              f"{summary['already_done']} already done, "
              f"{summary['retries']} retries, "
              f"{summary['timeouts']} timeouts -> {result_dir}")


def _cmd_run(args: argparse.Namespace) -> int:
    if not args.out:
        print("repro-fleet run: --out RESULT_DIR is required",
              file=sys.stderr)
        return cli_common.EXIT_USAGE
    if args.jobs < 1:
        raise ConfigError("--jobs must be >= 1")
    spec = _spec_from_args(args)
    summary = run_fleet(spec, args.out, jobs=args.jobs,
                        progress=_progress_printer(args.json))
    _print_summary(summary, args.out, args.json)
    return cli_common.EXIT_OK


def _cmd_resume(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise ConfigError("--jobs must be >= 1")
    summary = resume_fleet(args.result_dir, jobs=args.jobs,
                           progress=_progress_printer(args.json))
    _print_summary(summary, args.result_dir, args.json)
    return cli_common.EXIT_OK


def _cmd_status(args: argparse.Namespace) -> int:
    status = fleet_status(ResultDir(args.result_dir))
    if args.json:
        print(json.dumps(status, sort_keys=True, indent=2))
    else:
        print(f"cells: {status['cells']}  ok: {status['ok']}  "
              f"quarantined: {status['quarantined']}  "
              f"remaining: {status['remaining']}")
        for shard, entry in sorted(status["shards"].items()):
            print(f"  shard {shard}: {entry['done']}/{entry['cells']}")
        if status["torn_lines"] or status["duplicate_records"]:
            print(f"  integrity: {status['torn_lines']} torn lines, "
                  f"{status['duplicate_records']} duplicate records "
                  "(tolerated)")
    if args.check and not status["complete"]:
        print(f"repro-fleet: CHECK FAILED: {status['remaining']} of "
              f"{status['cells']} cells not yet accounted for",
              file=sys.stderr)
        return cli_common.EXIT_CHECK_FAILED
    return cli_common.EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    result_dir = ResultDir(args.result_dir)
    report = build_report(result_dir)
    if args.out:
        cli_common.atomic_write_text(
            args.out,
            json.dumps(report, sort_keys=True, indent=2) + "\n")
        destination = args.out
    else:
        destination = result_dir.write_report(report)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(render_report(report))
        print(f"[report -> {destination}]")
    return cli_common.EXIT_OK


_COMMANDS = {
    "run": _cmd_run,
    "resume": _cmd_resume,
    "status": _cmd_status,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"repro-fleet: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
