"""Aggregate fleet report: one canonical JSON digest per result dir.

The report is a pure function of the manifest and the completed-cell
records — records carry no wall-clock data and the aggregation walks
cells in manifest order — so an interrupted-then-resumed fleet renders
a report byte-identical to an uninterrupted run's (the fleet's
determinism bar, enforced by ``tests/fleet``).

Four sections:

* ``fleet`` — totals: completed/ok/quarantined/missing cells and the
  attempts histogram (how hard the retry policy had to work);
* ``defenses`` — per-defense flip rates, protection rate, refresh
  overhead (actuator refreshes per activation) and protection-window
  coverage/erosion, from whichever payload fields each cell reports;
* ``span_percentiles`` — p50/p99 tick cost per span name, from the
  merged fixed-bucket span histograms (upper-bucket-edge estimates;
  ``null`` when the quantile lands in the overflow bucket);
* ``failures`` — the quarantine ledger: every cell that exhausted its
  retry budget, with its structured error.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from .checkpoint import ResultDir

__all__ = ["build_report", "fleet_status", "render_report"]

#: Payload keys that count as "bit flips observed", in priority order
#: (different cell kinds report different flip metrics).
_FLIP_KEYS = ("flip_events", "l1pt_flip_events", "flip_events_in_pts")


def _flips_of(payload: Mapping) -> Optional[int]:
    for key in _FLIP_KEYS:
        value = payload.get(key)
        if isinstance(value, int):
            return value
    return None


def _protected_of(payload: Mapping) -> Optional[bool]:
    value = payload.get("protected")
    if isinstance(value, bool):
        return value
    verdict = payload.get("verdict")
    if isinstance(verdict, str):
        return verdict == "blocked"
    return None


def _defense_of(record: Mapping) -> str:
    payload = record.get("payload") or {}
    defense = payload.get("defense") or record.get("defense")
    return defense if isinstance(defense, str) else "unknown"


def _merge_histogram(target: Dict[str, object],
                     histogram: Mapping) -> bool:
    """Accumulate one span histogram; False on boundary mismatch."""
    boundaries = list(histogram.get("boundaries") or ())
    counts = list(histogram.get("counts") or ())
    if not boundaries or len(counts) != len(boundaries) + 1:
        return False
    if not target:
        target["boundaries"] = boundaries
        target["counts"] = [0] * len(counts)
        target["total"] = 0
        target["sum"] = 0
    elif target["boundaries"] != boundaries:
        return False
    target["counts"] = [a + b for a, b in zip(target["counts"], counts)]
    target["total"] = int(target["total"]) + int(histogram.get("total", 0))
    target["sum"] = int(target["sum"]) + int(histogram.get("sum", 0))
    return True


def _percentile_ns(boundaries: List[int], counts: List[int],
                   total: int, quantile: float) -> Optional[int]:
    """Upper-bucket-edge quantile estimate (None in overflow bucket)."""
    if total <= 0:
        return None
    need = quantile * total
    cumulative = 0
    for edge, count in zip(boundaries, counts):
        cumulative += count
        if cumulative >= need:
            return edge
    return None


def build_report(result_dir: ResultDir) -> dict:
    """The aggregate report dict (canonical, JSON-stable)."""
    manifest = result_dir.load_manifest()
    records = result_dir.load_records()
    cells = manifest["cells"]

    attempts_histogram: Dict[str, int] = {}
    defenses: Dict[str, dict] = {}
    span_accumulators: Dict[str, Dict[str, object]] = {}
    span_skipped = 0
    failures: List[dict] = []
    missing: List[str] = []
    ok_cells = 0
    quarantined = 0

    for cell in cells:
        record = records.get(cell["cell_id"])
        if record is None:
            missing.append(cell["cell_id"])
            continue
        attempts = str(record.get("attempts", 1))
        attempts_histogram[attempts] = (
            attempts_histogram.get(attempts, 0) + 1)
        if record.get("status") == "quarantined":
            quarantined += 1
            failures.append({
                "cell_id": cell["cell_id"],
                "index": cell["index"],
                "scenario": cell["scenario"],
                "seed": cell["seed"],
                "defense": cell["defense"],
                "attempts": record.get("attempts"),
                "error": record.get("error"),
            })
            continue
        ok_cells += 1
        payload = record.get("payload") or {}
        entry = defenses.setdefault(_defense_of(record), {
            "cells": 0,
            "flip_cells": 0,
            "flip_events": 0,
            "flip_metric_cells": 0,
            "protected_cells": 0,
            "protection_metric_cells": 0,
            "refreshes": 0,
            "activations": 0,
            "windows": 0,
            "erosion_ns": 0,
        })
        entry["cells"] += 1
        flips = _flips_of(payload)
        if flips is not None:
            entry["flip_metric_cells"] += 1
            entry["flip_events"] += flips
            entry["flip_cells"] += int(flips > 0)
        protected = _protected_of(payload)
        if protected is not None:
            entry["protection_metric_cells"] += 1
            entry["protected_cells"] += int(protected)
        for key in ("refreshes", "activations", "windows", "erosion_ns"):
            value = payload.get(key)
            if isinstance(value, int):
                entry[key] += value
        histograms = payload.get("span_histograms") or {}
        if isinstance(histograms, Mapping):
            for name in sorted(histograms):
                target = span_accumulators.setdefault(name, {})
                if not _merge_histogram(target, histograms[name]):
                    span_skipped += 1

    for entry in defenses.values():
        entry["flip_rate"] = (
            entry["flip_cells"] / entry["flip_metric_cells"]
            if entry["flip_metric_cells"] else None)
        entry["protection_rate"] = (
            entry["protected_cells"] / entry["protection_metric_cells"]
            if entry["protection_metric_cells"] else None)
        entry["refresh_overhead"] = (
            entry["refreshes"] / entry["activations"]
            if entry["activations"] else None)
        entry["erosion_per_window_ns"] = (
            entry["erosion_ns"] / entry["windows"]
            if entry["windows"] else None)

    span_percentiles: Dict[str, dict] = {}
    for name, accumulator in sorted(span_accumulators.items()):
        if not accumulator:
            continue
        boundaries = accumulator["boundaries"]
        counts = accumulator["counts"]
        total = int(accumulator["total"])
        span_percentiles[name] = {
            "count": total,
            "sum_ns": int(accumulator["sum"]),
            "p50_ns": _percentile_ns(boundaries, counts, total, 0.50),
            "p99_ns": _percentile_ns(boundaries, counts, total, 0.99),
        }

    return {
        "spec": manifest["spec"],
        "fleet": {
            "cells": len(cells),
            "completed": ok_cells + quarantined,
            "ok": ok_cells,
            "quarantined": quarantined,
            "missing": len(missing),
            "missing_cell_ids": missing,
            "attempts_histogram": attempts_histogram,
        },
        "defenses": defenses,
        "span_percentiles": span_percentiles,
        "span_histograms_skipped": span_skipped,
        "failures": failures,
    }


def fleet_status(result_dir: ResultDir) -> dict:
    """Progress + integrity digest for ``repro-fleet status``.

    Unlike the report this includes resume-dependent forensics (torn
    lines, duplicate records, per-shard progress) — it describes *this
    result dir*, not the experiment, so it is not byte-stable across
    kill/resume.
    """
    manifest = result_dir.load_manifest()
    scan = result_dir.scan()
    records = scan["records"]
    cells = manifest["cells"]
    per_shard: Dict[str, Dict[str, int]] = {}
    ok_cells = 0
    quarantined = 0
    for cell in cells:
        shard = f"{cell['shard']:03d}"
        entry = per_shard.setdefault(shard, {"cells": 0, "done": 0})
        entry["cells"] += 1
        record = records.get(cell["cell_id"])
        if record is None:
            continue
        entry["done"] += 1
        if record.get("status") == "quarantined":
            quarantined += 1
        else:
            ok_cells += 1
    remaining = len(cells) - ok_cells - quarantined
    return {
        "cells": len(cells),
        "ok": ok_cells,
        "quarantined": quarantined,
        "remaining": remaining,
        "complete": remaining == 0,
        "torn_lines": scan["torn_lines"],
        "duplicate_records": scan["duplicates"],
        "shards": per_shard,
        "runner": manifest["spec"]["runner"],
    }


def render_report(report: Mapping) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    fleet = report["fleet"]
    lines = [
        f"fleet: {fleet['ok']}/{fleet['cells']} cells ok, "
        f"{fleet['quarantined']} quarantined, "
        f"{fleet['missing']} missing",
        f"attempts histogram: {fleet['attempts_histogram']}",
    ]
    for defense, entry in sorted(report["defenses"].items()):
        rate = entry["protection_rate"]
        overhead = entry["refresh_overhead"]
        lines.append(
            f"  {defense:14s} cells={entry['cells']:4d} "
            f"flips={entry['flip_events']:6d} "
            f"protection={'n/a' if rate is None else f'{rate:.2f}'} "
            f"refresh_overhead="
            f"{'n/a' if overhead is None else f'{overhead:.4f}'} "
            f"windows={entry['windows']}")
    for name, entry in sorted(report["span_percentiles"].items()):
        lines.append(
            f"  span {name}: count={entry['count']} "
            f"p50<={entry['p50_ns']} ns p99<={entry['p99_ns']} ns")
    for failure in report["failures"]:
        error = failure["error"] or {}
        lines.append(
            f"  QUARANTINED {failure['cell_id']} "
            f"({failure['scenario']}, seed={failure['seed']}): "
            f"{error.get('type')}: {error.get('message')}")
    return "\n".join(lines)
