"""Fleet data model: the experiment cross product as plain data.

A :class:`FleetSpec` names four axes — scenarios x seeds x defenses x
fault plans — plus the cell runner and the supervisor's robustness
knobs (shard count, per-cell timeout, retry budget, backoff).  It
expands deterministically into a stably-ordered list of
:class:`FleetCell` records, each with a content-hashed ``cell_id``:
two processes expanding the same spec agree on every cell, its id and
its shard, which is what makes a killed fleet resumable — the manifest
and the re-expanded spec must name the same work.

Axis semantics per cell runner:

* ``"scenario"`` — the scenarios axis holds registered scenario names
  (:mod:`repro.scenarios.registry`); the defense/seed/fault-plan axes
  override the named spec's fields (seed and fault plan travel through
  ``params`` and are honoured by the scenario runner's machine
  assembly).
* ``"window"`` — the scenarios axis holds hammer pattern names
  (``one_sided``/``double_sided``/``many_sided``/``spray``); each cell
  is a protection-window bench on a fresh machine (flips, refresh
  overhead, windows covered, span histograms).
* ``"synthetic"`` — any names; cells are hash-derived payloads used by
  the fleet's own tests and CI smoke (poison/flaky/hang injection via
  ``runner_params``).
* ``"fuzz"`` — the scenarios axis holds fuzz-point names
  (``point-0``, ``point-1``, ...); each cell regenerates that point of
  the seeded pattern-fuzz campaign (:mod:`repro.patterns.fuzz`) from
  its index and runs it against the cell's defense — the campaign's
  sampling seed travels in ``runner_params["fuzz_seed"]``, while the
  seed axis varies the machine under the point.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "CELL_RUNNERS",
    "FleetCell",
    "FleetSpec",
    "cell_id_of",
    "expand_cells",
    "shard_of",
]

#: Cell runners the fleet supervisor knows how to drive
#: (implementations live in :mod:`repro.fleet.runners`).
CELL_RUNNERS = ("scenario", "window", "synthetic", "fuzz")


def _canonical(payload) -> str:
    """Canonical JSON — the hashing and comparison form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cell_id_of(scenario: str, seed: Optional[int],
               defense: Optional[str], defense_params: Mapping,
               fault_plan: Optional[Mapping]) -> str:
    """Content-hashed cell identity (stable across processes/runs)."""
    digest = hashlib.sha256(_canonical({
        "scenario": scenario,
        "seed": seed,
        "defense": defense,
        "defense_params": dict(defense_params or {}),
        "fault_plan": dict(fault_plan) if fault_plan else None,
    }).encode("utf-8")).hexdigest()
    return digest[:16]


def shard_of(cell_id: str, shards: int) -> int:
    """Deterministic shard assignment by cell id."""
    if shards < 1:
        raise ConfigError("shards must be >= 1")
    return int(cell_id, 16) % shards


@dataclass(frozen=True)
class FleetCell:
    """One expanded experiment cell (a point of the cross product)."""

    index: int
    cell_id: str
    scenario: str
    seed: Optional[int]
    defense: Optional[str]
    defense_params: Mapping
    fault_plan: Optional[Mapping]
    shard: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "defense_params",
                           dict(self.defense_params or {}))
        if self.fault_plan is not None:
            object.__setattr__(self, "fault_plan", dict(self.fault_plan))

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-stable; the manifest/queue format)."""
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "defense": self.defense,
            "defense_params": dict(self.defense_params),
            "fault_plan": (dict(self.fault_plan)
                           if self.fault_plan else None),
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FleetCell":
        return cls(**{key: payload[key] for key in (
            "index", "cell_id", "scenario", "seed", "defense",
            "defense_params", "fault_plan", "shard")})

    def label(self) -> str:
        """Short human-readable tag for logs and the failure ledger."""
        parts = [self.scenario]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.defense is not None:
            parts.append(self.defense)
        if self.fault_plan:
            parts.append("faulted")
        return " ".join(parts)


def _coerce_defense(entry) -> Dict[str, object]:
    """A defenses-axis entry as ``{"name":..., "params": {...}}``."""
    if entry is None:
        return {"name": None, "params": {}}
    if isinstance(entry, str):
        return {"name": entry, "params": {}}
    if isinstance(entry, Mapping):
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigError(
                f"defense axis entry {entry!r} needs a 'name' string")
        return {"name": name, "params": dict(entry.get("params", {}))}
    raise ConfigError(
        f"cannot read a defense axis entry from {type(entry).__name__}")


def _coerce_fault_plan(entry) -> Optional[Dict[str, object]]:
    """A fault-plans-axis entry as a FaultPlan dict (or ``None``)."""
    if entry is None:
        return None
    from ..faults import FaultPlan

    return FaultPlan.coerce(entry).to_dict()


@dataclass(frozen=True)
class FleetSpec:
    """The whole fleet as data: axes + runner + robustness knobs.

    ``scenarios`` is the only mandatory axis; an empty ``seeds`` /
    ``defenses`` / ``fault_plans`` axis contributes a single neutral
    point (``None`` — keep the scenario's own seed/defense, no fault
    plan), so the expansion is always the full cross product.
    """

    scenarios: Tuple[str, ...]
    seeds: Tuple[Optional[int], ...] = ()
    defenses: Tuple[Mapping, ...] = ()
    fault_plans: Tuple[Optional[Mapping], ...] = ()
    runner: str = "scenario"
    runner_params: Mapping = field(default_factory=dict)
    shards: int = 4
    timeout_s: float = 120.0
    max_attempts: int = 3
    backoff_s: float = 0.5

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigError("a fleet needs at least one scenario")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(
            self, "seeds",
            tuple(None if seed is None else int(seed)
                  for seed in self.seeds))
        object.__setattr__(
            self, "defenses",
            tuple(_coerce_defense(entry) for entry in self.defenses))
        object.__setattr__(
            self, "fault_plans",
            tuple(_coerce_fault_plan(entry) for entry in self.fault_plans))
        object.__setattr__(self, "runner_params", dict(self.runner_params))
        if self.runner not in CELL_RUNNERS:
            raise ConfigError(
                f"unknown cell runner {self.runner!r}; known: "
                f"{CELL_RUNNERS}")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ConfigError("backoff_s must be >= 0")

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-stable; stored in the manifest)."""
        return {
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "defenses": [dict(entry) for entry in self.defenses],
            "fault_plans": [dict(plan) if plan else None
                            for plan in self.fault_plans],
            "runner": self.runner,
            "runner_params": dict(self.runner_params),
            "shards": self.shards,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FleetSpec":
        known = {f: payload[f] for f in (
            "scenarios", "seeds", "defenses", "fault_plans", "runner",
            "runner_params", "shards", "timeout_s", "max_attempts",
            "backoff_s") if f in payload}
        if "scenarios" not in known:
            raise ConfigError("fleet spec needs a 'scenarios' axis")
        return cls(**known)

    def validate_names(self) -> None:
        """Check the scenarios axis against the runner's namespace."""
        if self.runner == "scenario":
            from ..scenarios.registry import scenario

            for name in self.scenarios:
                scenario(name)  # raises ConfigError on unknown names
        elif self.runner == "window":
            from .runners import WINDOW_PATTERNS

            for name in self.scenarios:
                if name not in WINDOW_PATTERNS:
                    raise ConfigError(
                        f"unknown window pattern {name!r}; known: "
                        f"{WINDOW_PATTERNS}")
        elif self.runner == "fuzz":
            from .runners import fuzz_point_index

            for name in self.scenarios:
                fuzz_point_index(name)  # raises ConfigError on bad names

    def expand(self) -> List[FleetCell]:
        """The deterministic, stably-ordered cell list."""
        return expand_cells(self)


def expand_cells(spec: FleetSpec) -> List[FleetCell]:
    """Cross the axes into cells: scenario-major, stable order.

    Empty optional axes contribute one neutral point each, so the cell
    count is ``len(scenarios) x max(1, len(seeds)) x
    max(1, len(defenses)) x max(1, len(fault_plans))``.
    """
    seeds: Sequence[Optional[int]] = spec.seeds or (None,)
    defenses: Sequence[Optional[Mapping]] = spec.defenses or (None,)
    fault_plans: Sequence[Optional[Mapping]] = spec.fault_plans or (None,)
    cells: List[FleetCell] = []
    seen: Dict[str, str] = {}
    for scenario_name in spec.scenarios:
        for seed in seeds:
            for defense in defenses:
                name = None if defense is None else defense["name"]
                params = {} if defense is None else defense["params"]
                for plan in fault_plans:
                    cell_id = cell_id_of(
                        scenario_name, seed, name, params, plan)
                    if cell_id in seen:
                        raise ConfigError(
                            f"duplicate fleet cell {cell_id} "
                            f"({seen[cell_id]}): axes repeat a point")
                    seen[cell_id] = scenario_name
                    cells.append(FleetCell(
                        index=len(cells),
                        cell_id=cell_id,
                        scenario=scenario_name,
                        seed=seed,
                        defense=name,
                        defense_params=params,
                        fault_plan=plan,
                        shard=shard_of(cell_id, spec.shards),
                    ))
    return cells
