"""Sharded, checkpointed, crash-tolerant experiment fleets.

Layers a campaign-scale pipeline over the pure scenario runner: a
:class:`FleetSpec` expands the scenario x seed x defense x fault-plan
cross product into content-hashed cells, a supervisor drives them
across a work-stealing worker pool with per-cell timeouts, bounded
retry and poison-cell quarantine, every completed cell streams to an
append-only per-shard JSONL checkpoint, and a killed fleet resumes
from its manifest with a byte-identical aggregate report (the
``repro-fleet`` CLI).
"""

from .checkpoint import MANIFEST_NAME, REPORT_NAME, ResultDir
from .report import build_report, fleet_status, render_report
from .runners import (
    WINDOW_PATTERNS,
    materialise_scenario,
    run_fleet_cell,
    run_window_cell,
)
from .spec import (
    CELL_RUNNERS,
    FleetCell,
    FleetSpec,
    cell_id_of,
    expand_cells,
    shard_of,
)
from .supervisor import FleetSummary, resume_fleet, run_fleet

__all__ = [
    "CELL_RUNNERS",
    "FleetCell",
    "FleetSpec",
    "FleetSummary",
    "MANIFEST_NAME",
    "REPORT_NAME",
    "ResultDir",
    "WINDOW_PATTERNS",
    "build_report",
    "cell_id_of",
    "expand_cells",
    "fleet_status",
    "materialise_scenario",
    "render_report",
    "resume_fleet",
    "run_fleet",
    "run_fleet_cell",
    "run_window_cell",
    "shard_of",
]
