"""Central seeded randomness for the whole reproduction.

Every stochastic choice in the simulation — which rows carry vulnerable
cells, which cold pages a workload touches, the measurement noise on an
overhead table — must be a pure function of an explicit seed, or A/B
runs stop being comparable and the security evaluation stops being
reproducible.  This module is therefore the only place in ``src/repro``
allowed to import :mod:`random` (lint rule RPR002); everything else
derives its generator here or accepts an injected :class:`Random`.

``derive_rng`` joins its parts with ``":"`` into a string seed, so
``derive_rng("workload", name, seed)`` seeds identically to the
historical ``random.Random(f"workload:{name}:{seed}")`` — threading the
helper through existing call sites changes no behaviour.
"""

from __future__ import annotations

import random

#: Re-export so annotations and injected-generator defaults never need a
#: direct ``import random`` at the call site.
Random = random.Random

__all__ = ["Random", "derive_rng"]


def derive_rng(*parts) -> random.Random:
    """A deterministic generator keyed by ``parts`` joined with ``":"``.

    Parts are stringified, so mixing names and integers is fine:
    ``derive_rng("cells", seed, bank, row)``.  Equal parts always give an
    identical stream; distinct tags give independent streams.
    """
    if not parts:
        raise ValueError("derive_rng needs at least one seed part")
    return random.Random(":".join(str(part) for part in parts))
