"""``repro-perfbench``: wall-clock throughput of the simulation stack.

Three benchmarks, each timing the same simulated work through the
scalar and the batched execution paths:

* **hammer** — raw DRAM activation throughput on the ``thinkpad_x230``
  profile: a scalar ``DramModule.hammer`` loop vs one
  ``DramModule.hammer_batch`` call, for a one-location stream and a
  double-sided (alternating-aggressor) stream — on the default dense
  (array-backed) disturbance core, plus the same two cases pinned to
  the dict core for comparison (``*_dict`` labels).  The acceptance bar
  for the dense core is >= 10M act/s batched one-location with
  double-sided within 2x of it.
* **workload** — slices/second of a memory-bound
  :class:`~repro.workloads.base.SliceWorkload` (``hot_touch_repeat`` >
  1), scalar vs the :meth:`Kernel.user_access_run` replay path.
* **table5** — end-to-end wall runtime of the Table V robustness
  evaluation (the heaviest whole-stack consumer in the repo).

Every scalar/batched pair is run on freshly built machines and
cross-checked on its simulated observables (clock, activations, flips)
— a cheap guard; the exhaustive byte-level guarantee lives in
``tests/perf/test_differential_equivalence.py`` and the generative
harness.  Results are printed and written to ``BENCH_perf.json`` (see
README's Performance section).

``--check`` turns the run into a CI perf-regression gate: each hammer
case's batched act/s is compared against the committed baseline
snapshot (``benchmarks/perf_baseline.json``, a ``--quick`` run) and the
tool exits non-zero if any case regressed by more than 20 %.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from .. import cli_common
from ..config import machine
from ..machine import Machine
from ..workloads.base import SliceWorkload, WorkloadProfile

#: Machine profile the microbenchmarks run on (DDR3, no ChipTRR — the
#: pure disturbance-engine cost, matching the paper's oldest testbed).
BENCH_MACHINE = "thinkpad_x230"

#: Committed baseline snapshot the ``--check`` gate compares against.
DEFAULT_BASELINE = "benchmarks/perf_baseline.json"

#: A case fails the gate below this fraction of its baseline act/s.
REGRESSION_FLOOR = 0.8


def _timed(fn: Callable[[], object]) -> float:
    """Wall seconds one call takes (bench code: RPR001-sanctioned)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _dram_observables(dram) -> tuple:
    return (
        dram.clock.now_ns,
        dram.total_activations,
        len(dram.flip_log),
        dram.applied_flips,
        dram.engine.total_deposits,
    )


def _bench_spec(dense: Optional[bool] = None):
    spec = machine(BENCH_MACHINE)
    if dense is not None:
        spec = dataclasses.replace(spec, dense=dense)
    return spec


def _hammer_case(label: str, items, activations: int,
                 dense: Optional[bool] = None) -> Dict[str, object]:
    """Time one scalar-loop vs one batched replay of ``items``."""
    scalar_dram = Machine.from_parts(_bench_spec(dense)).dram
    batched_dram = Machine.from_parts(_bench_spec(dense)).dram

    def scalar() -> None:
        for paddr, count in items:
            scalar_dram.hammer(paddr, count)

    scalar_s = _timed(scalar)
    batched_s = _timed(lambda: batched_dram.hammer_batch(items))
    if _dram_observables(scalar_dram) != _dram_observables(batched_dram):
        raise AssertionError(
            f"hammer[{label}]: batched run diverged from scalar run; "
            "the differential suite should be failing too"
        )
    return {
        "label": label,
        "activations": activations,
        "scalar_seconds": round(scalar_s, 4),
        "batched_seconds": round(batched_s, 4),
        "scalar_act_per_s": round(activations / scalar_s),
        "batched_act_per_s": round(activations / batched_s),
        "speedup": round(scalar_s / batched_s, 2),
    }


def bench_hammer(quick: bool) -> Dict[str, object]:
    """Activation throughput, one-location and double-sided streams."""
    n = 15_000 if quick else 60_000
    dram = Machine.from_parts(machine(BENCH_MACHINE)).dram
    one_loc = dram.mapping.dram_to_phys(0, 30, 0)
    left = dram.mapping.dram_to_phys(0, 29, 0)
    right = dram.mapping.dram_to_phys(0, 31, 0)
    one_loc_items = [(one_loc, 1)] * n
    double_items = [(left, 1), (right, 1)] * (n // 2)
    cases = [
        _hammer_case("one_location", one_loc_items, n, dense=True),
        _hammer_case("double_sided", double_items, n, dense=True),
        # Dict-core comparison points (informational; the gate tracks
        # whichever labels the baseline carries).
        _hammer_case("one_location_dict", one_loc_items, n, dense=False),
        _hammer_case("double_sided_dict", double_items, n, dense=False),
    ]
    return {"machine": BENCH_MACHINE, "cases": cases}


def bench_workload(quick: bool) -> Dict[str, object]:
    """Slices/second of a memory-bound workload, scalar vs replay."""
    profile = WorkloadProfile(
        name="perfbench-memlat",
        duration_ms=20 if quick else 60,
        hot_pages=12,
        cold_pool_pages=64,
        cold_touches=4,
        write_fraction=0.3,
        hot_touch_repeat=16,
    )
    seconds = {}
    results = {}
    for mode, use_batch in (("scalar", False), ("batched", True)):
        kernel = Machine.from_parts(machine(BENCH_MACHINE)).kernel
        work = SliceWorkload(kernel, profile, seed=1234, use_batch=use_batch)
        seconds[mode] = _timed(lambda: results.__setitem__(mode, work.run()))
    if (results["scalar"].runtime_ns != results["batched"].runtime_ns
            or results["scalar"].touches != results["batched"].touches):
        raise AssertionError(
            "workload: batched run diverged from scalar run; "
            "the differential suite should be failing too"
        )
    return {
        "machine": BENCH_MACHINE,
        "profile": profile.name,
        "slices": profile.duration_ms,
        "hot_touch_repeat": profile.hot_touch_repeat,
        "scalar_seconds": round(seconds["scalar"], 4),
        "batched_seconds": round(seconds["batched"], 4),
        "scalar_slices_per_s": round(
            profile.duration_ms / seconds["scalar"], 1),
        "batched_slices_per_s": round(
            profile.duration_ms / seconds["batched"], 1),
        "speedup": round(seconds["scalar"] / seconds["batched"], 2),
    }


def bench_table5(quick: bool) -> Dict[str, object]:
    """End-to-end wall runtime of the Table V evaluation."""
    from ..analysis.robustness import run_table5

    iterations = 1 if quick else 3
    rows = []
    seconds = _timed(
        lambda: rows.extend(run_table5(iterations=iterations)))
    return {
        "iterations": iterations,
        "rows": len(rows),
        "all_pass": all(r.vanilla and r.delta1 and r.delta6 for r in rows),
        "wall_seconds": round(seconds, 2),
    }


def run_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Run the whole suite; returns the ``BENCH_perf.json`` payload."""
    return {
        "bench": "repro-perfbench",
        "quick": quick,
        "hammer": bench_hammer(quick),
        "workload": bench_workload(quick),
        "table5": bench_table5(quick),
    }


def _render(payload: Dict[str, object]) -> str:
    lines = [f"repro-perfbench ({'quick' if payload['quick'] else 'full'})"]
    for case in payload["hammer"]["cases"]:
        lines.append(
            "  hammer/{label:<18} scalar {scalar_act_per_s:>9,} act/s   "
            "batched {batched_act_per_s:>10,} act/s   {speedup:>6}x"
            .format(**case))
    wl = payload["workload"]
    lines.append(
        "  workload                 scalar {scalar_slices_per_s:>9,} sl/s  "
        "  batched {batched_slices_per_s:>10,} sl/s    {speedup:>6}x"
        .format(**wl))
    t5 = payload["table5"]
    lines.append(
        f"  table5            {t5['rows']} tests x {t5['iterations']} iter "
        f"in {t5['wall_seconds']} s "
        f"({'all pass' if t5['all_pass'] else 'FAILURES'})")
    return "\n".join(lines)


def check_regression(
    payload: Dict[str, object], baseline: Dict[str, object],
    floor: float = REGRESSION_FLOOR,
) -> List[Tuple[str, int, int, bool]]:
    """Gate rows ``(label, current, required, ok)`` per hammer case.

    A case passes while its batched act/s stays at or above ``floor``
    (default 80 %) of the committed baseline's.  Only labels present in
    both payloads are compared, so adding or retiring a case never
    trips the gate by itself.
    """
    current = {case["label"]: case["batched_act_per_s"]
               for case in payload["hammer"]["cases"]}
    rows = []
    for case in baseline["hammer"]["cases"]:
        label = case["label"]
        if label not in current:
            continue
        required = int(floor * case["batched_act_per_s"])
        rows.append((label, current[label], required,
                     current[label] >= required))
    return rows


def main(argv: Optional[list] = None) -> int:
    """CLI entry point (``repro-perfbench``)."""
    parser = cli_common.build_parser(
        prog="repro-perfbench",
        description="Wall-clock throughput of the simulation stack "
                    "(scalar vs batched execution paths).",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer activations/slices/iterations)")
    cli_common.add_out_option(
        parser, default="BENCH_perf.json",
        help_text="output JSON path (default: %(default)s)")
    cli_common.add_check_option(
        parser,
        help_text="gate mode: fail when any hammer case's batched act/s "
                  f"regresses more than {round((1 - REGRESSION_FLOOR) * 100)}"
                  " %% against the baseline snapshot")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help="baseline BENCH_perf.json snapshot for --check "
             "(default: %(default)s)")
    args = parser.parse_args(argv)
    payload = run_benchmarks(quick=args.quick)
    print(_render(payload))
    cli_common.atomic_write_text(
        args.out, json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {args.out}]")
    if not args.check:
        return cli_common.EXIT_OK
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except OSError as error:
        print(f"[check] cannot read baseline {args.baseline}: {error}")
        return cli_common.EXIT_CHECK_FAILED
    failed = False
    for label, got, required, ok in check_regression(payload, baseline):
        verdict = "ok" if ok else "REGRESSED"
        print(f"[check] hammer/{label}: {got:,} act/s "
              f"(floor {required:,}) {verdict}")
        failed = failed or not ok
    return cli_common.EXIT_CHECK_FAILED if failed else cli_common.EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
