"""Host-throughput benchmarks of the simulator itself.

Everything else in the repo measures *simulated* time on
:class:`repro.clock.SimClock`; this package is the one sanctioned home
of wall-clock reads (lint rule RPR001 allows ``repro/bench/``), because
here the host wall time *is* the measurand: how many simulated DRAM
activations, workload slices and full evaluation runs a second of host
CPU buys.  The numbers quantify the payoff of the batched execution
layer (``DramModule.hammer_batch``, ``Mmu.access_run``), whose
*semantic* equivalence to the scalar paths is enforced separately by
``tests/perf/test_differential_equivalence.py``.

Run ``repro-perfbench`` (or ``python -m repro.bench.perf``) to produce
``BENCH_perf.json``; see README's Performance section for how to read
it.  The module is intentionally not imported here so ``python -m``
execution stays warning-free.
"""

__all__: list = []
