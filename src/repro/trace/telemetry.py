"""The Telemetry facade: typed, namespaced access to machine statistics.

The facade is *stateless* — it samples the live machine on every call,
so it needs no snapshot/restore handling of its own and two facades over
the same machine always agree.

    m.telemetry.counter("tlb.misses")          # one int
    m.telemetry.group("dram")                  # {"reads": ..., ...}
    m.telemetry.as_flat_dict()                 # the full behavioural dict

``as_flat_dict()`` returns exactly the behavioural statistics — byte
identical, key for key, to the legacy ``counters()`` dict — and never
any ``trace.*`` material, so trace-on and trace-off runs of the same
inputs compare equal through it (the differential suite relies on
this).  Trace-side metrics (per-site counts, span histograms, buffer
occupancy) are exposed separately via :meth:`trace_metrics` /
:meth:`span_histograms` and are only non-empty when the machine was
built with ``MachineConfig.trace != "off"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = ["Telemetry", "sample_machine"]


def sample_machine(machine) -> Dict[str, int]:
    """Every per-layer behavioural statistic, namespaced ``layer.counter``.

    This is the single source of the registry :class:`Telemetry`
    exposes.  Layers: ``clock``, ``kernel``, ``timers``, ``tlb``,
    ``cache``, ``dram``, ``bank.<i>``, ``engine``, ``trr``,
    ``actuator``, ``accounting``, one ``tracker.<i>.<name>`` group per
    feed subscriber and, when loaded, ``softtrr`` and ``faults.<site>``.
    """
    kernel = machine.kernel
    dram = kernel.dram
    mmu = kernel.mmu
    out: Dict[str, int] = {
        "clock.now_ns": kernel.clock.now_ns,
        "kernel.faults_handled": kernel.faults_handled,
        "kernel.demand_pages": kernel.demand_pages,
        "kernel.forks": kernel.forks,
        "kernel.segfaults": kernel.segfaults,
        "timers.fired": kernel.timers.fired,
        "tlb.hits": mmu.tlb.hits,
        "tlb.misses": mmu.tlb.misses,
        "tlb.invalidations": mmu.tlb.invalidations,
        "cache.hits": mmu.cache.hits,
        "cache.misses": mmu.cache.misses,
        "cache.flushes": mmu.cache.flushes,
        "cache.evictions": mmu.cache.evictions,
        "dram.reads": dram.reads,
        "dram.writes": dram.writes,
        "dram.total_activations": dram.total_activations,
        "dram.applied_flips": dram.applied_flips,
        "dram.flip_events": len(dram.flip_log),
        "engine.total_deposits": dram.engine.total_deposits,
        "engine.total_flip_events": dram.engine.total_flip_events,
        "trr.targeted_refreshes": dram.trr.targeted_refreshes,
        "actuator.refreshes": dram.actuator.refreshes,
    }
    for index, tracker in enumerate(dram.feed.trackers()):
        prefix = f"tracker.{index}.{tracker.name}"
        for key, value in tracker.counters().items():
            out[f"{prefix}.{key}"] = value
        out[f"{prefix}.sram_bits"] = tracker.sram_bits()
    for index in range(dram.geometry.num_banks):
        bank = dram.bank_state(index)
        out[f"bank.{index}.activations"] = bank.activations
        out[f"bank.{index}.hits"] = bank.hits
    for category, ns in kernel.accountant.snapshot().items():
        out[f"accounting.{category}"] = ns
    softtrr = machine.softtrr
    if softtrr is not None:
        for key, value in vars(softtrr.stats()).items():
            out[f"softtrr.{key}"] = value
    injector = machine.fault_injector
    if injector is not None:
        for site, table in injector.counters.items():
            for key, value in table.items():
                out[f"faults.{site}.{key}"] = value
    return out


class Telemetry:
    """Read-side facade over one machine's statistics and trace hub."""

    __slots__ = ("_machine",)

    def __init__(self, machine) -> None:
        self._machine = machine

    # -------------------------------------------------- behavioural side
    def as_flat_dict(self) -> Dict[str, int]:
        """The full behavioural registry (legacy ``counters()`` shape)."""
        return sample_machine(self._machine)

    def counter(self, name: str) -> int:
        """One behavioural statistic by its dotted name."""
        sample = sample_machine(self._machine)
        try:
            return sample[name]
        except KeyError:
            raise KeyError(
                f"unknown telemetry counter {name!r}; see as_flat_dict() "
                "for the registered names") from None

    def group(self, prefix: str) -> Dict[str, int]:
        """All statistics under ``prefix.``, keyed by the suffix.

        ``group("dram")`` returns ``{"reads": ..., "writes": ...}``;
        ``group("faults.timer")`` returns one injection-site table.
        """
        dotted = prefix + "."
        return {name[len(dotted):]: value
                for name, value in sample_machine(self._machine).items()
                if name.startswith(dotted)}

    def registry(self) -> MetricsRegistry:
        """The behavioural sample loaded into a typed registry."""
        registry = MetricsRegistry()
        for name, value in sample_machine(self._machine).items():
            registry.gauge(name).set_gauge(value)
        return registry

    # -------------------------------------------------------- trace side
    @property
    def hub(self):
        """The machine's trace hub, or ``None`` when tracing is off."""
        return getattr(self._machine.kernel, "trace_hub", None)

    def trace_metrics(self) -> Dict[str, int]:
        """Trace-side counters (``site.*``, span summaries), or ``{}``."""
        hub = self.hub
        return hub.as_flat_dict() if hub is not None else {}

    def span_histograms(self) -> Dict[str, Dict[str, object]]:
        """Full span latency histograms keyed by name, or ``{}``."""
        hub = self.hub
        return hub.registry.histograms_dict() if hub is not None else {}

    def trace_sites(self) -> List[str]:
        """Distinct trace sites seen so far, or ``[]``."""
        hub = self.hub
        return hub.site_names() if hub is not None else []

    def events(self) -> List:
        """Buffered trace events (oldest first), or ``[]``."""
        hub = self.hub
        return hub.events() if hub is not None else []
