"""Typed trace events and the bounded ring buffer that records them.

A :class:`TraceEvent` is plain data: a timestamp in *simulated*
nanoseconds (never wall-clock — that is lint rule RPR001 territory), a
site name (``timer.fire``, ``pte.arm``, ``refresh.row`` ...), an event
kind (point event or span begin/end) and a small JSON-serialisable
payload.

:class:`TraceBuffer` is a fixed-capacity ring: when full, the *oldest*
event is overwritten (flight-recorder semantics — the most recent
window survives) and ``dropped`` counts the overwritten events.  The
policy is deterministic: for a given event stream the buffer contents
and drop counter are a pure function of capacity, so trace-enabled runs
replay bit-identically across snapshot/restore and process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from ..errors import ConfigError

__all__ = ["DEFAULT_CAPACITY", "EVENT_KINDS", "TraceBuffer", "TraceEvent"]

#: The three event kinds: point events and span boundaries.
EVENT_KINDS = ("event", "begin", "end")

#: Default ring capacity (events); ~a few MB of plain-data payloads.
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record (plain, deepcopy-safe data)."""

    #: Simulated nanoseconds (``SimClock.now_ns`` at emission).
    ns: int
    #: Dotted site name, e.g. ``refresh.row`` or ``softtrr.tick``.
    site: str
    #: ``event`` (point), ``begin`` or ``end`` (span boundaries).
    kind: str = "event"
    #: Small JSON-serialisable payload (ints / strings only by
    #: convention — exporters rely on it).
    payload: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSONL-ready shape."""
        return {"ns": self.ns, "site": self.site, "kind": self.kind,
                "payload": dict(self.payload)}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`as_dict` (JSONL import)."""
        return cls(ns=int(raw["ns"]), site=str(raw["site"]),
                   kind=str(raw.get("kind", "event")),
                   payload=dict(raw.get("payload", {})))


class TraceBuffer:
    """Bounded ring of :class:`TraceEvent`, overwrite-oldest on overflow."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigError("trace buffer capacity must be positive")
        self.capacity = capacity
        #: Backing store; grows up to ``capacity`` then wraps at ``_head``.
        self._events: List[TraceEvent] = []
        self._head = 0
        #: Events overwritten by the ring (overflow policy accounting).
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        """Record one event, overwriting the oldest when full."""
        if len(self._events) < self.capacity:
            self._events.append(event)
            return
        self._events[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.dropped += 1

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a copy)."""
        return self._events[self._head:] + self._events[:self._head]

    def clear(self) -> None:
        """Empty the ring (the drop counter is reset too)."""
        self._events = []
        self._head = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())
