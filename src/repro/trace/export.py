"""Trace exporters and the protection-window timeline report.

Three output shapes from one recorded event stream:

* **JSONL** — one :class:`TraceEvent` dict per line; lossless, the
  interchange format between ``repro-trace record`` and the other
  subcommands.
* **Chrome ``trace_event``** — loadable in ``chrome://tracing`` /
  Perfetto: point events become instants (``ph: "i"``), span
  boundaries become ``B``/``E`` pairs, timestamps convert from
  simulated ns to the format's microseconds.
* **Timeline report** — the SoftTRR-specific analysis: group
  ``refresh.row`` events into protection windows and resolve, for each
  refreshed L1PT row, the arm→access→refresh chain that triggered it
  (``pte.arm`` → ``pte.disarm``/``tracer.capture`` → ``refresh.bump``
  → ``refresh.row``).  The chain resolution leans on the emission
  order being the synchronous call order — the tracer captures the
  access, then bumps the refresher, which refreshes — so a simple
  most-recent-first scan is exact, not heuristic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .events import TraceEvent

__all__ = [
    "build_timeline",
    "events_to_chrome",
    "read_jsonl",
    "render_timeline",
    "write_chrome",
    "write_jsonl",
]


# ================================================================= JSONL
def write_jsonl(events: List[TraceEvent], path: str) -> int:
    """Write events one-per-line (atomic); returns the event count."""
    from ..cli_common import atomic_write_text

    text = "".join(
        json.dumps(event.as_dict(), sort_keys=True) + "\n"
        for event in events)
    atomic_write_text(path, text)
    return len(events)


def read_jsonl(path: str) -> List[TraceEvent]:
    """Inverse of :func:`write_jsonl` (blank lines ignored)."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# ========================================================== Chrome format
_PHASES = {"event": "i", "begin": "B", "end": "E"}


def events_to_chrome(events: List[TraceEvent]) -> Dict[str, object]:
    """The ``chrome://tracing`` JSON object for an event stream."""
    trace_events: List[Dict[str, object]] = []
    for event in events:
        record: Dict[str, object] = {
            "name": event.site,
            "ph": _PHASES.get(event.kind, "i"),
            # trace_event timestamps are microseconds.
            "ts": event.ns / 1000.0,
            "pid": 0,
            "tid": 0,
            "args": dict(event.payload),
        }
        if record["ph"] == "i":
            record["s"] = "g"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: List[TraceEvent], path: str) -> int:
    """Write the Chrome trace JSON (atomic); returns the event count."""
    from ..cli_common import atomic_write_text

    atomic_write_text(
        path,
        json.dumps(events_to_chrome(events), sort_keys=True) + "\n")
    return len(events)


# ======================================================= timeline report
def build_timeline(events: List[TraceEvent],
                   window_ns: int) -> Dict[str, object]:
    """Per-protection-window arm→access→refresh chains.

    Walks the stream once, tracking the latest ``pte.arm`` per PTE
    physical address and the latest ``tracer.capture``; each
    ``refresh.row`` is attributed to the capture that bumped it (the
    bump and refresh happen synchronously inside the captured fault,
    so "latest capture before the refresh" is the true cause).  A
    refresh with no preceding capture (the watchdog/compensate path)
    yields an incomplete chain.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    arm_by_pte: Dict[int, TraceEvent] = {}
    last_capture: Optional[TraceEvent] = None
    chains: List[Dict[str, object]] = []
    sites: Dict[str, int] = {}
    for event in events:
        sites[event.site] = sites.get(event.site, 0) + 1
        if event.site == "pte.arm":
            arm_by_pte[int(event.payload["pte_paddr"])] = event
        elif event.site == "tracer.capture":
            last_capture = event
        elif event.site == "refresh.row":
            arm: Optional[TraceEvent] = None
            access = last_capture
            if access is not None:
                arm = arm_by_pte.get(int(access.payload["pte_paddr"]))
            chain: Dict[str, object] = {
                "bank": int(event.payload["bank"]),
                "row": int(event.payload["row"]),
                "refresh_ns": event.ns,
                "access_ns": access.ns if access is not None else None,
                "arm_ns": arm.ns if arm is not None else None,
                "complete": arm is not None and access is not None,
            }
            chains.append(chain)
    windows: Dict[int, List[Dict[str, object]]] = {}
    for chain in chains:
        windows.setdefault(chain["refresh_ns"] // window_ns, []).append(chain)
    return {
        "window_ns": window_ns,
        "sites": dict(sorted(sites.items())),
        "distinct_sites": len(sites),
        "refreshes": len(chains),
        "complete_chains": sum(1 for c in chains if c["complete"]),
        "windows": [
            {
                "index": index,
                "start_ns": index * window_ns,
                "end_ns": (index + 1) * window_ns,
                "rows": rows,
            }
            for index, rows in sorted(windows.items())
        ],
    }


def render_timeline(timeline: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`build_timeline` output."""
    lines = [
        f"protection window: {timeline['window_ns']} ns",
        f"distinct event sites: {timeline['distinct_sites']}",
        f"row refreshes: {timeline['refreshes']} "
        f"({timeline['complete_chains']} with full arm→access→refresh "
        "chains)",
    ]
    for window in timeline["windows"]:
        lines.append(
            f"window {window['index']} "
            f"[{window['start_ns']}..{window['end_ns']}) ns:")
        for row in window["rows"]:
            if row["complete"]:
                detail = (f"arm@{row['arm_ns']} → access@{row['access_ns']} "
                          f"→ refresh@{row['refresh_ns']}")
            else:
                detail = f"refresh@{row['refresh_ns']} (no captured access)"
            lines.append(
                f"  bank {row['bank']} row {row['row']}: {detail}")
    return "\n".join(lines)
