"""The TraceHub: one per machine, fan-in point for all instrumentation.

Every instrumented component carries a ``trace`` attribute that is
either ``None`` (tracing off — the emission sites are a single attribute
test, nothing else) or this hub.  The hub timestamps events off the
*simulated* clock, counts every site in its :class:`MetricsRegistry`,
and — depending on level — records point events and span boundaries in
the ring :class:`TraceBuffer`.

Levels (cumulative):

* ``off`` — no hub is built at all; ``component.trace is None``.
* ``metrics`` — per-site counters and span latency histograms only.
* ``events`` — plus point events in the ring buffer.
* ``spans`` — plus begin/end boundary events for spans.

The hub lives at ``kernel.trace_hub`` so a machine deepcopy
(snapshot/restore) carries exactly one hub copy and every component's
``trace`` reference follows it through deepcopy memoization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigError
from .events import DEFAULT_CAPACITY, TraceBuffer, TraceEvent
from .metrics import MetricsRegistry

__all__ = ["LEVELS", "TraceHub"]

#: Valid ``MachineConfig.trace`` levels, least to most verbose.
LEVELS = ("off", "metrics", "events", "spans")


class TraceHub:
    """Fan-in for trace emission: registry + ring buffer + levels."""

    def __init__(self, clock, level: str = "metrics",
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if level not in LEVELS or level == "off":
            raise ConfigError(
                f"trace hub level must be one of {LEVELS[1:]}, got {level!r}")
        self.clock = clock
        self.level = level
        self.registry = MetricsRegistry()
        self.buffer = TraceBuffer(capacity)
        self._events_on = level in ("events", "spans")
        self._spans_on = level == "spans"

    # ------------------------------------------------------------ emission
    def emit(self, site: str, /, **payload: object) -> None:
        """Record one point event at ``site``.

        Always counted (``site.<name>`` counter); buffered only at
        ``events`` level and above.  ``site`` is positional-only so a
        payload may carry its own ``site`` key (the fault injector's
        events do).
        """
        self.registry.counter(f"site.{site}").inc()
        if self._events_on:
            self.buffer.append(
                TraceEvent(self.clock.now_ns, site, "event", payload))

    def span_begin(self, site: str) -> int:
        """Open a span at ``site``; returns the start timestamp."""
        now = self.clock.now_ns
        if self._spans_on:
            self.buffer.append(TraceEvent(now, site, "begin", {}))
        return now

    def span_end(self, site: str, start_ns: int) -> None:
        """Close a span opened by :meth:`span_begin`.

        The latency lands in the ``span.<site>_ns`` histogram at every
        level; the boundary events only at ``spans``.
        """
        now = self.clock.now_ns
        self.registry.histogram(f"span.{site}_ns").observe(now - start_ns)
        if self._spans_on:
            self.buffer.append(
                TraceEvent(now, site, "end", {"dur_ns": now - start_ns}))

    # ------------------------------------------------------------- wiring
    def attach(self, kernel) -> None:
        """Wire this hub into a kernel and its core components.

        Late-loaded modules (SoftTRR) and the fault injector pick the
        hub up from ``kernel.trace_hub`` when they install themselves.
        """
        kernel.trace_hub = self
        kernel.trace = self
        kernel.clock.trace = self
        kernel.timers.trace = self
        kernel.hooks.trace = self
        kernel.mmu.trace = self
        kernel.mmu.tlb.trace = self
        kernel.dram.trace = self

    # ------------------------------------------------------------- queries
    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return self.buffer.events()

    def site_names(self) -> List[str]:
        """Distinct sites seen so far (counter order)."""
        prefix = "site."
        return [name[len(prefix):]
                for name in self.registry.counter_names()
                if name.startswith(prefix)]

    def as_flat_dict(self) -> Dict[str, int]:
        """Trace-side metrics (site counters, span histogram summaries)."""
        out = self.registry.as_flat_dict()
        out["buffer.len"] = len(self.buffer)
        out["buffer.dropped"] = self.buffer.dropped
        return out

    @staticmethod
    def build(clock, level: str,
              capacity: Optional[int] = None) -> "Optional[TraceHub]":
        """Hub for ``level``, or ``None`` when tracing is off."""
        if level == "off":
            return None
        return TraceHub(clock, level, capacity or DEFAULT_CAPACITY)
