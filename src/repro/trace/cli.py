"""``repro-trace``: record, report on, and export machine traces.

Subcommands:

* ``record`` — run the smoke-scale memory-spray attack on the tiny
  machine with SoftTRR loaded and tracing enabled, and write the event
  stream as JSONL.  This is the canonical way to produce a trace the
  other subcommands (and CI's ``trace-smoke`` job) consume.
* ``report`` — the protection-window timeline: per window, every
  refreshed L1PT row with its arm→access→refresh chain.  ``--check``
  gates on the acceptance bar (enough distinct sites, every refresh
  chain complete).
* ``export`` — convert a JSONL trace to Chrome ``trace_event`` JSON
  (loadable in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional

from .. import cli_common
from ..errors import ReproError
from .events import DEFAULT_CAPACITY
from .export import (
    build_timeline,
    read_jsonl,
    render_timeline,
    write_chrome,
    write_jsonl,
)
from .hub import LEVELS

__all__ = ["main", "record_smoke"]

#: Smoke-scale attack knobs (mirrors the ``smoke`` scenario group and
#: the chaos harness).
_ATTACK_PARAMS = {"m": 1, "region_pages": 224, "template_rounds": 3_000,
                  "hammer_ns": 4_000_000}

#: SoftTRR timing scaled to the tiny machine; with ``count_limit=2``
#: the protection window equals one timer interval.
_TINY_SOFTTRR = {"timer_inr_ns": 50_000}
_DEFAULT_WINDOW_NS = 50_000


def record_smoke(seed: int = 11, level: str = "spans",
                 capacity: int = DEFAULT_CAPACITY):
    """Run the smoke scenario with tracing on; returns the Machine.

    Deterministic in its arguments: the attack runs on the simulated
    clock with seeded RNG streams, so two records with the same seed
    produce byte-identical JSONL.
    """
    from ..attacks.memory_spray import MemorySprayAttack
    from ..machine import Machine, MachineConfig

    machine = Machine(MachineConfig(
        machine="tiny",
        defense="softtrr",
        defense_params=_TINY_SOFTTRR,
        sanitize=True,
        strict_sanitizers=False,
        seed=seed,
        trace=level,
        trace_capacity=capacity,
    ))
    attack = MemorySprayAttack(
        machine.kernel, m=_ATTACK_PARAMS["m"],
        region_pages=_ATTACK_PARAMS["region_pages"],
        template_rounds=_ATTACK_PARAMS["template_rounds"])
    attack.setup()
    attack.run(hammer_ns_per_victim=_ATTACK_PARAMS["hammer_ns"])
    return machine


# ----------------------------------------------------------- subcommands
def _cmd_record(args) -> int:
    machine = record_smoke(seed=args.seed, level=args.level,
                           capacity=args.capacity)
    telemetry = machine.telemetry
    count = write_jsonl(telemetry.events(), args.out)
    summary: Dict[str, object] = {
        "out": args.out,
        "level": args.level,
        "seed": args.seed,
        "events": count,
        "dropped": telemetry.hub.buffer.dropped,
        "sites": telemetry.trace_sites(),
        "now_ns": machine.clock.now_ns,
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(f"[{count} events ({len(summary['sites'])} sites) "
              f"-> {args.out}]")
    return cli_common.EXIT_OK


def _cmd_report(args) -> int:
    timeline = build_timeline(read_jsonl(args.trace), args.window_ns)
    if args.json:
        print(json.dumps(timeline, sort_keys=True, indent=2))
    else:
        print(render_timeline(timeline))
    if args.check:
        failures: List[str] = []
        if timeline["distinct_sites"] < args.min_sites:
            failures.append(
                f"only {timeline['distinct_sites']} distinct event sites "
                f"(need >= {args.min_sites})")
        if timeline["refreshes"] == 0:
            failures.append("no refresh.row events in the trace")
        incomplete = timeline["refreshes"] - timeline["complete_chains"]
        if incomplete:
            failures.append(
                f"{incomplete} refreshed rows missing their "
                "arm→access→refresh chain")
        if failures:
            for failure in failures:
                print(f"repro-trace: CHECK FAILED: {failure}",
                      file=sys.stderr)
            return cli_common.EXIT_CHECK_FAILED
        print("repro-trace: check passed "
              f"({timeline['distinct_sites']} sites, "
              f"{timeline['refreshes']} complete refresh chains)",
              file=sys.stderr)
    return cli_common.EXIT_OK


def _cmd_export(args) -> int:
    events = read_jsonl(args.trace)
    if args.format == "chrome":
        count = write_chrome(events, args.out)
    else:
        count = write_jsonl(events, args.out)
    print(f"[{count} events -> {args.out} ({args.format})]")
    return cli_common.EXIT_OK


# ------------------------------------------------------------ the parser
def _build_parser():
    parser = cli_common.build_parser(
        "repro-trace",
        "Record, report on, and export structured machine traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run the traced smoke scenario and write JSONL")
    cli_common.add_seed_option(record, default=11)
    cli_common.add_out_option(record, default="trace.jsonl")
    cli_common.add_json_option(record)
    record.add_argument(
        "--level", choices=LEVELS[1:], default="spans",
        help="trace verbosity (default spans)")
    record.add_argument(
        "--capacity", type=int, default=DEFAULT_CAPACITY, metavar="N",
        help=f"ring buffer capacity in events (default {DEFAULT_CAPACITY})")
    record.set_defaults(func=_cmd_record)

    report = sub.add_parser(
        "report", help="protection-window timeline from a JSONL trace")
    report.add_argument("trace", help="JSONL trace file (from record)")
    report.add_argument(
        "--window-ns", type=int, default=_DEFAULT_WINDOW_NS, metavar="NS",
        help="protection window length in simulated ns "
             f"(default {_DEFAULT_WINDOW_NS}, the tiny-machine window)")
    report.add_argument(
        "--min-sites", type=int, default=6, metavar="N",
        help="--check: minimum distinct event sites (default 6)")
    cli_common.add_json_option(report)
    cli_common.add_check_option(
        report,
        "exit non-zero unless the trace has enough distinct sites and "
        "every refreshed row shows a full arm→access→refresh chain")
    report.set_defaults(func=_cmd_report)

    export = sub.add_parser(
        "export", help="convert a JSONL trace to another format")
    export.add_argument("trace", help="JSONL trace file (from record)")
    cli_common.add_out_option(export, default="trace.json")
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="output format (default chrome trace_event JSON)")
    export.set_defaults(func=_cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"repro-trace: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
