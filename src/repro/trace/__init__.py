"""Structured event tracing and metrics for the simulated machine.

The observability pillar: typed :class:`TraceEvent` records in a
bounded ring :class:`TraceBuffer`, per-site counters and span latency
histograms in a :class:`MetricsRegistry`, all fanned in through one
:class:`TraceHub` per machine, and read back through the
:class:`Telemetry` facade (``machine.telemetry``).

Tracing is default-off and, by construction, behaviourally invisible:
emission sites never touch the clock or any RNG, so trace-enabled runs
produce bit-identical FlipEvent streams, counters, and simulated
nanoseconds versus trace-off runs (the differential suite in
``tests/trace`` enforces this).  Enable via ``MachineConfig.trace``
(``off``/``metrics``/``events``/``spans``); export recorded streams
with the ``repro-trace`` CLI (JSONL and Chrome ``trace_event``).
"""

from .events import DEFAULT_CAPACITY, EVENT_KINDS, TraceBuffer, TraceEvent
from .export import (
    build_timeline,
    events_to_chrome,
    read_jsonl,
    render_timeline,
    write_chrome,
    write_jsonl,
)
from .hub import LEVELS, TraceHub
from .metrics import (
    Counter,
    DURATION_BUCKETS_NS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .telemetry import Telemetry, sample_machine

__all__ = [
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "TraceBuffer",
    "TraceEvent",
    "build_timeline",
    "events_to_chrome",
    "read_jsonl",
    "render_timeline",
    "write_chrome",
    "write_jsonl",
    "LEVELS",
    "TraceHub",
    "Counter",
    "DURATION_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "sample_machine",
]
