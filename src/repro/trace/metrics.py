"""Counters, gauges and fixed-bucket histograms behind one registry.

:class:`MetricsRegistry` is the typed store the :class:`Telemetry`
facade and the :class:`TraceHub` are built on.  Three instrument kinds:

* :class:`Counter` — monotonically increasing int (``inc``);
* :class:`Gauge` — last-written int (``set_gauge``);
* :class:`Histogram` — fixed bucket boundaries chosen at creation time,
  so two runs observing the same values produce bit-identical bucket
  counts (no adaptive resizing, no floats in the boundaries).

Mutating instrument state (``inc`` / ``observe`` / ``set_gauge``)
anywhere outside :mod:`repro.trace` is a lint violation (RPR008): every
layer reports through the hub or the telemetry sampler so the registry
stays the single source of metric truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "Counter",
    "DURATION_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default duration buckets (simulated ns) for span histograms: fixed
#: decade boundaries from 100 ns to 100 ms.
DURATION_BUCKETS_NS = (
    100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-written integer value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set_gauge(self, value: int) -> None:
        """Overwrite the gauge."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram (deterministic bucketing).

    ``boundaries`` are upper-inclusive bucket edges; one implicit
    overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum")

    def __init__(self, name: str,
                 boundaries: Sequence[int] = DURATION_BUCKETS_NS) -> None:
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ConfigError(
                f"histogram {name!r} needs strictly increasing boundaries")
        self.name = name
        self.boundaries: Tuple[int, ...] = tuple(boundaries)
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.total = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        """Record one observation."""
        index = len(self.boundaries)
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    def as_dict(self) -> Dict[str, object]:
        """JSON-stable summary (boundaries, counts, total, sum)."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Name-addressed store of counters, gauges and histograms.

    Instruments are created on first use and keep insertion order, so a
    flattened dump is deterministic.  One name maps to exactly one
    instrument kind — re-registering under a different kind is an error.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, own: Dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ConfigError(
                    f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[int]] = None) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``boundaries`` only applies at creation; later calls must not
        contradict the registered edges.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = Histogram(name, boundaries or DURATION_BUCKETS_NS)
            self._histograms[name] = instrument
        elif (boundaries is not None
              and tuple(boundaries) != instrument.boundaries):
            raise ConfigError(
                f"histogram {name!r} re-registered with different boundaries")
        return instrument

    # ------------------------------------------------------------- queries
    def counter_names(self) -> List[str]:
        """Registered counter names, insertion order."""
        return list(self._counters)

    def histogram_names(self) -> List[str]:
        """Registered histogram names, insertion order."""
        return list(self._histograms)

    def as_flat_dict(self) -> Dict[str, int]:
        """Counters and gauges flattened to ``name -> int``.

        Histograms are summarised as ``<name>.total`` / ``<name>.sum``
        (full bucket vectors via :meth:`histograms_dict`).
        """
        out: Dict[str, int] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[f"{name}.total"] = histogram.total
            out[f"{name}.sum"] = histogram.sum
        return out

    def histograms_dict(self) -> Dict[str, Dict[str, object]]:
        """Full histogram dumps keyed by name."""
        return {name: h.as_dict() for name, h in self._histograms.items()}
