"""Textual grammar for hammer patterns.

Line-oriented, whitespace-friendly, ``#`` comments::

    pattern many_sided(victim, rounds, acts=60, gap=0)
      repeat rounds
        act 0, victim - 1, acts
        act 0, victim + 1, acts
        wait gap
        sync
      end
    end

Statements: ``act BANK, ROW[, COUNT]`` / ``wait NS`` / ``sync`` /
``repeat N`` … ``end``.  Operands are integer expressions over the
declared parameters (``+ - *`` with the usual precedence, parentheses
allowed).  ``ScenarioSpec.pattern`` carries exactly this text, so a
scenario cell can ship an attack program inline as plain data.

The parser is pure (flow rule RPR014): text in, :class:`Pattern` out,
with :class:`~repro.errors.PatternError` carrying the offending line
number on any syntax error.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import PatternError
from .lang import (
    Act,
    BinOp,
    Const,
    Expr,
    Param,
    ParamSpec,
    Pattern,
    Repeat,
    Sync,
    Wait,
)

__all__ = ["parse_pattern", "parse_patterns"]

_TOKEN = re.compile(r"\s*(?:(\d+)|([A-Za-z_][A-Za-z_0-9]*)|([+\-*(),]))")

_HEADER = re.compile(
    r"^pattern\s+([A-Za-z_][A-Za-z_0-9]*)\s*\((.*)\)\s*$")


class _ExprParser:
    """Recursive-descent parser for the integer expression grammar."""

    def __init__(self, text: str, line_no: int) -> None:
        self.tokens = self._tokenise(text, line_no)
        self.pos = 0
        self.line_no = line_no

    @staticmethod
    def _tokenise(text: str, line_no: int) -> List[str]:
        tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None or match.end() == pos:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise PatternError(
                    f"line {line_no}: cannot tokenise {rest!r}")
            tokens.append(match.group(1) or match.group(2) or match.group(3))
            pos = match.end()
        return tokens

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise PatternError(
                f"line {self.line_no}: unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> Expr:
        expr = self.additive()
        if self.peek() is not None:
            raise PatternError(
                f"line {self.line_no}: trailing tokens after expression "
                f"({' '.join(self.tokens[self.pos:])!r})")
        return expr

    def additive(self) -> Expr:
        expr = self.multiplicative()
        while self.peek() in ("+", "-"):
            op = self.take()
            expr = BinOp(op, expr, self.multiplicative())
        return expr

    def multiplicative(self) -> Expr:
        expr = self.unary()
        while self.peek() == "*":
            self.take()
            expr = BinOp("*", expr, self.unary())
        return expr

    def unary(self) -> Expr:
        if self.peek() == "-":
            self.take()
            return BinOp("-", Const(0), self.unary())
        return self.atom()

    def atom(self) -> Expr:
        token = self.take()
        if token == "(":
            expr = self.additive()
            if self.take() != ")":
                raise PatternError(
                    f"line {self.line_no}: unbalanced parentheses")
            return expr
        if token.isdigit():
            return Const(int(token))
        if token.isidentifier():
            return Param(token)
        raise PatternError(
            f"line {self.line_no}: unexpected token {token!r}")


def _parse_expr(text: str, line_no: int) -> Expr:
    text = text.strip()
    if not text:
        raise PatternError(f"line {line_no}: missing operand")
    return _ExprParser(text, line_no).parse()


def _split_operands(text: str, line_no: int) -> List[str]:
    """Split on commas outside parentheses."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise PatternError(
                    f"line {line_no}: unbalanced parentheses")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _parse_params(text: str, line_no: int) -> Tuple[ParamSpec, ...]:
    text = text.strip()
    if not text:
        return ()
    specs: List[ParamSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise PatternError(
                f"line {line_no}: empty parameter declaration")
        name, eq, default = chunk.partition("=")
        name = name.strip()
        if not name.isidentifier():
            raise PatternError(
                f"line {line_no}: bad parameter name {name!r}")
        if not eq:
            specs.append(ParamSpec(name))
            continue
        default = default.strip()
        try:
            value = int(default, 0)
        except ValueError:
            raise PatternError(
                f"line {line_no}: parameter {name!r} default {default!r} "
                "is not an integer") from None
        specs.append(ParamSpec(name, value))
    return tuple(specs)


def _meaningful_lines(source: str):
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line_no, line


def parse_patterns(source: str) -> List[Pattern]:
    """Every ``pattern … end`` block in ``source``, in order."""
    patterns: List[Pattern] = []
    #: Stack of open blocks: each entry is (kind, header, body) where
    #: kind is "pattern" or "repeat".
    stack: List[Tuple[str, object, List[object]]] = []
    for line_no, line in _meaningful_lines(source):
        keyword = line.split(None, 1)[0]
        rest = line[len(keyword):].strip()
        if keyword == "pattern":
            if stack:
                raise PatternError(
                    f"line {line_no}: 'pattern' inside an open block")
            match = _HEADER.match(line)
            if match is None:
                raise PatternError(
                    f"line {line_no}: bad pattern header {line!r} "
                    "(expected: pattern name(param, param=default))")
            header = (match.group(1),
                      _parse_params(match.group(2), line_no))
            stack.append(("pattern", header, []))
        elif keyword == "repeat":
            if not stack:
                raise PatternError(
                    f"line {line_no}: 'repeat' outside a pattern")
            stack.append(("repeat", _parse_expr(rest, line_no), []))
        elif keyword == "end":
            if rest:
                raise PatternError(
                    f"line {line_no}: 'end' takes no operands")
            if not stack:
                raise PatternError(f"line {line_no}: unmatched 'end'")
            kind, header, body = stack.pop()
            if kind == "repeat":
                if not body:
                    raise PatternError(
                        f"line {line_no}: empty repeat body")
                stack[-1][2].append(Repeat(header, tuple(body)))
            else:
                name, params = header
                if not body:
                    raise PatternError(
                        f"line {line_no}: pattern {name!r} has an "
                        "empty body")
                patterns.append(Pattern(name, params, tuple(body)))
        elif keyword == "act":
            if not stack:
                raise PatternError(
                    f"line {line_no}: 'act' outside a pattern")
            operands = _split_operands(rest, line_no)
            if len(operands) not in (2, 3):
                raise PatternError(
                    f"line {line_no}: act takes 'bank, row[, count]', "
                    f"got {len(operands)} operand(s)")
            bank = _parse_expr(operands[0], line_no)
            row = _parse_expr(operands[1], line_no)
            count = (_parse_expr(operands[2], line_no)
                     if len(operands) == 3 else Const(1))
            stack[-1][2].append(Act(bank, row, count))
        elif keyword == "wait":
            if not stack:
                raise PatternError(
                    f"line {line_no}: 'wait' outside a pattern")
            stack[-1][2].append(Wait(_parse_expr(rest, line_no)))
        elif keyword == "sync":
            if not stack:
                raise PatternError(
                    f"line {line_no}: 'sync' outside a pattern")
            if rest:
                raise PatternError(
                    f"line {line_no}: 'sync' takes no operands")
            stack[-1][2].append(Sync())
        else:
            raise PatternError(
                f"line {line_no}: unknown statement {keyword!r} "
                "(known: pattern/act/wait/sync/repeat/end)")
    if stack:
        kind = stack[-1][0]
        raise PatternError(f"unterminated {kind!r} block (missing 'end')")
    if not patterns:
        raise PatternError("source defines no pattern")
    return patterns


def parse_pattern(source: str) -> Pattern:
    """Parse exactly one pattern from ``source``."""
    patterns = parse_patterns(source)
    if len(patterns) != 1:
        raise PatternError(
            f"expected exactly one pattern, found {len(patterns)}: "
            f"{[p.name for p in patterns]}")
    return patterns[0]
