"""``repro-fuzz``: the seeded pattern-fuzz campaign as a CLI.

Sweeps sampled hammer-pattern points (:mod:`repro.patterns.fuzz`)
against the requested defenses and reports the per-defense blind-spot
map.  ``--check`` turns the report into the CI gate: vanilla must flip
(the campaign has teeth), at least one many-sided point must evade
chiptrr (the TRRespass result), misra_gries must stay clean across the
pool, and SoftTRR's page-table leg must stay flip-free while the
vanilla page-table probes prove that leg can flip at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .. import cli_common
from ..errors import ConfigError, ReproError
from .fuzz import (
    FUZZ_DEFENSES,
    OFFSET_POOL,
    run_fuzz_campaign,
    sample_points,
    summarise_campaign,
)

__all__ = ["main"]

#: Point count of the default (acceptance-scale) campaign.
DEFAULT_POINTS = 200

#: Point count under ``--smoke`` (seconds-scale CI subset).
SMOKE_POINTS = 24

#: Gate key -> human-readable failure line for ``--check``.
_GATE_FAILURES = {
    "vanilla_flips":
        "vanilla never flipped (campaign has no teeth)",
    "chiptrr_evaded_many_sided":
        "no many-sided point evaded chiptrr (blind spot not found)",
    "misra_gries_clean":
        "misra_gries flipped or errored somewhere in the pool",
    "softtrr_pt_clean":
        "softtrr's page-table leg flipped or errored",
    "pt_leg_has_teeth":
        "no vanilla page-table probe flipped (softtrr gate is vacuous)",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        prog="repro-fuzz",
        description=("Seeded hammer-pattern fuzzer: sweep sampled "
                     "aggressor-count/ordering/timing points against "
                     "the defense registry and map each defense's "
                     "blind spots."),
    )
    cli_common.add_defenses_option(parser, default=FUZZ_DEFENSES)
    parser.add_argument(
        "--points", type=int, default=DEFAULT_POINTS, metavar="N",
        help=f"parameter points to sample (default {DEFAULT_POINTS})")
    parser.add_argument(
        "--max-sides", type=int, default=len(OFFSET_POOL), metavar="N",
        help="widest aggressor count a point may draw "
             f"(default {len(OFFSET_POOL)})")
    parser.add_argument(
        "--machine", default="tiny",
        help="machine profile the cells run on (default tiny)")
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"seconds-scale CI subset ({SMOKE_POINTS} points)")
    cli_common.add_seed_option(parser, default=11)
    cli_common.add_jobs_option(parser)
    cli_common.add_json_option(parser)
    cli_common.add_out_option(
        parser, help_text="write the JSON report to PATH instead of stdout")
    cli_common.add_check_option(
        parser,
        help_text="exit non-zero unless every campaign gate holds "
                  "(vanilla flips, chiptrr evaded many-sided, "
                  "misra_gries clean, softtrr pt leg clean and "
                  "non-vacuous)")
    return parser


def _text_report(report: dict) -> str:
    lines = [f"repro-fuzz: {report['points']} points, "
             f"seed {report['seed']}"]
    for label in sorted(report["summary"]["rows"]):
        row = report["summary"]["rows"][label]
        lines.append(
            f"  {label:<16} [{row['target']:<4}] "
            f"{len(row['flip_points']):>4}/{row['cells']} points flip"
            + (f", {row['errors']} errors" if row["errors"] else ""))
    gates = report["summary"]["gates"]
    lines.append("  gates: " + ", ".join(
        f"{key}={'ok' if value else 'FAIL'}"
        for key, value in sorted(gates.items())))
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    count = SMOKE_POINTS if args.smoke else args.points
    try:
        if args.jobs < 1:
            raise ConfigError("--jobs must be >= 1")
        if count < 1:
            raise ConfigError("--points must be >= 1")
        points = sample_points(args.seed, count, args.max_sides)
        results = run_fuzz_campaign(
            defenses=args.defenses, seed=args.seed, count=count,
            max_sides=args.max_sides, workers=args.jobs,
            machine_name=args.machine)
    except ReproError as exc:
        print(f"repro-fuzz: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE
    summary = summarise_campaign(results, points)
    report = {
        "seed": args.seed,
        "points": count,
        "max_sides": args.max_sides,
        "smoke": args.smoke,
        "defenses": list(args.defenses),
        "sampled_points": [point.to_dict() for point in points],
        "summary": summary,
        "cells": [result.to_dict() for result in results],
    }
    text = json.dumps(report, sort_keys=True, indent=2) + "\n"
    if args.out:
        cli_common.atomic_write_text(args.out, text)
        print(f"[{len(results)} fuzz cells -> {args.out}]")
    elif args.json:
        sys.stdout.write(text)
    else:
        sys.stdout.write(_text_report(report))
    if args.check:
        failures = [
            message for gate, message in sorted(_GATE_FAILURES.items())
            if gate in summary["gates"] and not summary["gates"][gate]]
        if failures:
            for failure in failures:
                print(f"repro-fuzz: CHECK FAILED: {failure}",
                      file=sys.stderr)
            return cli_common.EXIT_CHECK_FAILED
        print(f"repro-fuzz: check passed ({len(results)} cells, "
              "blind spots mapped, softtrr leg clean)", file=sys.stderr)
    return cli_common.EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
