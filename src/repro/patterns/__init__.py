"""Hammer-pattern DSL, compiler, executors and fuzzer.

The attack-authoring stack, bottom to top:

* :mod:`repro.patterns.lang` — the AST and Python builders
  (``act``/``wait``/``sync``/``repeat``, placeholder params);
* :mod:`repro.patterns.parser` — the textual grammar (what
  ``ScenarioSpec.pattern`` carries inline);
* :mod:`repro.patterns.compile` — the pure resolve → unroll →
  coalesce → chunk pipeline producing a :class:`CompiledPlan`
  (flow rule RPR014 keeps this layer clock- and RNG-free);
* :mod:`repro.patterns.program` — :class:`AttackProgram`, the one
  execution entry point (rows mode and user/MMU mode);
* :mod:`repro.patterns.scenario` — the ``kind="pattern"`` scenario
  runner (rows target and the SoftTRR page-table target);
* :mod:`repro.patterns.fuzz` — the seeded TRRespass-style pattern
  fuzzer and blind-spot map behind the ``repro-fuzz`` CLI
  (:mod:`repro.patterns.cli`).
"""

from .compile import CompiledPlan, PlanStep, compile_pattern
from .fuzz import (
    FuzzPoint,
    pattern_source,
    run_fuzz_campaign,
    sample_points,
    summarise_campaign,
)
from .lang import (
    P,
    Pattern,
    act,
    pattern,
    repeat,
    sync,
    wait,
)
from .parser import parse_pattern, parse_patterns
from .program import (
    DEFAULT_BATCH,
    DEFAULT_EXTRA_NS,
    AttackProgram,
    ProgramOutcome,
    round_robin,
    sided_pattern,
)
from .scenario import run_pattern_cell, run_pattern_scenario

__all__ = [
    "AttackProgram",
    "CompiledPlan",
    "DEFAULT_BATCH",
    "DEFAULT_EXTRA_NS",
    "FuzzPoint",
    "P",
    "Pattern",
    "PlanStep",
    "ProgramOutcome",
    "act",
    "compile_pattern",
    "parse_pattern",
    "parse_patterns",
    "pattern",
    "pattern_source",
    "repeat",
    "round_robin",
    "run_fuzz_campaign",
    "run_pattern_cell",
    "run_pattern_scenario",
    "sample_points",
    "sided_pattern",
    "summarise_campaign",
    "sync",
    "wait",
]
