"""``AttackProgram``: the one attack-authoring entry point.

pattern → compiled plan → execute on a machine.  Two execution modes
share one plan format:

* ``mode="rows"`` — ``act`` targets are absolute ``(bank, row)`` DRAM
  coordinates, replayed as forced row activations
  (:meth:`DramModule.hammer_batch` batched, or scalar
  :meth:`DramModule.hammer` + clock advance — differentially equal by
  the DRAM batching contract).  This is the view in-DRAM trackers
  (ChipTRR, the zoo) see through the activation feed; SoftTRR is blind
  to it by design (no MMU access, no armed-PTE fault).
* ``mode="user"`` — ``act`` rows index an aggressor *vaddr* list; each
  run goes clflush + ``kernel.user_read`` (the architecturally visible
  access that takes SoftTRR's RSVD fault) followed by a batched burst
  for the run's remainder — exactly the hybrid loop the legacy
  ``HammerKit.hammer`` established, reproduced bit-identically (the
  differential suite pins this).

Kernel timers are dispatched at every plan-step boundary in both modes,
so SoftTRR's tick interleaves with hammering at authored granularity.

``round_robin`` builds the canned pattern behind the deprecated
``HammerKit.hammer`` menu: the whole legacy attack stack now lowers
through this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..batching import batch_enabled
from ..errors import AttackError, PatternError
from .compile import CompiledPlan, compile_pattern
from .lang import P, Pattern, act, pattern, repeat, sync, wait

__all__ = [
    "DEFAULT_BATCH",
    "DEFAULT_EXTRA_NS",
    "AttackProgram",
    "ProgramOutcome",
    "round_robin",
]

#: Per-activation overhead beyond the DRAM conflict: clflush + loop.
#: (Canonical home; :mod:`repro.attacks.hammer` re-exports it.)
DEFAULT_EXTRA_NS = 15

#: Default iterations per hybrid batch (kept small for TRR fidelity).
DEFAULT_BATCH = 100

MODES = ("rows", "user")


@dataclass(frozen=True)
class ProgramOutcome:
    """What one program execution did to the machine."""

    program: str
    mode: str
    activations: int
    flip_events: int
    hammer_ns: int
    steps: int


class AttackProgram:
    """One executable attack: pattern + bindings + execution mode.

    ``pattern`` may be a :class:`~repro.patterns.lang.Pattern`, DSL
    source text (parsed on first use), or a pre-built
    :class:`CompiledPlan`.  ``plan()`` compiles lazily and caches — the
    compile pipeline is pure, so a program can be compiled far from any
    machine and executed many times.

    ``act_ns`` is the inter-ACT overhead beyond the conflict latency
    (user mode defaults to :data:`DEFAULT_EXTRA_NS`, matching the
    legacy hammer loop); ``use_batch`` pins the batched backend on/off
    (``None`` consults the ``REPRO_BATCH`` knob per run);
    ``dispatch_timers=False`` suppresses the per-step kernel timer
    dispatch for raw-DRAM micro-benches.
    """

    def __init__(
        self,
        pattern_or_plan: Union[Pattern, CompiledPlan, str],
        bindings: Optional[Mapping[str, int]] = None,
        *,
        mode: str = "rows",
        act_ns: Optional[int] = None,
        use_batch: Optional[bool] = None,
        dispatch_timers: bool = True,
    ) -> None:
        if mode not in MODES:
            raise PatternError(
                f"unknown program mode {mode!r}; known: {MODES}")
        self.mode = mode
        self.act_ns = (DEFAULT_EXTRA_NS if mode == "user" else 0) \
            if act_ns is None else act_ns
        if self.act_ns < 0:
            raise PatternError(f"act_ns must be >= 0, got {self.act_ns}")
        self.use_batch = use_batch
        self.dispatch_timers = dispatch_timers
        self.bindings = dict(bindings or {})
        self._plan: Optional[CompiledPlan] = None
        if isinstance(pattern_or_plan, CompiledPlan):
            self._pattern: Optional[Pattern] = None
            self._plan = CompiledPlan(
                pattern_or_plan.name, pattern_or_plan.steps, self.act_ns)
        elif isinstance(pattern_or_plan, str):
            from .parser import parse_pattern

            self._pattern = parse_pattern(pattern_or_plan)
        elif isinstance(pattern_or_plan, Pattern):
            self._pattern = pattern_or_plan
        else:
            raise PatternError(
                "AttackProgram wants a Pattern, a CompiledPlan or DSL "
                f"source, got {type(pattern_or_plan).__name__}")

    @property
    def name(self) -> str:
        return self._plan.name if self._plan is not None \
            else self._pattern.name

    def plan(self) -> CompiledPlan:
        """The compiled plan (cached; compilation is pure)."""
        if self._plan is None:
            self._plan = compile_pattern(
                self._pattern, self.bindings, act_ns=self.act_ns)
        return self._plan

    # ---------------------------------------------------------- execute
    def run(self, kernel, process=None,
            aggressors: Optional[Sequence[int]] = None) -> ProgramOutcome:
        """Execute on ``kernel``; returns a :class:`ProgramOutcome`.

        Rows mode ignores ``process``/``aggressors``; user mode needs
        both (``aggressors`` are attacker vaddrs the plan's row operands
        index).
        """
        plan = self.plan()
        use_batch = (batch_enabled() if self.use_batch is None
                     else self.use_batch)
        dram = kernel.dram
        start_ns = kernel.clock.now_ns
        flips_before = len(dram.flip_log)
        if self.mode == "user":
            if process is None or aggressors is None:
                raise AttackError(
                    f"program {self.name!r}: user mode needs a process "
                    "and an aggressor vaddr list")
            acts = _run_user(kernel, process, aggressors, plan,
                             use_batch, self.dispatch_timers)
        else:
            acts = _run_rows(kernel, plan, use_batch, self.dispatch_timers)
        return ProgramOutcome(
            program=self.name,
            mode=self.mode,
            activations=acts,
            flip_events=len(dram.flip_log) - flips_before,
            hammer_ns=kernel.clock.now_ns - start_ns,
            steps=len(plan.steps),
        )


def _run_rows(kernel, plan: CompiledPlan, use_batch: bool,
              dispatch_timers: bool) -> int:
    dram = kernel.dram
    geometry = dram.geometry
    mapping = dram.mapping
    paddrs: Dict[Tuple[int, int], int] = {}
    for bank, row in plan.targets():
        if not (0 <= bank < geometry.num_banks
                and 0 <= row < geometry.rows_per_bank):
            raise AttackError(
                f"program {plan.name!r}: target (bank={bank}, row={row}) "
                f"outside the {geometry.num_banks}x"
                f"{geometry.rows_per_bank} geometry")
        paddrs[(bank, row)] = mapping.dram_to_phys(bank, row, 0)
    clock = kernel.clock
    act_ns = plan.act_ns
    total = 0
    for step in plan.steps:
        if step.acts:
            if use_batch:
                dram.hammer_batch(
                    [(paddrs[(bank, row)], count)
                     for bank, row, count in step.acts],
                    extra_ns=act_ns)
            else:
                for bank, row, count in step.acts:
                    dram.hammer(paddrs[(bank, row)], count)
                    clock.advance(count * act_ns)
            total += sum(count for _b, _r, count in step.acts)
        if step.wait_ns:
            clock.advance(step.wait_ns)
        if dispatch_timers:
            kernel.dispatch_timers()
    return total


def _resolve_user_paddr(kernel, process, vaddr: int) -> int:
    """Physical address behind a mapped user vaddr (faulting it in)."""
    ppn = kernel.mapped_ppn_of(process, vaddr)
    if ppn is None:
        kernel.user_read(process, vaddr, 1)
        ppn = kernel.mapped_ppn_of(process, vaddr)
    if ppn is None:
        raise AttackError(f"cannot resolve {vaddr:#x}")
    return (ppn << 12) | (vaddr & 0xFFF)


def _run_user(kernel, process, aggressors: Sequence[int],
              plan: CompiledPlan, use_batch: bool,
              dispatch_timers: bool) -> int:
    if not aggressors:
        raise AttackError("no aggressors to hammer")
    for bank, index in plan.targets():
        if bank != 0:
            raise AttackError(
                f"program {plan.name!r}: user mode uses bank 0 + "
                f"aggressor indices, got bank {bank}")
        if not 0 <= index < len(aggressors):
            raise AttackError(
                f"program {plan.name!r}: aggressor index {index} "
                f"outside the {len(aggressors)}-entry vaddr list")
    vaddrs = list(aggressors)
    paddrs = [_resolve_user_paddr(kernel, process, va) for va in vaddrs]
    dram = kernel.dram
    clock = kernel.clock
    mmu = kernel.mmu
    extra_ns = plan.act_ns
    total = 0
    for step in plan.steps:
        for _bank, index, count in step.acts:
            vaddr = vaddrs[index]
            paddr = paddrs[index]
            # The architecturally visible access of the run: takes the
            # RSVD fault if SoftTRR armed this page.
            mmu.clflush(paddr)
            kernel.user_read(process, vaddr, 8)
            if count > 1:
                # The rest of the run: same physics, batched.
                if use_batch:
                    dram.hammer_batch(
                        [(paddr, count - 1)], extra_ns=extra_ns)
                else:
                    dram.hammer(paddr, count - 1)
                    clock.advance((count - 1) * extra_ns)
            total += count
        if step.wait_ns:
            clock.advance(step.wait_ns)
        if dispatch_timers:
            kernel.dispatch_timers()
    return total


# ------------------------------------------------------ canned patterns
def round_robin(aggressors: int, iterations: int,
                batch: int = DEFAULT_BATCH,
                per_iter_delay_ns: int = 0) -> Pattern:
    """The legacy hammer loop as a pattern: ``iterations`` rounds over
    ``aggressors`` vaddr slots, chunked ``batch`` rounds at a time.

    Each chunk touches every aggressor for the chunk's round count in
    one run (MMU access + batched burst in user mode), then waits
    ``rounds * per_iter_delay_ns`` and syncs (timer dispatch) — the
    exact structure of the deprecated ``HammerKit.hammer``, so replays
    are bit-identical to the legacy loop.
    """
    if aggressors < 1:
        raise AttackError("no aggressors to hammer")
    if batch < 1:
        raise PatternError(f"batch must be >= 1, got {batch}")
    if iterations <= 0:
        # An empty program is a PatternError at compile time; mirror
        # the legacy loop's silent no-op with a zero-step sentinel the
        # callers guard against instead.
        raise PatternError(
            f"iterations must be >= 1, got {iterations}")
    body: List[object] = []

    def chunk(rounds: int, times: int) -> None:
        ops: List[object] = [act(0, slot, rounds)
                             for slot in range(aggressors)]
        if per_iter_delay_ns:
            ops.append(wait(rounds * per_iter_delay_ns))
        ops.append(sync())
        if times == 1:
            body.extend(ops)
        else:
            body.append(repeat(times, *ops))

    full, rest = divmod(iterations, batch)
    if full:
        chunk(batch, full)
    if rest:
        chunk(rest, 1)
    return pattern(f"round_robin_{aggressors}x{iterations}", (), *body)


def _sided_offsets(sides: int) -> Tuple[int, ...]:
    """Aggressor row offsets around a victim for an N-sided pattern.

    1 → ``(-1,)``; 2 → ``(-1, +1)``; k alternates outward
    (``-1, +1, -2, +2, …``), odd counts ending one row below.
    """
    if sides < 1:
        raise PatternError(f"sides must be >= 1, got {sides}")
    offsets: List[int] = []
    distance = 1
    while len(offsets) < sides:
        offsets.append(-distance)
        if len(offsets) < sides:
            offsets.append(distance)
        distance += 1
    return tuple(offsets)


def sided_pattern(sides: int, offsets: Optional[Sequence[int]] = None,
                  gap_ns: int = 0) -> Pattern:
    """A rows-mode N-sided pattern relative to a ``victim`` placeholder.

    Parameters ``victim``/``rounds``/``acts`` bind at compile time;
    every round touches each aggressor offset for ``acts`` activations,
    optionally waits ``gap_ns`` and syncs (timer dispatch per round).
    """
    offsets = tuple(offsets) if offsets is not None \
        else _sided_offsets(sides)
    if len(offsets) != sides:
        raise PatternError(
            f"{sides}-sided pattern got {len(offsets)} offsets")
    ops: List[object] = [act(0, P("victim") + off, P("acts"))
                         for off in offsets]
    if gap_ns:
        ops.append(wait(gap_ns))
    ops.append(sync())
    return pattern(
        f"sided_{sides}", ("victim", "rounds", ("acts", 1)),
        repeat(P("rounds"), *ops))
