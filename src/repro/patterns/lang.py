"""Hammer-pattern AST: the declarative attack-authoring language.

A pattern is a tree of three statement forms —

* ``act(bank, row, count)`` — ``count`` back-to-back activations of one
  row (in *user* mode ``row`` indexes an aggressor vaddr list instead);
* ``wait(ns)`` — advance simulated time between activation bursts;
* ``repeat(n, *body)`` — run ``body`` ``n`` times;

plus ``sync()``, a step barrier: compilation closes the current plan
step there, and the executor dispatches kernel timers at every step
boundary (the batch-boundary semantics the legacy ``HammerKit`` loop
established).  Operands are integer expressions over named placeholder
parameters (``P("victim") - 1``), resolved at compile time — the AST
itself is immutable plain data with no machine, clock or RNG anywhere
near it (flow rule RPR014 enforces that statically).

Patterns can be authored two ways with identical results: these Python
builders, or the textual grammar in :mod:`repro.patterns.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import PatternError

__all__ = [
    "Act",
    "BinOp",
    "Const",
    "Expr",
    "P",
    "Param",
    "ParamSpec",
    "Pattern",
    "Repeat",
    "Sync",
    "Wait",
    "act",
    "pattern",
    "repeat",
    "sync",
    "wait",
]


# ---------------------------------------------------------- expressions
class Expr:
    """Base of the integer expression mini-language."""

    __slots__ = ()

    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, coerce_expr(other))

    def __radd__(self, other) -> "BinOp":
        return BinOp("+", coerce_expr(other), self)

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, coerce_expr(other))

    def __rsub__(self, other) -> "BinOp":
        return BinOp("-", coerce_expr(other), self)

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, coerce_expr(other))

    def __rmul__(self, other) -> "BinOp":
        return BinOp("*", coerce_expr(other), self)


@dataclass(frozen=True)
class Const(Expr):
    """A literal integer operand."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise PatternError(
                f"pattern constants must be integers, got {self.value!r}")


@dataclass(frozen=True)
class Param(Expr):
    """A named placeholder, bound at compile time."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise PatternError(
                f"placeholder name {self.name!r} is not an identifier")


@dataclass(frozen=True)
class BinOp(Expr):
    """``left <op> right`` with ``op`` in ``+ - *``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*"):
            raise PatternError(f"unknown pattern operator {self.op!r}")


def P(name: str) -> Param:
    """Shorthand placeholder constructor: ``P("victim") - 1``."""
    return Param(name)


def coerce_expr(value: Union[Expr, int, str]) -> Expr:
    """Ints become :class:`Const`, strings :class:`Param`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise PatternError(f"cannot use {value!r} as a pattern operand")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Param(value)
    raise PatternError(
        f"cannot use {type(value).__name__} as a pattern operand")


# ----------------------------------------------------------- statements
@dataclass(frozen=True)
class Act:
    """``count`` consecutive activations of ``(bank, row)``."""

    bank: Expr
    row: Expr
    count: Expr


@dataclass(frozen=True)
class Wait:
    """Advance simulated time by ``ns`` nanoseconds."""

    ns: Expr


@dataclass(frozen=True)
class Sync:
    """Step barrier: close the plan step, dispatch kernel timers."""


@dataclass(frozen=True)
class Repeat:
    """Run ``body`` ``count`` times."""

    count: Expr
    body: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise PatternError("repeat body cannot be empty")
        object.__setattr__(self, "body", tuple(self.body))


Op = Union[Act, Wait, Sync, Repeat]


def act(bank, row, count=1) -> Act:
    return Act(coerce_expr(bank), coerce_expr(row), coerce_expr(count))


def wait(ns) -> Wait:
    return Wait(coerce_expr(ns))


def sync() -> Sync:
    return Sync()


def repeat(count, *body) -> Repeat:
    return Repeat(coerce_expr(count), tuple(body))


# -------------------------------------------------------------- pattern
@dataclass(frozen=True)
class ParamSpec:
    """One declared pattern parameter, with an optional default."""

    name: str
    default: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise PatternError(
                f"parameter name {self.name!r} is not an identifier")
        if self.default is not None and not isinstance(self.default, int):
            raise PatternError(
                f"parameter {self.name!r} default must be an integer")


@dataclass(frozen=True)
class Pattern:
    """A named pattern: declared parameters + statement body."""

    name: str
    params: Tuple[ParamSpec, ...]
    body: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "body", tuple(self.body))
        seen = set()
        for spec in self.params:
            if spec.name in seen:
                raise PatternError(
                    f"pattern {self.name!r} declares parameter "
                    f"{spec.name!r} twice")
            seen.add(spec.name)
        if not self.body:
            raise PatternError(f"pattern {self.name!r} has an empty body")

    def param_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.params)


def pattern(name: str, params=(), *body) -> Pattern:
    """Builder: ``params`` entries are ``"name"`` or ``("name", default)``."""
    specs = []
    for entry in params:
        if isinstance(entry, str):
            specs.append(ParamSpec(entry))
        elif isinstance(entry, tuple) and len(entry) == 2:
            specs.append(ParamSpec(entry[0], entry[1]))
        elif isinstance(entry, ParamSpec):
            specs.append(entry)
        else:
            raise PatternError(
                f"cannot read a parameter declaration from {entry!r}")
    return Pattern(name, tuple(specs), tuple(body))
