"""Pattern compilation: resolve → unroll → coalesce → chunk.

``compile_pattern`` turns a :class:`~repro.patterns.lang.Pattern` plus a
parameter binding into a :class:`CompiledPlan` — a flat, fully numeric
sequence of :class:`PlanStep` records the executors replay verbatim:

* **resolve** — bind every declared parameter (bindings override
  declared defaults; unknown binding names and unbound placeholders are
  errors) and evaluate each operand expression to an int;
* **unroll** — flatten ``repeat`` blocks (bounded by
  :data:`MAX_REPEAT_DEPTH` nesting and :data:`MAX_UNROLLED_OPS` total
  statements, so a typo'd count fails loudly instead of OOMing);
* **coalesce** — merge consecutive activations of one ``(bank, row)``
  target into a single run;
* **chunk** — split the run list into steps at every ``wait``/``sync``
  barrier.  Step boundaries are part of the *meaning* of a plan (the
  executor dispatches kernel timers at each one), so they are fixed
  here, deterministically, never by the execution backend — scalar and
  batched replay see identical boundaries by construction.

Everything in this module is pure plain-data transformation: no clock,
no RNG, no machine (flow rule RPR014 keeps it that way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import PatternError
from .lang import Act, BinOp, Const, Expr, Param, Pattern, Repeat, Sync, Wait

__all__ = [
    "CompiledPlan",
    "MAX_REPEAT_DEPTH",
    "MAX_UNROLLED_OPS",
    "PlanStep",
    "compile_pattern",
    "eval_expr",
    "resolve_bindings",
]

#: Deepest allowed ``repeat`` nesting (flat patterns rarely need > 2).
MAX_REPEAT_DEPTH = 4

#: Ceiling on flattened statement count after unrolling.
MAX_UNROLLED_OPS = 2_000_000


@dataclass(frozen=True)
class PlanStep:
    """One executor step: activation runs, then a wait, then timers.

    ``acts`` is a tuple of ``(bank, row, count)`` runs replayed in
    order; ``wait_ns`` advances the clock after the runs; the executor
    dispatches kernel timers at the end of every step.
    """

    acts: Tuple[Tuple[int, int, int], ...]
    wait_ns: int = 0


@dataclass(frozen=True)
class CompiledPlan:
    """A fully resolved pattern, ready for any execution backend.

    ``act_ns`` is the per-activation overhead beyond the DRAM conflict
    latency (the inter-ACT timing axis): the batched backend forwards it
    as ``hammer_batch(..., extra_ns=act_ns)``, the scalar backend
    advances the clock by ``count * act_ns`` per run — identical
    simulated time either way.
    """

    name: str
    steps: Tuple[PlanStep, ...]
    act_ns: int = 0

    @property
    def total_acts(self) -> int:
        return sum(count for step in self.steps
                   for _bank, _row, count in step.acts)

    @property
    def total_wait_ns(self) -> int:
        return sum(step.wait_ns for step in self.steps)

    def targets(self) -> Tuple[Tuple[int, int], ...]:
        """Distinct ``(bank, row)`` targets, in first-use order."""
        seen: Dict[Tuple[int, int], None] = {}
        for step in self.steps:
            for bank, row, _count in step.acts:
                seen.setdefault((bank, row), None)
        return tuple(seen)

    def remap_targets(
        self, mapping: Mapping[Tuple[int, int], Tuple[int, int]],
    ) -> "CompiledPlan":
        """A copy with every ``(bank, row)`` target translated.

        This is how a relative-row plan (compiled against ``victim=0``)
        becomes absolute, and how a row-space plan becomes an
        aggressor-index plan for user-mode execution.
        """
        steps = []
        for step in self.steps:
            acts = []
            for bank, row, count in step.acts:
                try:
                    new_bank, new_row = mapping[(bank, row)]
                except KeyError:
                    raise PatternError(
                        f"plan {self.name!r}: no remapping for target "
                        f"(bank={bank}, row={row})") from None
                acts.append((new_bank, new_row, count))
            steps.append(PlanStep(tuple(acts), step.wait_ns))
        return CompiledPlan(self.name, tuple(steps), self.act_ns)


def resolve_bindings(pattern: Pattern,
                     bindings: Optional[Mapping[str, int]] = None,
                     ) -> Dict[str, int]:
    """Declared defaults + caller bindings, fully validated."""
    bindings = dict(bindings or {})
    declared = pattern.param_names()
    for name in bindings:
        if name not in declared:
            raise PatternError(
                f"pattern {pattern.name!r} has no parameter {name!r} "
                f"(declared: {', '.join(declared) or 'none'})")
    env: Dict[str, int] = {}
    for spec in pattern.params:
        if spec.name in bindings:
            value = bindings[spec.name]
        elif spec.default is not None:
            value = spec.default
        else:
            raise PatternError(
                f"pattern {pattern.name!r}: unbound placeholder "
                f"{spec.name!r} (no binding, no default)")
        if not isinstance(value, int) or isinstance(value, bool):
            raise PatternError(
                f"pattern {pattern.name!r}: binding {spec.name!r} must "
                f"be an integer, got {value!r}")
        env[spec.name] = value
    return env


def eval_expr(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate one operand expression under ``env``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        try:
            return env[expr.name]
        except KeyError:
            raise PatternError(
                f"unbound placeholder {expr.name!r} (declare it in the "
                "pattern header or bind it at compile time)") from None
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise PatternError(f"cannot evaluate {type(expr).__name__} operand")


def _unroll(body, env: Mapping[str, int], name: str, depth: int,
            out: List[tuple]) -> None:
    for op in body:
        if isinstance(op, Act):
            count = eval_expr(op.count, env)
            if count < 0:
                raise PatternError(
                    f"pattern {name!r}: negative act count {count}")
            if count == 0:
                continue
            out.append(("act", eval_expr(op.bank, env),
                        eval_expr(op.row, env), count))
        elif isinstance(op, Wait):
            ns = eval_expr(op.ns, env)
            if ns < 0:
                raise PatternError(
                    f"pattern {name!r}: negative wait {ns}ns")
            if ns:
                out.append(("wait", ns))
        elif isinstance(op, Sync):
            out.append(("sync",))
        elif isinstance(op, Repeat):
            if depth + 1 > MAX_REPEAT_DEPTH:
                raise PatternError(
                    f"pattern {name!r}: repeat nested deeper than "
                    f"{MAX_REPEAT_DEPTH} levels")
            count = eval_expr(op.count, env)
            if count < 0:
                raise PatternError(
                    f"pattern {name!r}: negative repeat count {count}")
            for _ in range(count):
                _unroll(op.body, env, name, depth + 1, out)
                if len(out) > MAX_UNROLLED_OPS:
                    raise PatternError(
                        f"pattern {name!r}: unrolls past "
                        f"{MAX_UNROLLED_OPS} statements")
        else:
            raise PatternError(
                f"pattern {name!r}: unknown statement "
                f"{type(op).__name__}")
        if len(out) > MAX_UNROLLED_OPS:
            raise PatternError(
                f"pattern {name!r}: unrolls past {MAX_UNROLLED_OPS} "
                "statements")


def compile_pattern(pattern: Pattern,
                    bindings: Optional[Mapping[str, int]] = None,
                    act_ns: int = 0) -> CompiledPlan:
    """The full pipeline: resolve → unroll → coalesce → chunk."""
    if act_ns < 0:
        raise PatternError(f"act_ns must be >= 0, got {act_ns}")
    env = resolve_bindings(pattern, bindings)
    flat: List[tuple] = []
    _unroll(pattern.body, env, pattern.name, 0, flat)

    steps: List[PlanStep] = []
    acts: List[Tuple[int, int, int]] = []
    pending_wait = 0

    def close_step() -> None:
        nonlocal acts, pending_wait
        if acts or pending_wait:
            steps.append(PlanStep(tuple(acts), pending_wait))
        acts = []
        pending_wait = 0

    for op in flat:
        if op[0] == "act":
            _tag, bank, row, count = op
            if bank < 0:
                raise PatternError(
                    f"pattern {pattern.name!r}: negative bank {bank}")
            if acts and acts[-1][0] == bank and acts[-1][1] == row:
                acts[-1] = (bank, row, acts[-1][2] + count)
            else:
                acts.append((bank, row, count))
        elif op[0] == "wait":
            # A wait ends the step: runs replay first, then the wait.
            pending_wait += op[1]
            close_step()
        else:  # sync
            close_step()
    close_step()

    if not steps:
        raise PatternError(
            f"pattern {pattern.name!r} compiles to an empty plan")
    return CompiledPlan(pattern.name, tuple(steps), act_ns)
