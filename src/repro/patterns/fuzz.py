"""Seeded pattern fuzzer: a TRRespass-style blind-spot sweep.

Each :class:`FuzzPoint` is one parameter point of the hammer-pattern
space — aggressor count (1..N-sided), the aggressor offsets and their
replay ordering, and the inter-ACT gap — sampled purely from
``derive_rng("fuzz", seed, index)`` so a point is a function of
``(seed, index)`` alone: the fleet's ``fuzz`` cell runner regenerates
any point from its name, which is what makes a killed campaign
resumable.

A point renders to DSL source (:func:`pattern_source`) with ``victim``
/ ``rounds`` / ``acts`` left as unbound placeholders; the pattern cell
(:mod:`repro.patterns.scenario`) aims and budgets it per defense.  The
campaign sweeps every point against every requested defense — direct
DRAM rows for the feed trackers, the page-table (MMU) target for
SoftTRR — plus a few vanilla page-table probes so the SoftTRR gate is
never vacuously green.  :func:`summarise_campaign` folds the cells into
the blind-spot map and the CI gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..rng import derive_rng

__all__ = [
    "FUZZ_DEFENSES",
    "FuzzPoint",
    "fuzz_specs",
    "pattern_source",
    "point_spec",
    "run_fuzz_campaign",
    "sample_point",
    "sample_points",
    "sided_source",
    "summarise_campaign",
]

#: Default defense rows of a campaign (one per tracking strategy class:
#: no tracking, bounded slots, frequency table, software page-table TRR).
FUZZ_DEFENSES = ("vanilla", "chiptrr", "misra_gries", "softtrr")

#: Offsets a sampled aggressor may sit at (the zoo's many-sided span).
OFFSET_POOL = (-4, -3, -2, -1, 1, 2, 3, 4)

#: Inter-ACT gaps (ns) the fuzzer sweeps per round.
GAPS_NS = (0, 60, 240)

#: Replay orderings for the sampled offsets.
ORDERS = ("near_first", "far_first", "shuffled")

#: Vanilla page-table probes prepended to a campaign: evidence the pt
#: leg has teeth, so a flip-free SoftTRR row is meaningful.
PT_PROBE_POINTS = 2

#: Campaign-level defense params layered over the tiny-machine zoo
#: params.  Misra-Gries counts correctly at any distance but only heals
#: what it reaches, so its refresh distance is sized to the pool's
#: widest offset — the campaign gates its *counting* blind spots, not
#: its reach.
CAMPAIGN_DEFENSE_PARAMS: Dict[str, Dict[str, int]] = {
    "misra_gries": {"refresh_distance": max(abs(off)
                                            for off in OFFSET_POOL)},
}


@dataclass(frozen=True)
class FuzzPoint:
    """One sampled parameter point (post-ordering offsets baked in)."""

    index: int
    sides: int
    offsets: Tuple[int, ...]
    gap_ns: int
    order: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "sides": self.sides,
            "offsets": list(self.offsets),
            "gap_ns": self.gap_ns,
            "order": self.order,
        }


def sample_point(seed: int, index: int,
                 max_sides: int = len(OFFSET_POOL),
                 pool: Sequence[int] = OFFSET_POOL,
                 gaps: Sequence[int] = GAPS_NS) -> FuzzPoint:
    """The ``index``-th point of the ``seed`` campaign — pure in both.

    Every point keeps one adjacent aggressor (offset -1) so disturbance
    is physically possible; the remaining sides are drawn from ``pool``
    without replacement, then ordered.
    """
    if max_sides < 1:
        raise ConfigError("max_sides must be >= 1")
    max_sides = min(max_sides, len(pool))
    rng = derive_rng("fuzz", seed, index)
    sides = 1 + rng.randrange(max_sides)
    rest = [off for off in pool if off != -1]
    offsets = [-1] + rng.sample(rest, sides - 1)
    order = ORDERS[rng.randrange(len(ORDERS))]
    if order == "near_first":
        offsets.sort(key=lambda off: (abs(off), off))
    elif order == "far_first":
        offsets.sort(key=lambda off: (-abs(off), off))
    else:
        rng.shuffle(offsets)
    gap_ns = gaps[rng.randrange(len(gaps))]
    return FuzzPoint(index=index, sides=sides, offsets=tuple(offsets),
                     gap_ns=gap_ns, order=order)


def sample_points(seed: int, count: int,
                  max_sides: int = len(OFFSET_POOL),
                  pool: Sequence[int] = OFFSET_POOL,
                  gaps: Sequence[int] = GAPS_NS) -> List[FuzzPoint]:
    """``count`` points of the ``seed`` campaign, by index."""
    return [sample_point(seed, index, max_sides, pool, gaps)
            for index in range(count)]


def _offset_term(off: int) -> str:
    return f"victim {'+' if off >= 0 else '-'} {abs(off)}"


def _render(name: str, offsets: Sequence[int], gap_ns: int) -> str:
    """Victim-relative DSL source with budget placeholders unbound."""
    lines = [f"pattern {name}(victim, rounds, acts)", "  repeat rounds"]
    for off in offsets:
        lines.append(f"    act 0, {_offset_term(off)}, acts")
    if gap_ns:
        lines.append(f"    wait {gap_ns}")
    lines.append("    sync")
    lines.append("  end")
    lines.append("end")
    return "\n".join(lines) + "\n"


def pattern_source(point: FuzzPoint) -> str:
    """The point as hammer-pattern DSL source."""
    return _render(f"fuzz_{point.index}", point.offsets, point.gap_ns)


def sided_source(sides: int, gap_ns: int = 0) -> str:
    """Canned n-sided DSL source (alternating -1, +1, -2, +2, ...)."""
    from .program import _sided_offsets

    return _render(f"sided_{sides}", _sided_offsets(sides), gap_ns)


def _target_for(defense: str) -> str:
    """SoftTRR only sees MMU-path accesses, so it gets the page-table
    leg; every feed tracker watches direct row activations."""
    return "pt" if defense == "softtrr" else "rows"


def point_spec(point: FuzzPoint, defense: str, seed: int,
               target: Optional[str] = None,
               defense_params: Optional[Mapping] = None,
               machine_name: str = "tiny"):
    """One campaign cell as a ``kind="pattern"`` ScenarioSpec."""
    from ..scenarios.spec import ScenarioSpec

    target = target or _target_for(defense)
    defense_params = {**CAMPAIGN_DEFENSE_PARAMS.get(defense, {}),
                      **(defense_params or {})}
    suffix = "-pt" if (target == "pt" and defense != "softtrr") else ""
    return ScenarioSpec(
        name=f"fuzz-{defense}{suffix}-point-{point.index}",
        kind="pattern",
        group="fuzz",
        title=(f"Fuzz point {point.index}: {point.sides}-sided "
               f"{point.order} gap={point.gap_ns}ns vs {defense} "
               f"({target})"),
        machine=machine_name,
        defense=defense,
        defense_params=defense_params,
        pattern=pattern_source(point),
        params={"target": target, "seed": seed,
                "point": point.to_dict()},
    )


def fuzz_specs(defenses: Sequence[str] = FUZZ_DEFENSES,
               points: Optional[Sequence[FuzzPoint]] = None,
               seed: int = 11,
               count: int = 200,
               max_sides: int = len(OFFSET_POOL),
               machine_name: str = "tiny") -> List["ScenarioSpec"]:
    """The campaign grid: every point vs every defense, plus the
    vanilla page-table probes (non-vacuity evidence for SoftTRR)."""
    from ..defenses import DEFENSES

    for defense in defenses:
        if defense not in DEFENSES:
            raise ConfigError(
                f"unknown defense {defense!r}; known: {sorted(DEFENSES)}")
    if points is None:
        points = sample_points(seed, count, max_sides)
    specs = []
    if "softtrr" in defenses:
        for point in points[:PT_PROBE_POINTS]:
            specs.append(point_spec(point, "vanilla", seed, target="pt",
                                    machine_name=machine_name))
    for defense in defenses:
        for point in points:
            specs.append(point_spec(point, defense, seed,
                                    machine_name=machine_name))
    return specs


def run_fuzz_campaign(defenses: Sequence[str] = FUZZ_DEFENSES,
                      seed: int = 11,
                      count: int = 200,
                      max_sides: int = len(OFFSET_POOL),
                      workers: int = 1,
                      machine_name: str = "tiny"):
    """Run the campaign through the scenario sweep (guarded cells)."""
    from ..scenarios.runner import run_sweep

    return run_sweep(
        fuzz_specs(defenses, seed=seed, count=count, max_sides=max_sides,
                   machine_name=machine_name),
        workers=workers)


def _row_key(result) -> Tuple[str, str]:
    """(defense row label, target) from a campaign cell."""
    payload = result.payload
    if "error" in payload:
        # fuzz-<defense>[-pt]-point-<i>
        body = result.name[len("fuzz-"):result.name.rindex("-point-")]
        if body.endswith("-pt"):
            return body, "pt"
        return body, _target_for(body)
    label = payload["defense"]
    if payload["target"] == "pt" and label != "softtrr":
        label = f"{label}-pt"
    return label, payload["target"]


def summarise_campaign(results, points: Sequence[FuzzPoint]) -> dict:
    """Blind-spot map + the CI gates, folded from the campaign cells.

    The map lists, per defense row, every parameter point that flipped
    (the defense's blind spots); the gates are the ``--check``
    contract: vanilla must flip (teeth), some many-sided (>= 3 aggressor)
    point must evade chiptrr, misra_gries must stay clean across the
    pool, and SoftTRR's page-table leg must stay flip-free while the
    vanilla pt probes prove that leg can flip at all.
    """
    by_point = {point.index: point for point in points}
    rows: Dict[str, dict] = {}
    for result in results:
        label, target = _row_key(result)
        row = rows.setdefault(label, {
            "target": target,
            "cells": 0,
            "errors": 0,
            "flip_points": [],
        })
        row["cells"] += 1
        payload = result.payload
        if "error" in payload:
            row["errors"] += 1
            continue
        if payload["flip_events"] > 0:
            point = payload.get("point") or {}
            index = int(result.name.rsplit("-", 1)[1])
            sampled = by_point.get(index)
            row["flip_points"].append({
                "point": index,
                "sides": sampled.sides if sampled else point.get("sides"),
                "offsets": (list(sampled.offsets) if sampled
                            else point.get("offsets")),
                "gap_ns": (sampled.gap_ns if sampled
                           else point.get("gap_ns")),
                "order": sampled.order if sampled else point.get("order"),
                "flip_events": payload["flip_events"],
            })
    for row in rows.values():
        row["flip_points"].sort(key=lambda entry: entry["point"])
        row["flip_rate"] = (len(row["flip_points"]) / row["cells"]
                            if row["cells"] else 0.0)
    vanilla = rows.get("vanilla")
    chiptrr = rows.get("chiptrr")
    misra = rows.get("misra_gries")
    softtrr = rows.get("softtrr")
    probes = rows.get("vanilla-pt")
    # Gates only apply to defense rows the campaign actually swept.
    gates: Dict[str, bool] = {}
    if vanilla is not None:
        gates["vanilla_flips"] = bool(vanilla["flip_points"])
    if chiptrr is not None:
        gates["chiptrr_evaded_many_sided"] = any(
            entry["sides"] and entry["sides"] >= 3
            for entry in chiptrr["flip_points"])
    if misra is not None:
        gates["misra_gries_clean"] = (
            not misra["flip_points"] and not misra["errors"])
    if softtrr is not None:
        gates["softtrr_pt_clean"] = (
            not softtrr["flip_points"] and not softtrr["errors"])
        gates["pt_leg_has_teeth"] = bool(probes and probes["flip_points"])
    return {"rows": rows, "gates": gates}
