"""Pattern scenarios: one DSL program as one evaluation cell.

The zoo sweep hard-codes its hammer patterns as offset tuples; this
module makes the pattern itself the experiment input.  A cell takes DSL
source (or a :class:`~repro.patterns.lang.Pattern`), compiles it, aims
it at a victim and scores the outcome against any registry defense on
two targets:

* ``"rows"`` — direct DRAM hammering of the cheapest vulnerable
  neighbourhood (visible to every :class:`~repro.dram.feed.Tracker` on
  the activation feed: chiptrr, para, misra_gries, ptmp, dapper);
* ``"pt"`` — the SoftTRR leg: relocate an L1PT page onto an
  attacker-owned vulnerable frame (the paper's deterministic placement)
  and drive the compiled pattern through the MMU path, where SoftTRR's
  reserved-bit tracer sees every first access.

Victim-relative authoring convention: a pattern with an unbound
``victim`` parameter is compiled at ``victim = 0`` so its act rows
become *offsets*; the cell picks the cheapest vulnerable row the
pattern fits around and remaps the plan onto it.  Unbound ``rounds`` /
``acts`` parameters are budget-filled exactly like the zoo: the
per-aggressor activation budget is ``budget_factor`` x the victim's
flip threshold, split across :data:`DEFAULT_ROUNDS` interleaved rounds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import AttackError, ConfigError, PatternError
from .compile import CompiledPlan, compile_pattern
from .lang import Pattern
from .parser import parse_pattern
from .program import AttackProgram

__all__ = [
    "DEFAULT_ROUNDS",
    "PATTERN_TARGETS",
    "pattern_specs",
    "run_pattern_cell",
    "run_pattern_scenario",
]

#: Interleaving rounds the budget is split across (zoo parity).
DEFAULT_ROUNDS = 50

#: Per-aggressor budget as a multiple of the victim's flip threshold.
DEFAULT_BUDGET_FACTOR = 1.5

#: Attacker region for the ``"pt"`` leg (zoo spray-leg scale).
DEFAULT_REGION_PAGES = 224

#: Targets a pattern cell can aim at.
PATTERN_TARGETS = ("rows", "pt")


def _parse(source) -> Pattern:
    if isinstance(source, Pattern):
        return source
    return parse_pattern(source)


def _probe_offsets(pat: Pattern, bindings: Mapping) -> List[int]:
    """Act rows with ``victim`` pinned to 0 — the victim-relative
    offsets, in first-use order (the aggressor ordering the plan
    replays)."""
    probe = dict(bindings)
    names = pat.param_names()
    if "victim" in names:
        probe.setdefault("victim", 0)
    for knob in ("rounds", "acts"):
        if knob in names:
            probe.setdefault(knob, 1)
    plan = compile_pattern(pat, probe)
    offsets: List[int] = []
    for bank, row in plan.targets():
        if bank != 0:
            raise PatternError(
                f"pattern {pat.name!r}: victim-relative patterns must "
                f"keep every act on bank 0 (got bank {bank})")
        if row not in offsets:
            offsets.append(row)
    if any(off == 0 for off in offsets):
        raise PatternError(
            f"pattern {pat.name!r} activates the victim row itself "
            "(offset 0); aggressors must be neighbours")
    return offsets


def _budget_bindings(pat: Pattern, bindings: Mapping, threshold: float,
                     budget_factor: float) -> Dict[str, int]:
    """Fill unbound, default-less ``rounds``/``acts`` from the budget."""
    out = dict(bindings)
    specs = {spec.name: spec for spec in pat.params}
    budget = max(1, int(budget_factor * threshold))
    if ("rounds" in specs and "rounds" not in out
            and specs["rounds"].default is None):
        out["rounds"] = DEFAULT_ROUNDS
    rounds = out.get(
        "rounds",
        specs["rounds"].default if "rounds" in specs else DEFAULT_ROUNDS)
    rounds = rounds or DEFAULT_ROUNDS
    if ("acts" in specs and "acts" not in out
            and specs["acts"].default is None):
        out["acts"] = max(1, budget // max(1, rounds))
    return out


def _build_machine(defense: str, defense_params: Optional[Mapping],
                   machine_name: str, seed: Optional[int],
                   fault_plan: Optional[Mapping] = None):
    """Sanitized machine with the tiny-scale defense params applied
    (mirrors the zoo/window builders, plus the seed/fault-plan axes)."""
    from ..analysis.zoo import TINY_DEFENSE_PARAMS
    from ..machine import Machine, MachineConfig

    params: Dict[str, object] = dict(
        TINY_DEFENSE_PARAMS.get(defense, {}) if machine_name == "tiny"
        else {})
    params.update(defense_params or {})
    return Machine(MachineConfig(
        machine=machine_name,
        defense=defense,
        defense_params=params,
        sanitize=True,
        strict_sanitizers=False,
        seed=seed,
        fault_plan=fault_plan,
    ))


def _cheapest_victim(machine, margin: int) -> Tuple[int, int, float]:
    """(bank, row, threshold) of the cheapest victim the pattern fits
    around (``margin`` rows of slack to each bank edge)."""
    dram = machine.dram
    best = None
    for bank in range(dram.geometry.num_banks):
        for row in range(margin, dram.geometry.rows_per_bank - margin):
            cells = dram.engine.vulnerable_cells(bank, row)
            if cells and (best is None or cells[0].threshold < best[2]):
                best = (bank, row, cells[0].threshold)
    if best is None:
        raise ConfigError("machine seed produced no vulnerable rows")
    return best


def run_pattern_cell(
    source,
    defense: str = "vanilla",
    target: str = "rows",
    seed: Optional[int] = None,
    machine_name: str = "tiny",
    defense_params: Optional[Mapping] = None,
    bindings: Optional[Mapping] = None,
    use_batch: Optional[bool] = None,
    budget_factor: float = DEFAULT_BUDGET_FACTOR,
    region_pages: int = DEFAULT_REGION_PAGES,
    fault_plan: Optional[Mapping] = None,
) -> dict:
    """Compile ``source`` and run it against ``defense``; deterministic
    in all arguments.  See the module docstring for the two targets."""
    pat = _parse(source)
    bindings = dict(bindings or {})
    if target == "rows":
        return _run_rows_cell(pat, defense, defense_params, machine_name,
                              seed, bindings, use_batch, budget_factor,
                              fault_plan)
    if target == "pt":
        return _run_pt_cell(pat, defense, defense_params, machine_name,
                            seed, bindings, use_batch, budget_factor,
                            region_pages, fault_plan)
    raise ConfigError(
        f"unknown pattern target {target!r}; known: {PATTERN_TARGETS}")


def _base_payload(pat: Pattern, plan: CompiledPlan, defense: str,
                  target: str, seed) -> Dict[str, object]:
    return {
        "defense": defense,
        "target": target,
        "pattern": pat.name,
        "seed": seed,
        "steps": len(plan.steps),
        "plan_acts": plan.total_acts,
        "plan_wait_ns": plan.total_wait_ns,
    }


def _run_rows_cell(pat, defense, defense_params, machine_name, seed,
                   bindings, use_batch, budget_factor, fault_plan) -> dict:
    from ..analysis.zoo import _tracker_metrics

    machine = _build_machine(defense, defense_params, machine_name, seed,
                             fault_plan)
    relative = "victim" in pat.param_names() and "victim" not in bindings
    if relative:
        offsets = _probe_offsets(pat, bindings)
        margin = max(abs(off) for off in offsets)
        bank, victim, threshold = _cheapest_victim(machine, margin)
        final = _budget_bindings(pat, {**bindings, "victim": 0},
                                 threshold, budget_factor)
        plan = compile_pattern(pat, final).remap_targets(
            {(0, off): (bank, victim + off) for off in offsets})
    else:
        bank = victim = threshold = None
        offsets = []
        plan = compile_pattern(pat, bindings)
    program = AttackProgram(plan, mode="rows", use_batch=use_batch)
    outcome = program.run(machine.kernel)
    payload = _base_payload(pat, plan, defense, "rows", seed)
    payload.update({
        "victim": None if victim is None else [bank, victim],
        "victim_threshold": threshold,
        "aggressors": len(offsets) or len(plan.targets()),
        "offsets": list(offsets),
        "flip_events": outcome.flip_events,
        "protected": outcome.flip_events == 0,
        "hammer_ns": outcome.hammer_ns,
    })
    payload.update(_tracker_metrics(machine))
    return payload


def _run_pt_cell(pat, defense, defense_params, machine_name, seed,
                 bindings, use_batch, budget_factor, region_pages,
                 fault_plan) -> dict:
    from ..analysis.zoo import _tracker_metrics
    from ..attacks.hammer import HammerKit
    from ..attacks.placement import (
        free_user_frame,
        place_l1pt_at,
        spray_l1pts,
    )
    from ..attacks.templating import FlipTemplater
    from ..kernel.vma import PAGE

    if "victim" not in pat.param_names() or "victim" in bindings:
        raise ConfigError(
            "the 'pt' target needs a victim-relative pattern (an "
            "unbound 'victim' parameter the cell can aim)")
    offsets = _probe_offsets(pat, bindings)
    margin = max(abs(off) for off in offsets)
    machine = _build_machine(defense, defense_params, machine_name, seed,
                             fault_plan)
    kernel = machine.kernel
    attacker = kernel.create_process("pattern-attacker")
    kit = HammerKit(kernel, attacker, use_batch=use_batch)
    templater = FlipTemplater(kernel, attacker, kit)
    ownership = templater.claim_region(region_pages)
    rows_per_bank = machine.dram.geometry.rows_per_bank
    page_bits = PAGE * 8
    best = None
    for (bank, victim_row), victims in sorted(ownership.items()):
        if not margin <= victim_row < rows_per_bank - margin:
            continue
        if not all((bank, victim_row + off) in ownership
                   for off in offsets):
            continue
        cells = machine.dram.engine.vulnerable_cells(bank, victim_row)
        if not cells:
            continue
        # The victim row spans several pages; the L1PT must land on the
        # page that actually holds the cheapest vulnerable cell.
        cell = cells[0]
        row_pages = machine.dram.mapping.row_pages(bank, victim_row)
        cell_ppn = row_pages[cell.bit_offset // page_bits]
        owned = next(((vaddr, ppn) for vaddr, ppn in victims
                      if ppn == cell_ppn), None)
        if owned is None:
            continue
        if best is None or cell.threshold < best[3]:
            best = (bank, victim_row, owned, cell.threshold)
    if best is None:
        raise AttackError(
            "pattern pt cell: the claimed region owns no vulnerable "
            "neighbourhood wide enough for the pattern; enlarge "
            "region_pages or narrow the offsets")
    bank, victim_row, (victim_vaddr, victim_ppn), threshold = best
    aggressor_vaddrs = [
        ownership[(bank, victim_row + off)][0][0] for off in offsets]
    # The paper's deterministic placement: spray first, then free the
    # vulnerable frame and relocate a sprayed L1PT page onto it
    # (SoftTRR observes the move through the normal kernel frame
    # machinery).  Spraying after the free would let the spray's own
    # allocations reclaim the victim frame.
    slice_vaddr = spray_l1pts(kernel, attacker, 1)[0]
    free_user_frame(kernel, attacker, victim_vaddr)
    place_l1pt_at(kernel, attacker, slice_vaddr, victim_ppn)
    final = _budget_bindings(pat, {**bindings, "victim": 0},
                             threshold, budget_factor)
    # In user mode the row operand indexes the aggressor vaddr list.
    plan = compile_pattern(pat, final).remap_targets(
        {(0, off): (0, i) for i, off in enumerate(offsets)})
    program = AttackProgram(plan, mode="user", act_ns=kit.extra_ns,
                            use_batch=use_batch)
    # Start at a refresh-window boundary where the plan fits in one
    # window — an auto-refresh mid-pattern drains the disturbance the
    # probe is trying to accumulate (real attackers sync too).
    window = kernel.dram.timings.refresh_window_ns
    needed = plan.total_acts * 100 + plan.total_wait_ns
    into = kernel.clock.now_ns % window
    if needed < window and into + needed > window:
        kernel.clock.advance(window - into)
    hammer_start = kernel.clock.now_ns
    outcome = kit.run(program, aggressor_vaddrs)
    pt_frames = set(kernel.l1pt_frames()) | {victim_ppn}
    flips = sum(
        1
        for ppn in sorted(pt_frames)
        for flip in kernel.dram.flips_in_page(ppn)
        if flip.at_ns >= hammer_start)
    payload = _base_payload(pat, plan, defense, "pt", seed)
    payload.update({
        "victim": [bank, victim_row],
        "victim_ppn": victim_ppn,
        "victim_threshold": threshold,
        "aggressors": len(offsets),
        "offsets": list(offsets),
        "pt_flip_events": flips,
        "flip_events": flips,
        "protected": flips == 0,
        "hammer_ns": outcome.hammer_ns,
    })
    payload.update(_tracker_metrics(machine))
    return payload


def run_pattern_scenario(spec) -> dict:
    """Adapter for the scenario runner (``kind="pattern"``): the DSL
    source travels in ``spec.pattern``, the knobs in ``spec.params``."""
    params = spec.params
    return run_pattern_cell(
        spec.pattern,
        defense=spec.defense,
        target=params.get("target", "rows"),
        seed=params.get("seed"),
        machine_name=spec.machine,
        defense_params=spec.defense_params,
        bindings=params.get("bindings"),
        use_batch=params.get("use_batch"),
        budget_factor=params.get("budget_factor", DEFAULT_BUDGET_FACTOR),
        region_pages=params.get("region_pages", DEFAULT_REGION_PAGES),
        fault_plan=params.get("fault_plan"),
    )


def pattern_specs() -> List["ScenarioSpec"]:
    """The registry's ``patterns`` group: DSL-authored sided patterns
    against the headline defenses, on both targets where they apply."""
    from ..scenarios.spec import ScenarioSpec
    from .fuzz import sided_source

    grid = (
        ("vanilla", "rows"),
        ("chiptrr", "rows"),
        ("misra_gries", "rows"),
        ("vanilla", "pt"),
        ("softtrr", "pt"),
    )
    specs = []
    for defense, target in grid:
        for sides in (1, 2, 8):
            specs.append(ScenarioSpec(
                name=f"patterns-{defense}-{target}-{sides}sided",
                kind="pattern",
                group="patterns",
                title=(f"Pattern DSL: {sides}-sided vs {defense} "
                       f"({target} target)"),
                machine="tiny",
                defense=defense,
                pattern=sided_source(sides),
                params={"target": target, "seed": 11},
            ))
    return specs
