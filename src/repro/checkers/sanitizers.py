"""Runtime invariant sanitizers for a booted kernel.

Where the lint (:mod:`repro.checkers.lint`) checks the *source*, the
sanitizers check a *running* simulation.  They wrap the existing choke
points — ``PageTableOps.write_entry`` (which the tracer's arm/disarm
path and ``Mmu.write_pte`` both flow through), ``DramModule`` row
writes, ``Mmu.invlpg`` and the kernel timer dispatch — and verify, at
every timer tick, the invariants SoftTRR's security argument rests on:

* **PteSanitizer** — reserved trace bit set in a leaf PTE ⟺ the tracer
  tracks that entry.  TRRespass/U-TRR broke real TRR implementations
  exactly because tracker and DRAM state silently desynchronised; this
  is the software analogue.
* **TlbSanitizer** — after every ``invlpg`` the TLB really dropped the
  translation, and no cached translation points at an armed PTE (a
  stale entry would let accesses bypass the trace fault).
* **RowShadowSanitizer** — protected pages' DRAM contents equal a
  shadow copy maintained through the legitimate write paths; a mismatch
  means charge leaked into a page table (a bit flip the refresher
  failed to prevent).
* **WindowChecker** — the statically-derived protection-window
  inequality ``timer_inr × (count_limit − 1) ≤ tRC × #ACT`` holds for
  every loaded module.  Also usable as a pure static check on config
  dicts (:func:`check_window_config`) with no kernel at all.

Sanitizers are opt-in — ``MachineSpec(sanitize=True)`` installs them at
boot, or wrap a phase in ``with sanitized(kernel):`` — and accumulate
:class:`~repro.checkers.report.Violation` records into a
:class:`~repro.checkers.report.SanitizerReport`.  ``strict=True`` turns
the first violation into a :class:`SanitizerViolationError` instead.

Checks run at *checkpoint* granularity (after timer dispatch), not per
write: the tracer legitimately writes a marked entry a moment before
registering it, so per-write iff-checking would false-positive inside
the arm path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

from ..core.profile import DEFAULT_ACT_TO_FIRST_FLIP
from ..errors import SanitizerViolationError
from ..mmu import bits
from .report import SanitizerReport, Violation

PAGE = 1 << bits.PAGE_SHIFT


# ====================================================================
# WindowChecker: static half (usable with no kernel at all)
# ====================================================================
def check_window(
    timer_inr_ns: int,
    count_limit: int,
    t_rc_ns: int,
    act_to_first_flip: int = DEFAULT_ACT_TO_FIRST_FLIP,
) -> Optional[str]:
    """The protection-window inequality; returns a message if violated.

    ``timer_inr × (count_limit − 1)`` is the longest a row can be
    hammered without the refresher intervening; it must not exceed
    ``tRC × #ACT``, the shortest time to a first flip (Section IV-E).
    """
    window = timer_inr_ns * (count_limit - 1)
    threshold = t_rc_ns * act_to_first_flip
    if window > threshold:
        return (
            f"protection window {window} ns (timer_inr {timer_inr_ns} ns x "
            f"(count_limit {count_limit} - 1)) exceeds the DRAM "
            f"time-to-first-flip {threshold} ns"
        )
    return None


def check_window_config(config: Dict[str, int]) -> Optional[str]:
    """Static window check on a plain config dict.

    Required keys: ``timer_inr_ns``, ``count_limit``, ``t_rc_ns``;
    optional: ``act_to_first_flip``.  Returns a violation message or
    ``None`` if the configuration is safe.
    """
    missing = {"timer_inr_ns", "count_limit", "t_rc_ns"} - set(config)
    if missing:
        raise ValueError(f"config missing keys: {sorted(missing)}")
    return check_window(
        config["timer_inr_ns"],
        config["count_limit"],
        config["t_rc_ns"],
        config.get("act_to_first_flip", DEFAULT_ACT_TO_FIRST_FLIP),
    )


# ====================================================================
# Individual sanitizers
# ====================================================================
class Sanitizer:
    """Base class: a named invariant checked at checkpoints."""

    name = "sanitizer"

    def __init__(self, manager: "SanitizerManager") -> None:
        self.manager = manager
        self.kernel = manager.kernel

    def _violate(self, message: str, **where) -> None:
        self.manager.record(Violation(
            sanitizer=self.name,
            message=message,
            at_ns=self.kernel.clock.now_ns,
            **where,
        ))


class PteSanitizer(Sanitizer):
    """Reserved trace bit in DRAM ⟺ tracer-tracked.

    The write-entry wrapper keeps ``_marked`` — the PTE paddrs whose
    last architectural store carried the trace bit.  At each checkpoint
    the union of ``_marked`` and the tracer's armed registry is raw-read
    from DRAM and each side of the iff is verified.  Desyncs forced
    through ``raw_write_entry`` (bypassing the choke point) are caught
    because the ground truth is always the raw DRAM read.
    """

    name = "pte"

    def __init__(self, manager: "SanitizerManager") -> None:
        super().__init__(manager)
        self._marked: Set[int] = set()
        self._reported: Set[Tuple[int, bool, bool]] = set()

    def on_write_entry(self, pte_paddr: int, value: int) -> None:
        """Choke-point hook: track the trace bit of the stored value."""
        if value & bits.PTE_RSVD_TRACE:
            self._marked.add(pte_paddr)
        else:
            self._marked.discard(pte_paddr)

    def sync(self, tracer) -> None:
        """Adopt pre-existing armed state (install-time catch-up)."""
        if tracer is None or tracer.TRACE_MODE != "rsvd":
            return
        for pte_paddr in tracer._armed:
            if self._raw_entry(pte_paddr) & bits.PTE_RSVD_TRACE:
                self._marked.add(pte_paddr)

    def checkpoint(self, tracer) -> None:
        if tracer is None:
            self._marked.clear()
            return
        if tracer.TRACE_MODE != "rsvd":
            return  # the present-bit tracer has no rsvd invariant
        armed = tracer._armed
        for pte_paddr in sorted(self._marked | set(armed)):
            entry = self._raw_entry(pte_paddr)
            bit_set = bool(entry & bits.PTE_RSVD_TRACE)
            tracked = pte_paddr in armed
            if bit_set == tracked:
                continue
            key = (pte_paddr, bit_set, tracked)
            if key in self._reported:
                continue
            self._reported.add(key)
            if bit_set:
                self._violate(
                    "leaf PTE carries the RSVD trace bit but the tracer "
                    "does not track it (orphaned mark)",
                    pte_paddr=pte_paddr, ppn=pte_paddr >> bits.PAGE_SHIFT,
                )
            else:
                self._violate(
                    "tracer tracks an armed PTE whose RSVD trace bit is "
                    "clear in DRAM (lost mark)",
                    pte_paddr=pte_paddr, ppn=pte_paddr >> bits.PAGE_SHIFT,
                )

    def _raw_entry(self, pte_paddr: int) -> int:
        pt_ops = self.kernel.mmu.pt_ops
        return pt_ops.raw_read_entry(
            pte_paddr >> bits.PAGE_SHIFT, (pte_paddr & (PAGE - 1)) // 8)


class TlbSanitizer(Sanitizer):
    """TLB/walker coherence around flushes and armed entries."""

    name = "tlb"

    def on_invlpg(self, vaddr: int) -> None:
        """Post-``invlpg`` hook: the translation must really be gone."""
        entry = self.kernel.mmu.tlb.peek(vaddr)
        if entry is not None:
            self._violate(
                f"invlpg({vaddr:#x}) left a live TLB translation",
                pte_paddr=entry.pte_paddr, ppn=entry.ppn,
            )

    def checkpoint(self, tracer) -> None:
        if tracer is None:
            return
        armed = tracer._armed
        if not armed:
            return
        for entry in self.kernel.mmu.tlb.entries():
            if entry.pte_paddr in armed:
                self._violate(
                    "TLB caches a translation through an armed PTE; "
                    "accesses would bypass the trace fault",
                    pte_paddr=entry.pte_paddr, ppn=entry.ppn,
                )


class RowShadowSanitizer(Sanitizer):
    """Protected pages' DRAM contents equal their shadow copies.

    Shadows are snapshots of every protected (``pt_rbtree``) page,
    refreshed through the legitimate write paths (the wrapped
    ``DramModule.write`` / ``raw_write``).  Disturbance flips poke row
    storage directly and therefore surface as a shadow mismatch at the
    next checkpoint — reported with the page, bank and row, then
    resynced so one flip yields one violation.
    """

    name = "row_shadow"

    def __init__(self, manager: "SanitizerManager") -> None:
        super().__init__(manager)
        self._shadows: Dict[int, bytes] = {}

    def on_phys_write(self, paddr: int, length: int) -> None:
        """Choke-point hook: a legitimate write updates the shadow."""
        if not self._shadows or length <= 0:
            return
        first = paddr >> bits.PAGE_SHIFT
        last = (paddr + length - 1) >> bits.PAGE_SHIFT
        for ppn in range(first, last + 1):
            if ppn in self._shadows:
                self._shadows[ppn] = bytes(
                    self.kernel.dram.raw_read(ppn << bits.PAGE_SHIFT, PAGE))

    def checkpoint(self, collector) -> None:
        if collector is None:
            self._shadows.clear()
            return
        dram = self.kernel.dram
        protected = set(collector.structs.pt_rbtree.keys())
        for ppn in list(self._shadows):
            if ppn not in protected:
                del self._shadows[ppn]
        for ppn in sorted(protected):
            data = bytes(dram.raw_read(ppn << bits.PAGE_SHIFT, PAGE))
            shadow = self._shadows.get(ppn)
            if shadow is None:
                self._shadows[ppn] = data
                continue
            if data == shadow:
                continue
            offset = next(
                i for i in range(PAGE) if data[i] != shadow[i])
            loc = dram.mapping.phys_to_dram((ppn << bits.PAGE_SHIFT) + offset)
            self._violate(
                f"protected page content diverged from shadow at byte "
                f"{offset} (uncaught charge leak / bit flip)",
                ppn=ppn, bank=loc.bank, row=loc.row,
            )
            self._shadows[ppn] = data


class WindowSanitizer(Sanitizer):
    """Runtime half of the window check: every loaded module is safe."""

    name = "window"

    def __init__(self, manager: "SanitizerManager") -> None:
        super().__init__(manager)
        self._reported: Set[int] = set()

    def checkpoint(self, modules) -> None:
        t_rc_ns = self.kernel.dram.timings.t_rc_ns
        for module in modules:
            params = getattr(module, "params", None)
            if params is None or not hasattr(params, "protection_window_ns"):
                continue
            if id(module) in self._reported:
                continue
            message = check_window(
                params.timer_inr_ns, params.count_limit, t_rc_ns)
            if message is not None:
                self._reported.add(id(module))
                self._violate(f"{getattr(module, 'name', 'module')}: {message}")


# ====================================================================
# Manager: wraps the choke points, owns the report
# ====================================================================
class SanitizerManager:
    """Installs/uninstalls the sanitizers on one kernel."""

    def __init__(self, kernel, *, strict: bool = False) -> None:
        self.kernel = kernel
        self.strict = strict
        self.report = SanitizerReport()
        self.pte = PteSanitizer(self)
        self.tlb = TlbSanitizer(self)
        self.rows = RowShadowSanitizer(self)
        self.window = WindowSanitizer(self)
        self.installed = False
        self._originals: Dict[str, object] = {}
        self._fired_seen = 0
        self._in_checkpoint = False

    # ------------------------------------------------------------ record
    def record(self, violation: Violation) -> None:
        """Accumulate (or, in strict mode, raise on) one violation."""
        self.report.record(violation)
        if self.strict:
            raise SanitizerViolationError(violation.format())

    # ----------------------------------------------------------- install
    def install(self) -> "SanitizerManager":
        """Wrap the choke points; idempotent per manager."""
        if self.installed:
            return self
        kernel = self.kernel
        pt_ops = kernel.mmu.pt_ops
        dram = kernel.dram
        mmu = kernel.mmu
        self._originals = {
            "write_entry": pt_ops.write_entry,
            "dram_write": dram.write,
            "dram_raw_write": dram.raw_write,
            "invlpg": mmu.invlpg,
            "dispatch_timers": kernel.dispatch_timers,
        }
        manager = self
        orig_write_entry = self._originals["write_entry"]
        orig_dram_write = self._originals["dram_write"]
        orig_raw_write = self._originals["dram_raw_write"]
        orig_invlpg = self._originals["invlpg"]
        orig_dispatch = self._originals["dispatch_timers"]

        def write_entry(table_ppn, index, value):
            orig_write_entry(table_ppn, index, value)
            paddr = pt_ops.entry_paddr(table_ppn, index)
            manager.pte.on_write_entry(paddr, value)

        def dram_write(paddr, payload):
            orig_dram_write(paddr, payload)
            manager.rows.on_phys_write(paddr, len(payload))

        def dram_raw_write(paddr, payload):
            orig_raw_write(paddr, payload)
            manager.rows.on_phys_write(paddr, len(payload))

        def invlpg(vaddr):
            orig_invlpg(vaddr)
            manager.tlb.on_invlpg(vaddr)

        def dispatch_timers():
            orig_dispatch()
            # A checkpoint per actual timer tick — the tracer's state
            # only changes in bulk at ticks, and per-call sweeps would
            # dominate simulation time.
            if kernel.timers.fired != manager._fired_seen:
                manager._fired_seen = kernel.timers.fired
                manager.checkpoint()

        pt_ops.write_entry = write_entry
        dram.write = dram_write
        dram.raw_write = dram_raw_write
        mmu.invlpg = invlpg
        kernel.dispatch_timers = dispatch_timers
        self._fired_seen = kernel.timers.fired
        self.installed = True
        kernel.sanitizers = self
        # Adopt whatever state already exists (module loaded before us).
        tracer, _, _ = self._find_softtrr()
        self.pte.sync(tracer)
        return self

    def uninstall(self) -> None:
        """Restore the wrapped methods."""
        if not self.installed:
            return
        kernel = self.kernel
        kernel.mmu.pt_ops.write_entry = self._originals["write_entry"]
        kernel.dram.write = self._originals["dram_write"]
        kernel.dram.raw_write = self._originals["dram_raw_write"]
        kernel.mmu.invlpg = self._originals["invlpg"]
        kernel.dispatch_timers = self._originals["dispatch_timers"]
        self._originals = {}
        self.installed = False
        if getattr(kernel, "sanitizers", None) is self:
            kernel.sanitizers = None

    # -------------------------------------------------------- checkpoint
    def _find_softtrr(self):
        """(tracer, collector, modules) of the loaded SoftTRR, if any."""
        tracer = collector = None
        modules: List[object] = []
        for module in self.kernel.loaded_modules():
            if getattr(module, "params", None) is not None:
                modules.append(module)
            if tracer is None and getattr(module, "tracer", None) is not None:
                tracer = module.tracer
                collector = module.collector
        return tracer, collector, modules

    def checkpoint(self) -> SanitizerReport:
        """Run every sanitizer sweep now; returns the report."""
        if self._in_checkpoint:
            return self.report
        self._in_checkpoint = True
        try:
            self.report.checkpoints += 1
            tracer, collector, modules = self._find_softtrr()
            self.pte.checkpoint(tracer)
            self.tlb.checkpoint(tracer)
            self.rows.checkpoint(collector)
            self.window.checkpoint(modules)
        finally:
            self._in_checkpoint = False
        return self.report


def install_sanitizers(kernel, *, strict: bool = False) -> SanitizerManager:
    """Install a fresh :class:`SanitizerManager` on ``kernel``."""
    existing = getattr(kernel, "sanitizers", None)
    if existing is not None and existing.installed:
        raise SanitizerViolationError(
            "sanitizers already installed on this kernel")
    return SanitizerManager(kernel, strict=strict).install()


@contextmanager
def sanitized(kernel, *, strict: bool = False):
    """Run a block under sanitizers; asserts a clean report on exit.

    ``strict=True`` raises at the moment of the first violation instead
    of at block exit.  The manager is yielded so the block can force
    checkpoints or inspect the report.
    """
    manager = install_sanitizers(kernel, strict=strict)
    try:
        yield manager
        manager.checkpoint()
        manager.report.assert_clean()
    finally:
        manager.uninstall()
