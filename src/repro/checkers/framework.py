"""Shared machinery for the repo-specific lint pass.

The lint is deliberately tiny: one AST walk per file, with every rule
registered for the node types it cares about.  Rules are small classes
(:class:`LintRule`) producing :class:`Finding` objects; the framework
owns file I/O, suppression comments and output formatting so a rule is
typically under 40 lines.

Suppressions are per-line::

    entry |= 1 << 51  # repro-lint: disable=RPR003
    entry |= 1 << 51  # repro-lint: disable=all

A finding is suppressed when the comment sits on the line the finding
points at.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint hit: a rule, a location, a message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        """``path:line:col: RPRxxx message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-output shape."""
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule needs to know about the file under lint."""

    #: Repo-relative POSIX path (what allow-lists match against).
    rel_path: str
    source: str
    tree: ast.Module
    #: line -> suppressed rule IDs ("ALL" suppresses everything).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        """Whether the file is a package ``__init__.py``."""
        return PurePosixPath(self.rel_path).name == "__init__.py"

    def in_paths(self, allowed: Sequence[str]) -> bool:
        """Whether the file is one of / under one of ``allowed``.

        Entries ending in ``/`` are directory prefixes; others are exact
        file paths.  Matching is against the *suffix* of the relative
        path, so ``repro/clock.py`` matches whether the lint was invoked
        on ``src/`` or on the repository root.
        """
        path = PurePosixPath(self.rel_path)
        posix = path.as_posix()
        for allow in allowed:
            if allow.endswith("/"):
                if f"/{allow}" in f"/{posix}":
                    return True
            elif posix == allow or posix.endswith(f"/{allow}"):
                return True
        return False


class LintRule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`description`, declare the
    AST node types they want in :attr:`interests`, and implement
    :meth:`check_node`; rules that reason about the whole module (e.g.
    export consistency) override :meth:`check_module` instead.
    """

    rule_id: str = "RPR000"
    description: str = ""
    #: Node types routed to :meth:`check_node` during the shared walk.
    interests: Tuple[Type[ast.AST], ...] = ()
    #: Files (exact) / directories (trailing ``/``) exempt from the rule.
    allowed_paths: Tuple[str, ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether the rule runs on this file at all."""
        return not ctx.in_paths(self.allowed_paths)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        """Findings for one node of an interesting type."""
        return ()

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        """Findings needing the whole module (runs once per file)."""
        return ()

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if ids:
            out[lineno] = ids
    return out


def _suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return "ALL" in ids or finding.rule_id.upper() in ids


def lint_source(
    source: str,
    rel_path: str,
    rules: Sequence[LintRule],
) -> List[Finding]:
    """Lint one file's source text with ``rules``; returns its findings.

    Raises :class:`SyntaxError` if the source does not parse — callers
    surface that as a distinct exit code rather than a finding.
    """
    tree = ast.parse(source, filename=rel_path)
    ctx = LintContext(
        rel_path=PurePosixPath(rel_path).as_posix(),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    active = [rule for rule in rules if rule.applies_to(ctx)]
    if not active:
        return []
    findings: List[Finding] = []
    # Route node types to the rules interested in them, one shared walk.
    by_type: List[Tuple[Tuple[Type[ast.AST], ...], LintRule]] = [
        (rule.interests, rule) for rule in active if rule.interests
    ]
    if by_type:
        for node in ast.walk(tree):
            for interests, rule in by_type:
                if isinstance(node, interests):
                    findings.extend(rule.check_node(node, ctx))
    for rule in active:
        findings.extend(rule.check_module(ctx))
    findings = [f for f in findings if not _suppressed(f, ctx.suppressions)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
