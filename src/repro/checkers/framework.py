"""Shared machinery for the repo-specific lint passes.

Two passes share this module:

* the **shallow** pass (:mod:`repro.checkers.rules`) — one AST walk per
  file, every rule registered for the node types it cares about;
* the **flow** pass (:mod:`repro.checkers.flow`) — whole-program rules
  over a cross-module symbol table and call graph.

Rules are small classes (:class:`LintRule` for shallow,
``FlowRule`` for flow) producing :class:`Finding` objects.  Both kinds
register themselves here through :func:`register_rule`, so the CLIs,
``--list-rules`` and rule-ID validation all read one registry, and
future RPR0xx rules are one-class additions.

The framework owns file I/O (:class:`SourceFile` caches the parsed AST
so the shallow and deep passes never re-read or re-parse a file),
suppression comments and output formatting.

Suppressions are per-line and honoured identically by both passes::

    entry |= 1 << 51  # repro-lint: disable=RPR003
    entry |= 1 << 51  # repro-lint: disable=all

A finding is suppressed when the comment sits on the line the finding
points at.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Registry kinds: per-file AST rules vs whole-program flow rules.
RULE_KINDS = ("shallow", "flow")


@dataclass(frozen=True)
class Finding:
    """One lint hit: a rule, a location, a message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: Enclosing symbol (``pkg.mod.Class.method``) when the producing
    #: pass knows it — flow findings carry it so baselines stay stable
    #: across unrelated line drift.
    symbol: str = ""

    def format_text(self) -> str:
        """``path:line:col: RPRxxx message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-output shape."""
        out: Dict[str, object] = {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.symbol:
            out["symbol"] = self.symbol
        return out

    def fingerprint(self) -> str:
        """A line-independent identity used by baseline files.

        Stable across edits that only move code vertically: rule, file,
        enclosing symbol and a digest of the message (which never embeds
        line numbers).
        """
        import hashlib

        digest = hashlib.md5(self.message.encode("utf-8")).hexdigest()[:10]
        return f"{self.rule_id}|{self.path}|{self.symbol}|{digest}"


def path_matches(rel_path: str, allowed: Sequence[str]) -> bool:
    """Whether ``rel_path`` is one of / under one of ``allowed``.

    Entries ending in ``/`` are directory prefixes; others are exact
    file paths.  Matching is against the *suffix* of the relative path,
    so ``repro/clock.py`` matches whether the lint was invoked on
    ``src/`` or on the repository root.
    """
    posix = PurePosixPath(rel_path).as_posix()
    for allow in allowed:
        if allow.endswith("/"):
            if f"/{allow}" in f"/{posix}":
                return True
        elif posix == allow or posix.endswith(f"/{allow}"):
            return True
    return False


@dataclass
class SourceFile:
    """One parsed file, shared between the shallow and deep passes.

    ``repro-lint --deep`` loads every file exactly once: the shallow
    rules walk :attr:`tree`, then the flow pass builds its symbol table
    from the *same* tree — no re-read, no re-parse.
    """

    path: Optional[Path]
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]]

    @classmethod
    def load(cls, path: Path, rel_path: Optional[str] = None) -> "SourceFile":
        """Read and parse ``path``; raises ``SyntaxError`` on bad source."""
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, rel_path or path.as_posix(), path=path)

    @classmethod
    def from_source(cls, source: str, rel_path: str,
                    path: Optional[Path] = None) -> "SourceFile":
        """Parse in-memory source (the test-suite entry point)."""
        tree = ast.parse(source, filename=rel_path)
        return cls(
            path=path,
            rel_path=PurePosixPath(rel_path).as_posix(),
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )


@dataclass
class LintContext:
    """Everything a shallow rule needs to know about the file under lint."""

    #: Repo-relative POSIX path (what allow-lists match against).
    rel_path: str
    source: str
    tree: ast.Module
    #: line -> suppressed rule IDs ("ALL" suppresses everything).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        """Whether the file is a package ``__init__.py``."""
        return PurePosixPath(self.rel_path).name == "__init__.py"

    def in_paths(self, allowed: Sequence[str]) -> bool:
        """Whether the file is one of / under one of ``allowed``."""
        return path_matches(self.rel_path, allowed)


class LintRule:
    """Base class for one per-file lint rule.

    Subclasses set :attr:`rule_id` / :attr:`description`, declare the
    AST node types they want in :attr:`interests`, and implement
    :meth:`check_node`; rules that reason about the whole module (e.g.
    export consistency) override :meth:`check_module` instead.
    """

    rule_id: str = "RPR000"
    description: str = ""
    #: Node types routed to :meth:`check_node` during the shared walk.
    interests: Tuple[Type[ast.AST], ...] = ()
    #: Files (exact) / directories (trailing ``/``) exempt from the rule.
    allowed_paths: Tuple[str, ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether the rule runs on this file at all."""
        return not ctx.in_paths(self.allowed_paths)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        """Findings for one node of an interesting type."""
        return ()

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        """Findings needing the whole module (runs once per file)."""
        return ()

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------- registry
#: kind -> rule classes in registration order (sorted on read).
_REGISTRY: Dict[str, List[type]] = {kind: [] for kind in RULE_KINDS}


def register_rule(cls=None, *, kind: str = "shallow"):
    """Class decorator: add a rule class to the shared registry.

    ``@register_rule`` registers a shallow (per-file AST) rule;
    ``@register_rule(kind="flow")`` a whole-program flow rule.  The
    registry is what ``default_rules`` / ``flow_rules`` /
    ``--list-rules`` and rule-ID validation read, so registering is the
    *only* boilerplate a new RPR0xx rule needs.
    """
    if kind not in RULE_KINDS:
        raise ValueError(f"unknown rule kind {kind!r}; expected {RULE_KINDS}")

    def wrap(rule_cls):
        registered = _REGISTRY[kind]
        # Re-registration (module reload, tests) replaces by rule_id.
        registered[:] = [c for c in registered
                         if c.rule_id != rule_cls.rule_id]
        registered.append(rule_cls)
        return rule_cls

    return wrap if cls is None else wrap(cls)


def registered_rule_classes(kind: Optional[str] = None) -> Tuple[type, ...]:
    """Registered rule classes, sorted by rule ID.

    ``kind`` of ``None`` returns every kind (shallow first by ID order).
    """
    kinds = RULE_KINDS if kind is None else (kind,)
    out: List[type] = []
    for one in kinds:
        out.extend(_REGISTRY[one])
    return tuple(sorted(out, key=lambda cls: cls.rule_id))


def make_rules(kind: Optional[str] = None) -> Tuple[object, ...]:
    """Fresh instances of every registered rule of ``kind``, ID order."""
    return tuple(cls() for cls in registered_rule_classes(kind))


def rule_kind(rule_id: str) -> Optional[str]:
    """Which registry kind a rule ID belongs to, or ``None``."""
    for kind in RULE_KINDS:
        if any(cls.rule_id == rule_id.upper() for cls in _REGISTRY[kind]):
            return kind
    return None


# -------------------------------------------------------- suppressions
def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if ids:
            out[lineno] = ids
    return out


def _suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return "ALL" in ids or finding.rule_id.upper() in ids


def filter_suppressed(
    findings: Iterable[Finding],
    suppressions_by_path: Dict[str, Dict[int, Set[str]]],
) -> List[Finding]:
    """Drop findings carrying a same-line disable comment.

    ``suppressions_by_path`` maps each file's relative path to its
    per-line suppression table — both passes build it from the same
    :class:`SourceFile` objects, so a ``# repro-lint: disable=RPRxxx``
    comment silences a flow finding exactly like a shallow one.
    """
    return [
        finding for finding in findings
        if not _suppressed(finding,
                           suppressions_by_path.get(finding.path, {}))
    ]


# -------------------------------------------------------------- driver
def lint_file(sf: SourceFile, rules: Sequence[LintRule]) -> List[Finding]:
    """Run the shallow ``rules`` over one pre-parsed :class:`SourceFile`."""
    ctx = LintContext(
        rel_path=sf.rel_path,
        source=sf.source,
        tree=sf.tree,
        suppressions=sf.suppressions,
    )
    active = [rule for rule in rules if rule.applies_to(ctx)]
    if not active:
        return []
    findings: List[Finding] = []
    # Route node types to the rules interested in them, one shared walk.
    by_type: List[Tuple[Tuple[Type[ast.AST], ...], LintRule]] = [
        (rule.interests, rule) for rule in active if rule.interests
    ]
    if by_type:
        for node in ast.walk(sf.tree):
            for interests, rule in by_type:
                if isinstance(node, interests):
                    findings.extend(rule.check_node(node, ctx))
    for rule in active:
        findings.extend(rule.check_module(ctx))
    findings = [f for f in findings if not _suppressed(f, ctx.suppressions)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_source(
    source: str,
    rel_path: str,
    rules: Sequence[LintRule],
) -> List[Finding]:
    """Lint one file's source text with ``rules``; returns its findings.

    Raises :class:`SyntaxError` if the source does not parse — callers
    surface that as a distinct exit code rather than a finding.
    """
    return lint_file(SourceFile.from_source(source, rel_path), rules)
