"""The repo-specific lint rules (RPR001..RPR008).

Each rule encodes an invariant the simulation's correctness argument
rests on:

* **RPR001** — no wall-clock. Every duration in the reproduction is
  simulated time on :class:`repro.clock.SimClock`; one stray
  ``time.perf_counter()`` makes runs machine-dependent.
* **RPR002** — no direct ``import random``. Randomness must flow from
  :mod:`repro.rng` (or an injected generator) so results are a pure
  function of the seed.
* **RPR003** — no raw bit-51 / reserved-mask literals. The trace bit is
  architecture knowledge owned by :mod:`repro.mmu.bits`; a duplicated
  literal silently diverges when the constant changes.
* **RPR004** — no ``write_entry`` calls outside the MMU and the tracer.
  Page-table stores must go through :meth:`repro.mmu.mmu.Mmu.write_pte`
  (or ``pt_ops`` within ``mmu/``) so the runtime sanitizers sit on a
  single choke point.
* **RPR005** — ``__all__`` consistency for every package
  ``__init__.py``: the export list exists, is a literal, names only
  bound symbols, and covers every public top-level binding.
* **RPR006** — no direct ``Kernel(...)`` / ``DramModule(...)``
  construction outside :mod:`repro.machine`. The facade is the one
  sanctioned assembly path (defense frame policies, sanitizer
  strictness, warm-up semantics all live there); a hand-wired kernel
  silently skips those steps. Unit tests keep direct access — they
  exercise layers in isolation by design.
* **RPR007** — no monkeypatching of :class:`KernelTimers` /
  :class:`HookManager` delivery methods outside :mod:`repro.faults`.
  Fault injection goes through the sanctioned injector so that wrapper
  stacking, snapshot ordering and the ``faults`` counter namespace stay
  coherent; an ad-hoc wrapper breaks all three silently.
* **RPR008** — no direct metric mutation (``.inc()`` / ``.observe()`` /
  ``.set_gauge()``, or writes into a registry's internal tables)
  outside :mod:`repro.trace`.  Instrumented layers report through
  ``self.trace.emit(...)`` / span begin-end pairs; a hand-bumped
  counter bypasses the hub's level gating and ring buffer, so the
  same run would diverge between trace levels.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Set

from ..mmu import bits
from .framework import (
    Finding,
    LintContext,
    LintRule,
    make_rules,
    register_rule,
)

#: Wall-clock reads (and sleeps) that would leak host time into a run.
_WALL_CLOCK_NAMES = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "sleep",
})

_RSVD_VALUE = bits.PTE_RSVD_TRACE
_RESERVED_MASK_VALUE = bits.PTE_RESERVED_MASK
_RSVD_BIT_INDEX = bits.PTE_RSVD_TRACE.bit_length() - 1


@register_rule
class WallClockRule(LintRule):
    """RPR001: wall-clock time is only legal inside ``repro/clock.py``."""

    rule_id = "RPR001"
    description = "no wall-clock (time.time/perf_counter) outside clock.py"
    interests = (ast.Import, ast.ImportFrom, ast.Attribute)
    # repro/bench/ measures *host* throughput of the simulator itself
    # (activations per wall-second); repro/fleet/ supervises worker
    # processes in host time (per-cell timeouts, retry backoff, test
    # pacing) and keeps wall clocks out of its records by contract.
    # Both places wall time is the mechanism, not a contaminant.
    allowed_paths = ("repro/clock.py", "repro/bench/", "repro/fleet/")

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    yield self.finding(
                        ctx, node,
                        "import of the wall-clock 'time' module; use "
                        "repro.clock.SimClock for simulated time",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_NAMES or alias.name == "*":
                        yield self.finding(
                            ctx, node,
                            f"wall-clock import 'time.{alias.name}'; use "
                            "repro.clock.SimClock for simulated time",
                        )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in _WALL_CLOCK_NAMES
            ):
                yield self.finding(
                    ctx, node,
                    f"wall-clock read 'time.{node.attr}'; use "
                    "repro.clock.SimClock for simulated time",
                )


@register_rule
class UnseededRandomRule(LintRule):
    """RPR002: ``import random`` is only legal inside ``repro/rng.py``."""

    rule_id = "RPR002"
    description = "no direct 'import random' outside repro/rng.py"
    interests = (ast.Import, ast.ImportFrom)
    allowed_paths = ("repro/rng.py",)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module] if node.level == 0 else []
        if "random" in names:
            yield self.finding(
                ctx, node,
                "direct 'import random'; derive a seeded generator with "
                "repro.rng.derive_rng or accept an injected rng.Random",
            )


@register_rule
class RawBitLiteralRule(LintRule):
    """RPR003: bit-51/reserved-mask literals live in ``repro/mmu/bits.py``."""

    rule_id = "RPR003"
    description = "no raw bit-51 / reserved-mask literals outside mmu/bits.py"
    interests = (ast.Constant, ast.BinOp)
    allowed_paths = ("repro/mmu/bits.py",)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Constant):
            if node.value is True or node.value is False:
                return
            if node.value == _RSVD_VALUE:
                yield self.finding(
                    ctx, node,
                    "raw bit-51 literal; use repro.mmu.bits.PTE_RSVD_TRACE",
                )
            elif node.value == _RESERVED_MASK_VALUE:
                yield self.finding(
                    ctx, node,
                    "raw reserved-mask literal; use "
                    "repro.mmu.bits.PTE_RESERVED_MASK",
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
            if (
                isinstance(node.right, ast.Constant)
                and node.right.value == _RSVD_BIT_INDEX
            ):
                yield self.finding(
                    ctx, node,
                    "shift to the reserved trace bit; use "
                    "repro.mmu.bits.PTE_RSVD_TRACE",
                )


@register_rule
class WriteEntryRule(LintRule):
    """RPR004: ``write_entry`` calls are restricted to the MMU layer.

    The tracer keeps its direct access (it *is* the arm/disarm path the
    sanitizers reason about), and the sanitizers themselves wrap the
    method; everyone else goes through :meth:`Mmu.write_pte` so a single
    choke point sees every architectural page-table store.
    """

    rule_id = "RPR004"
    description = "no PageTable.write_entry callers outside mmu/ and the tracer"
    interests = (ast.Call,)
    allowed_paths = (
        "repro/mmu/",
        "repro/core/tracer.py",
        "repro/checkers/sanitizers.py",
    )

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "write_entry":
            yield self.finding(
                ctx, node,
                "direct write_entry call; go through Mmu.write_pte so the "
                "sanitizer choke point sees the store",
            )


@register_rule
class ExportConsistencyRule(LintRule):
    """RPR005: package ``__init__.py`` exports are complete and bound."""

    rule_id = "RPR005"
    description = "__all__ must exist, be literal, bound and complete"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.is_package_init

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        tree = ctx.tree
        bound: Set[str] = set()
        star_import = False
        all_node = None
        all_names: List[str] = []
        all_literal = True
        for stmt in tree.body:
            for name in _bound_names(stmt):
                if name == "*":
                    star_import = True
                else:
                    bound.add(name)
            target = _all_assignment(stmt)
            if target is not None:
                all_node = stmt
                names, literal = target
                all_names = names
                all_literal = literal
        if all_node is None:
            yield Finding(
                rule_id=self.rule_id, path=ctx.rel_path, line=1, col=0,
                message="package __init__ defines no __all__",
            )
            return
        if not all_literal:
            yield self.finding(
                ctx, all_node,
                "__all__ must be a literal list/tuple of strings",
            )
            return
        seen: Set[str] = set()
        for name in all_names:
            if name in seen:
                yield self.finding(
                    ctx, all_node, f"__all__ lists {name!r} twice")
            seen.add(name)
            if name not in bound and not star_import:
                yield self.finding(
                    ctx, all_node,
                    f"__all__ exports {name!r} which is not bound at "
                    "module level",
                )
        for name in sorted(bound):
            if name.startswith("_"):
                continue
            if name not in seen:
                yield self.finding(
                    ctx, all_node,
                    f"public name {name!r} is bound but missing from __all__",
                )


@register_rule
class MachineAssemblyRule(LintRule):
    """RPR006: machines are assembled through :mod:`repro.machine`.

    ``Kernel(spec)`` wired by hand skips the facade's assembly steps
    (defense frame-policy injection, sanitizer strictness, install
    warm-up semantics), so direct construction of :class:`Kernel` or
    :class:`DramModule` is restricted to the machine layer itself,
    ``repro/config.py`` (``build_dram``, the spec-to-DRAM factory) and
    unit tests, which take layers apart on purpose.
    """

    rule_id = "RPR006"
    description = ("no direct Kernel()/DramModule() construction outside "
                   "repro.machine")
    interests = (ast.Call,)
    allowed_paths = (
        "repro/machine/",
        "repro/config.py",
        "tests/",
    )

    _CONSTRUCTORS = frozenset({"Kernel", "DramModule"})

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return
        if name in self._CONSTRUCTORS:
            yield self.finding(
                ctx, node,
                f"direct {name}() construction; assemble through "
                "repro.machine.Machine (or Machine.from_parts / "
                "boot_kernel)",
            )


@register_rule
class FaultChokePointRule(LintRule):
    """RPR007: timer/hook delivery is wrapped only by ``repro.faults``.

    The fault injector owns the choke points (``KernelTimers._fire`` /
    ``run_pending``, ``HookManager.notify`` / ``dispatch``): it wraps
    them with a known stacking order relative to the sanitizers and
    unwinds them around snapshots.  Assigning over those methods (or
    ``setattr``-ing them) anywhere else installs an untracked wrapper
    that snapshots would capture as an "original" and replay dangling.
    Tests keep the access — they exercise the seams on purpose.
    """

    rule_id = "RPR007"
    description = ("no monkeypatching of KernelTimers/HookManager delivery "
                   "methods outside repro.faults")
    interests = (ast.Assign, ast.Call)
    allowed_paths = (
        "repro/faults/",
        "tests/",
    )

    #: Delivery-layer attributes whose rebinding is the injector's
    #: monopoly.  Generic names (register/unregister/cancel) are left
    #: out — too many unrelated objects carry them.
    _CHOKE_METHODS = frozenset({
        "run_pending", "_fire", "add_periodic", "add_oneshot",
        "cancel_all", "notify", "dispatch", "hooked", "unregister_all",
        "hook", "unhook",
    })

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in self._CHOKE_METHODS):
                    yield self.finding(
                        ctx, node,
                        f"assignment over delivery method "
                        f"'.{target.attr}'; fault injection must go "
                        "through repro.faults.FaultInjector",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "setattr"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value in self._CHOKE_METHODS):
                yield self.finding(
                    ctx, node,
                    f"setattr over delivery method "
                    f"{node.args[1].value!r}; fault injection must go "
                    "through repro.faults.FaultInjector",
                )


@register_rule
class MetricMutationRule(LintRule):
    """RPR008: metric mutation is :mod:`repro.trace`'s monopoly.

    Mirrors RPR007's choke-point discipline for the telemetry layer:
    every counter bump, histogram observation and gauge write flows
    through :class:`~repro.trace.TraceHub` (``emit`` / ``span_begin`` /
    ``span_end``), which applies level gating and keeps the event ring
    consistent with the metrics.  A direct ``registry.counter(x).inc()``
    elsewhere records state the ring never saw — trace-level runs stop
    agreeing with each other.  Tests keep direct access to exercise the
    instruments in isolation.
    """

    rule_id = "RPR008"
    description = ("no direct metric mutation (inc/observe/set_gauge) "
                   "outside repro.trace")
    interests = (ast.Call, ast.Assign, ast.AugAssign)
    allowed_paths = (
        "repro/trace/",
        "tests/",
    )

    _MUTATORS = frozenset({"inc", "observe", "set_gauge"})
    _INTERNAL_TABLES = frozenset({"_counters", "_gauges", "_histograms"})

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._MUTATORS:
                yield self.finding(
                    ctx, node,
                    f"direct metric mutation '.{func.attr}(...)'; report "
                    "through the trace hub (trace.emit / span_begin / "
                    "span_end) so level gating stays coherent",
                )
            return
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in self._INTERNAL_TABLES):
                yield self.finding(
                    ctx, node,
                    f"write into registry internals "
                    f"'.{target.value.attr}[...]'; instruments are "
                    "created through MetricsRegistry.counter/gauge/"
                    "histogram only",
                )


def _bound_names(stmt: ast.stmt) -> Iterable[str]:
    """Names a top-level statement binds (``*`` for a star import)."""
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            yield "*" if alias.name == "*" else (alias.asname or alias.name)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield stmt.name
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield from _target_names(target)
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        if stmt.value is not None:
            yield stmt.target.id
    elif isinstance(stmt, (ast.If, ast.Try)):
        for body in _nested_bodies(stmt):
            for sub in body:
                yield from _bound_names(sub)


def _nested_bodies(stmt: ast.stmt):
    if isinstance(stmt, ast.If):
        yield stmt.body
        yield stmt.orelse
    elif isinstance(stmt, ast.Try):
        yield stmt.body
        yield stmt.orelse
        yield stmt.finalbody
        for handler in stmt.handlers:
            yield handler.body


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _all_assignment(stmt: ast.stmt):
    """(names, is_literal) if ``stmt`` assigns ``__all__``, else None."""
    value = None
    if isinstance(stmt, ast.Assign):
        if any(isinstance(t, ast.Name) and t.id == "__all__"
               for t in stmt.targets):
            value = stmt.value
    elif (isinstance(stmt, ast.AnnAssign)
          and isinstance(stmt.target, ast.Name)
          and stmt.target.id == "__all__"):
        value = stmt.value
    if value is None:
        return None
    if not isinstance(value, (ast.List, ast.Tuple)):
        return [], False
    names: List[str] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append(element.value)
        else:
            return [], False
    return names, True


def default_rules() -> Sequence[LintRule]:
    """Fresh instances of every shallow rule, in rule-ID order.

    Reads the shared registry in :mod:`repro.checkers.framework` — the
    same one the flow pass registers into — so this module's only
    registration boilerplate is the ``@register_rule`` decorator.
    """
    return make_rules("shallow")
