"""Violation accumulation for the runtime sanitizers.

A :class:`SanitizerReport` collects :class:`Violation` records so tests
can make assertions like "this forced desync was caught with the right
PPN" or "this whole integration run stayed clean".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SanitizerViolationError


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with whatever location data applies."""

    sanitizer: str
    message: str
    #: Physical page the breach concerns (shadow mismatch, PTE home).
    ppn: Optional[int] = None
    #: Physical address of the PTE involved (Pte/Tlb sanitizers).
    pte_paddr: Optional[int] = None
    bank: Optional[int] = None
    row: Optional[int] = None
    #: Simulated time the breach was detected.
    at_ns: int = 0

    def format(self) -> str:
        """Human-readable one-liner."""
        where = []
        if self.ppn is not None:
            where.append(f"ppn={self.ppn:#x}")
        if self.pte_paddr is not None:
            where.append(f"pte_paddr={self.pte_paddr:#x}")
        if self.bank is not None:
            where.append(f"bank={self.bank}")
        if self.row is not None:
            where.append(f"row={self.row}")
        suffix = f" [{' '.join(where)}]" if where else ""
        return f"{self.sanitizer}: {self.message}{suffix} @ {self.at_ns}ns"


@dataclass
class SanitizerReport:
    """Accumulated violations of one sanitized kernel."""

    violations: List[Violation] = field(default_factory=list)
    #: Number of checkpoint sweeps performed (diagnostics).
    checkpoints: int = 0

    def record(self, violation: Violation) -> Violation:
        """Append one violation and return it."""
        self.violations.append(violation)
        return violation

    def __len__(self) -> int:
        return len(self.violations)

    def by_sanitizer(self, name: str) -> List[Violation]:
        """Violations recorded by one sanitizer."""
        return [v for v in self.violations if v.sanitizer == name]

    def clear(self) -> None:
        """Drop every recorded violation (between test phases)."""
        self.violations.clear()

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerViolationError` if anything was caught."""
        if self.violations:
            summary = "; ".join(v.format() for v in self.violations[:8])
            more = len(self.violations) - 8
            if more > 0:
                summary += f"; +{more} more"
            raise SanitizerViolationError(
                f"{len(self.violations)} sanitizer violation(s): {summary}"
            )
