"""Correctness tooling: custom lint pass + runtime invariant sanitizers.

Two halves:

* :mod:`repro.checkers.lint` — an AST lint with repo-specific rules
  (RPR001..RPR008), runnable as ``python -m repro.checkers.lint src/``
  or via the ``repro-lint`` entry point.
* :mod:`repro.checkers.sanitizers` — runtime invariant checks that
  install at the simulation's choke points and accumulate violations
  into a :class:`~repro.checkers.report.SanitizerReport`.

See the "Correctness tooling" sections of README.md and DESIGN.md.
"""

from .framework import Finding, LintContext, LintRule, lint_source
from .report import SanitizerReport, Violation
from .rules import default_rules
from .sanitizers import (
    SanitizerManager,
    check_window,
    check_window_config,
    install_sanitizers,
    sanitized,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "lint_source",
    "SanitizerReport",
    "Violation",
    "default_rules",
    "SanitizerManager",
    "check_window",
    "check_window_config",
    "install_sanitizers",
    "sanitized",
]
