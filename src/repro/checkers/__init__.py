"""Correctness tooling: lint passes + runtime invariant sanitizers.

Three halves:

* :mod:`repro.checkers.lint` — a per-file AST lint with repo-specific
  rules (RPR001..RPR008), runnable as ``python -m repro.checkers.lint
  src/`` or via the ``repro-lint`` entry point.
* :mod:`repro.checkers.flow` — a whole-program flow pass (RPR009..
  RPR012: trace purity, RNG provenance, snapshot safety, sweep
  picklability), runnable as ``repro-lint --deep`` or the standalone
  ``repro-analyze`` CLI.
* :mod:`repro.checkers.sanitizers` — runtime invariant checks that
  install at the simulation's choke points and accumulate violations
  into a :class:`~repro.checkers.report.SanitizerReport`.

See the "Correctness tooling" sections of README.md and DESIGN.md
(§6 runtime, §9 static).
"""

from .framework import (
    Finding,
    LintContext,
    LintRule,
    SourceFile,
    lint_source,
    make_rules,
    register_rule,
    registered_rule_classes,
)
from .report import SanitizerReport, Violation
from .rules import default_rules
from .sanitizers import (
    SanitizerManager,
    check_window,
    check_window_config,
    install_sanitizers,
    sanitized,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "SourceFile",
    "lint_source",
    "make_rules",
    "register_rule",
    "registered_rule_classes",
    "SanitizerReport",
    "Violation",
    "default_rules",
    "SanitizerManager",
    "check_window",
    "check_window_config",
    "install_sanitizers",
    "sanitized",
]
