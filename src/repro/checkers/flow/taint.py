"""Reachability over the resolved call graph.

The flow rules all reduce to the same question — *starting from these
seed functions, what does the program transitively reach?* — so the BFS
lives here once.  The closure records a parent edge per reached
function, which lets a rule print the exact call chain that carries a
hazard (``payload -> helper -> SimClock read``) instead of a bare
"something somewhere touches the clock".

Propagation can be *stopped* at modules matching ``stop_paths``: RPR009
uses this to let ``repro/trace/`` read the clock (timestamping is the
trace hub's job) without laundering reachability through it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from ..framework import path_matches
from .callgraph import Program

__all__ = ["closure_from", "chain_to"]


def closure_from(
    program: Program,
    seeds: Iterable[str],
    stop_paths: Sequence[str] = (),
) -> Dict[str, Optional[str]]:
    """BFS closure of callees from ``seeds``.

    Returns ``reached qname -> parent qname`` (``None`` for seeds).
    Functions defined under a ``stop_paths`` entry are *reached* (they
    appear in the map) but do not propagate further.
    """
    parents: Dict[str, Optional[str]] = {}
    queue: deque = deque()
    for seed in seeds:
        if seed not in parents:
            parents[seed] = None
            queue.append(seed)
    while queue:
        current = queue.popleft()
        fn = program.table.function(current)
        if fn is not None and stop_paths and \
                path_matches(fn.rel_path, stop_paths):
            continue
        for callee in program.callees(current):
            if callee not in parents:
                parents[callee] = current
                queue.append(callee)
    return parents


def chain_to(parents: Dict[str, Optional[str]], qname: str) -> List[str]:
    """The seed-to-``qname`` call chain recorded by :func:`closure_from`."""
    out = [qname]
    while True:
        parent = parents.get(out[-1])
        if parent is None:
            break
        out.append(parent)
    return list(reversed(out))
