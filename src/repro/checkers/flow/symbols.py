"""Cross-module symbol table for the whole-program flow pass.

The per-file lint (:mod:`repro.checkers.rules`) sees one AST at a time,
so it cannot know that ``from .a import helper`` in one module re-exports
a function defined three modules away, or that ``Random`` in
``repro.rng`` is an alias for :class:`random.Random`.  This module
parses an entire package into :class:`ModuleInfo` records — top-level
functions, classes with their methods and base classes, import bindings,
star imports, and module-level aliases — and resolves dotted names
across module boundaries with a bounded, cycle-safe walk.

Resolution returns one of four shapes:

* :class:`FunctionInfo` — a function or method defined in the program;
* :class:`ClassInfo` — a class defined in the program;
* :class:`ModuleInfo` — a module of the program;
* :class:`External` — a dotted name that leaves the program (stdlib,
  third-party), e.g. ``random.Random`` or ``multiprocessing.Pool``.

``External`` is load-bearing: RPR010 keys on calls resolving to
``random.Random`` no matter how many re-export or alias hops the name
took to get there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..framework import SourceFile

__all__ = [
    "External",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name_for",
    "package_root_of",
]

#: Maximum re-export / alias hops a single resolution may take.
_MAX_DEPTH = 24


@dataclass(frozen=True)
class External:
    """A dotted name that resolves outside the analysed program."""

    dotted: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<external {self.dotted}>"


@dataclass
class FunctionInfo:
    """One function or method defined in the program."""

    qname: str
    module: str
    rel_path: str
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    #: Enclosing class qname for methods, ``None`` for plain functions.
    cls: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class defined in the program."""

    qname: str
    module: str
    rel_path: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Raw (dotted) base-class expressions, resolved lazily.
    bases: List[str] = field(default_factory=list)
    #: ``self.attr`` -> candidate class qnames (filled by the call-graph
    #: builder's bounded alias pass).
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``self.attr`` -> callable refs stored on the instance (resolved
    #: FunctionInfo/ClassInfo/External objects) — catches RNG-factory
    #: laundering through ``self._factory = Random``.
    attr_refs: Dict[str, Set[object]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the program."""

    name: str
    rel_path: str
    source_file: SourceFile
    is_package: bool
    #: Local name -> absolute dotted target (``repro.rng.derive_rng``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Modules star-imported at top level.
    star_imports: List[str] = field(default_factory=list)
    #: Module-level ``name = other.thing`` aliases (raw dotted RHS).
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Every top-level binding (for module-global read detection).
    bindings: Set[str] = field(default_factory=set)

    @property
    def tree(self) -> ast.Module:
        return self.source_file.tree

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


def package_root_of(path: Path) -> Path:
    """The topmost package directory containing ``path``.

    Ascends while the parent directory is itself a package (has an
    ``__init__.py``), so ``src/repro/core/tracer.py`` maps to
    ``src/repro``.
    """
    directory = path if path.is_dir() else path.parent
    while (directory / "__init__.py").exists() and \
            (directory.parent / "__init__.py").exists():
        directory = directory.parent
    return directory


def module_name_for(file_path: Path, root: Path) -> str:
    """Dotted module name of ``file_path`` under package ``root``."""
    rel = file_path.resolve().relative_to(root.resolve())
    parts = [root.name] + list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-len(".py")]
    return ".".join(parts)


def _dotted_of(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class SymbolTable:
    """Every module of one (or more) packages, with name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------ build
    @classmethod
    def build(cls, sources: Sequence[Tuple[SourceFile, str]]) -> "SymbolTable":
        """Index ``(source_file, dotted_module_name)`` pairs."""
        table = cls()
        for sf, module_name in sources:
            table.modules[module_name] = _index_module(sf, module_name)
        return table

    @classmethod
    def from_root(cls, root: Path) -> "SymbolTable":
        """Parse every ``.py`` file under package directory ``root``."""
        sources: List[Tuple[SourceFile, str]] = []
        for path in sorted(root.rglob("*.py")):
            sf = SourceFile.load(path)
            sources.append((sf, module_name_for(path, root)))
        return cls.build(sources)

    # ---------------------------------------------------------- resolve
    def resolve(self, module: str, dotted: str,
                _seen: Optional[Set[Tuple[str, str]]] = None):
        """Resolve ``dotted`` as seen from inside ``module``.

        Follows imports, star imports, module-level aliases and
        re-export chains across the whole program (cycle-safe, bounded).
        Returns FunctionInfo / ClassInfo / ModuleInfo / External / None.
        """
        seen = _seen if _seen is not None else set()
        key = (module, dotted)
        if key in seen or len(seen) > _MAX_DEPTH:
            return None
        seen.add(key)
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")

        if head in info.classes:
            cls_info = info.classes[head]
            if not rest:
                return cls_info
            method = cls_info.methods.get(rest)
            return method
        if head in info.functions:
            return info.functions[head] if not rest else None
        if head in info.imports:
            target = info.imports[head]
            return self.resolve_absolute(
                f"{target}.{rest}" if rest else target, _seen=seen)
        if head in info.aliases:
            target = info.aliases[head]
            return self.resolve(
                module, f"{target}.{rest}" if rest else target, _seen=seen)
        # Submodule access from a package (``pkg.sub`` bound implicitly).
        child = f"{module}.{head}" if info.is_package else None
        if child and child in self.modules:
            if not rest:
                return self.modules[child]
            return self.resolve(child, rest, _seen=seen)
        for star in info.star_imports:
            found = self.resolve_absolute(
                f"{star}.{dotted}", _seen=seen)
            if found is not None and not isinstance(found, External):
                return found
        return None

    def resolve_absolute(self, dotted: str,
                         _seen: Optional[Set[Tuple[str, str]]] = None):
        """Resolve an absolute dotted path (``repro.rng.Random``).

        Unknown top-level packages resolve to :class:`External`.
        """
        parts = dotted.split(".")
        # Longest known module prefix wins.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = ".".join(parts[cut:])
                if not rest:
                    return self.modules[prefix]
                return self.resolve(prefix, rest, _seen=_seen)
        return External(dotted)

    # ----------------------------------------------------------- lookup
    def function(self, qname: str) -> Optional[FunctionInfo]:
        """A FunctionInfo by fully qualified name, or ``None``."""
        for cut in (2, 1):
            parts = qname.rsplit(".", cut)
            if len(parts) < cut + 1:
                continue
            module = parts[0]
            info = self.modules.get(module)
            if info is None:
                continue
            if cut == 1:
                found = info.functions.get(parts[1])
                if found is not None:
                    return found
            else:
                cls_info = info.classes.get(parts[1])
                if cls_info is not None:
                    return cls_info.methods.get(parts[2])
        return None

    def class_info(self, qname: str) -> Optional[ClassInfo]:
        """A ClassInfo by fully qualified name, or ``None``."""
        module, _, name = qname.rpartition(".")
        info = self.modules.get(module)
        return info.classes.get(name) if info else None

    def method_lookup(self, cls_info: ClassInfo, name: str,
                      _seen: Optional[Set[str]] = None
                      ) -> Optional[FunctionInfo]:
        """``name`` on ``cls_info`` or (depth-first) its program bases."""
        seen = _seen if _seen is not None else set()
        if cls_info.qname in seen:
            return None
        seen.add(cls_info.qname)
        if name in cls_info.methods:
            return cls_info.methods[name]
        for base in cls_info.bases:
            resolved = self.resolve(cls_info.module, base)
            if isinstance(resolved, ClassInfo):
                found = self.method_lookup(resolved, name, _seen=seen)
                if found is not None:
                    return found
        return None

    def all_functions(self) -> List[FunctionInfo]:
        """Every function and method in the program, sorted by qname."""
        out: List[FunctionInfo] = []
        for info in self.modules.values():
            out.extend(info.functions.values())
            for cls_info in info.classes.values():
                out.extend(cls_info.methods.values())
        return sorted(out, key=lambda fn: fn.qname)


# ------------------------------------------------------------- indexing
def _index_module(sf: SourceFile, module_name: str) -> ModuleInfo:
    is_package = sf.rel_path.endswith("__init__.py")
    info = ModuleInfo(
        name=module_name,
        rel_path=sf.rel_path,
        source_file=sf,
        is_package=is_package,
    )
    for stmt in _top_level_statements(sf.tree):
        _index_statement(info, stmt)
    return info


def _top_level_statements(tree: ast.Module):
    """Module body, looking through top-level ``if``/``try`` guards."""
    stack = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, ast.If):
            stack = stmt.body + stmt.orelse + stack
            continue
        if isinstance(stmt, ast.Try):
            handler_bodies: List[ast.stmt] = []
            for handler in stmt.handlers:
                handler_bodies.extend(handler.body)
            stack = (stmt.body + stmt.orelse + stmt.finalbody
                     + handler_bodies + stack)
            continue
        yield stmt


def _index_statement(info: ModuleInfo, stmt: ast.stmt) -> None:
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            if alias.asname:
                info.imports[alias.asname] = alias.name
                info.bindings.add(alias.asname)
            else:
                top = alias.name.split(".")[0]
                info.imports[top] = top
                info.bindings.add(top)
    elif isinstance(stmt, ast.ImportFrom):
        base = _import_base(info, stmt)
        if base is None:
            return
        for alias in stmt.names:
            if alias.name == "*":
                info.star_imports.append(base)
                continue
            bound = alias.asname or alias.name
            info.imports[bound] = f"{base}.{alias.name}" if base else alias.name
            info.bindings.add(bound)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        info.functions[stmt.name] = FunctionInfo(
            qname=f"{info.name}.{stmt.name}",
            module=info.name,
            rel_path=info.rel_path,
            name=stmt.name,
            node=stmt,
        )
        info.bindings.add(stmt.name)
    elif isinstance(stmt, ast.ClassDef):
        info.classes[stmt.name] = _index_class(info, stmt)
        info.bindings.add(stmt.name)
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            info.bindings.add(target.id)
            if target.id == "__all__":
                continue
            dotted = _dotted_of(stmt.value)
            if dotted is not None:
                info.aliases[target.id] = dotted
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        info.bindings.add(stmt.target.id)
        if stmt.value is not None:
            dotted = _dotted_of(stmt.value)
            if dotted is not None and stmt.target.id != "__all__":
                info.aliases[stmt.target.id] = dotted


def _import_base(info: ModuleInfo, stmt: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted base a ``from X import ...`` resolves against."""
    if stmt.level == 0:
        return stmt.module or ""
    package_parts = info.package.split(".") if info.package else []
    strip = stmt.level - 1
    if strip > len(package_parts):
        return None
    base_parts = package_parts[:len(package_parts) - strip] if strip else \
        package_parts
    if stmt.module:
        base_parts = base_parts + stmt.module.split(".")
    return ".".join(base_parts)


def _index_class(info: ModuleInfo, stmt: ast.ClassDef) -> ClassInfo:
    qname = f"{info.name}.{stmt.name}"
    cls_info = ClassInfo(
        qname=qname,
        module=info.name,
        rel_path=info.rel_path,
        name=stmt.name,
        node=stmt,
    )
    for base in stmt.bases:
        dotted = _dotted_of(base)
        if dotted is not None:
            cls_info.bases.append(dotted)
    for sub in stmt.body:
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls_info.methods[sub.name] = FunctionInfo(
                qname=f"{qname}.{sub.name}",
                module=info.name,
                rel_path=info.rel_path,
                name=sub.name,
                node=sub,
                cls=qname,
            )
    return cls_info
