"""Command-line driver for the whole-program flow pass.

Usage::

    repro-analyze src/repro                  # text findings
    repro-analyze src/repro --check --json   # CI gate, JSON report
    repro-analyze src/repro --graph          # resolved call-graph dump
    repro-analyze src/repro --write-baseline # grandfather current findings

Exit codes follow :mod:`repro.cli_common`: 0 clean (or only
grandfathered findings), 1 fresh findings, 2 bad invocation / parse
error.

Baselines: a ``.repro-analyze-baseline.json`` next to (or above) the
analysed root grandfathers known findings by line-independent
fingerprint, so the gate only fails on *new* violations.  The intent is
for the committed baseline to stay empty; anything grandfathered needs
a rationale in the PR that added it.
"""

from __future__ import annotations

import json
import sys

# Wall-time reporting for the analyzer itself (a host tool measuring its
# own runtime, not simulated time — the sim-clock rule does not apply).
import time  # repro-lint: disable=RPR001
from pathlib import Path
from typing import List, Optional, Sequence, Set

from ...cli_common import (
    EXIT_CHECK_FAILED,
    EXIT_OK,
    EXIT_USAGE,
    add_check_option,
    add_json_option,
    add_out_option,
    build_parser,
)
from ..framework import Finding
from .callgraph import CallGraphError, Program
from .rules_flow import FlowRule, flow_rules, run_flow_rules

__all__ = ["BASELINE_NAME", "load_baseline", "main"]

BASELINE_NAME = ".repro-analyze-baseline.json"


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints grandfathered by a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    fingerprints = data.get("fingerprints", [])
    if not isinstance(fingerprints, list):
        raise ValueError(f"{path}: 'fingerprints' must be a list")
    return {str(fp) for fp in fingerprints}


def _default_baseline(root: Path) -> Optional[Path]:
    """Nearest ``.repro-analyze-baseline.json`` at or above ``root``."""
    for directory in [root] + list(root.parents):
        candidate = directory / BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def _select_rules(spec: Optional[str]) -> Sequence[FlowRule]:
    rules = flow_rules()
    if not spec:
        return rules
    wanted = {token.strip().upper()
              for token in spec.split(",") if token.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown flow rule IDs: {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return tuple(rule for rule in rules if rule.rule_id in wanted)


def _emit(text: str, destination: Optional[str]) -> None:
    if destination:
        Path(destination).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.checkers.flow.analyze``."""
    parser = build_parser(
        "repro-analyze",
        "Whole-program determinism analyzer for the SoftTRR "
        "reproduction (flow rules RPR009..RPR012).")
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyse (default: src/repro)")
    add_json_option(parser)
    add_check_option(
        parser, "gate mode: exit 1 on any non-grandfathered finding")
    add_out_option(
        parser, help_text="write the JSON report / graph dump to PATH")
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated flow rule IDs to run (default: all)")
    parser.add_argument(
        "--graph", action="store_true",
        help="dump the resolved call graph as JSON and exit")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: nearest {BASELINE_NAME})")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the known flow rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in flow_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return EXIT_OK

    started = time.perf_counter()  # repro-lint: disable=RPR001
    try:
        rules = _select_rules(args.rules)
        program = Program.from_root(args.root)
    except (CallGraphError, FileNotFoundError, ValueError) as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except SyntaxError as exc:
        print(f"repro-analyze: parse error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.graph:
        _emit(json.dumps(program.graph_dict(), indent=2, sort_keys=True),
              args.out)
        return EXIT_OK

    findings = run_flow_rules(program, rules)
    wall_time_s = round(time.perf_counter() - started, 4)  # repro-lint: disable=RPR001

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline) if args.baseline else \
        _default_baseline(root)
    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else \
            (baseline_path or root.parent / BASELINE_NAME)
        target.write_text(json.dumps(
            {"fingerprints": sorted(f.fingerprint() for f in findings)},
            indent=2) + "\n", encoding="utf-8")
        print(f"repro-analyze: wrote {len(findings)} fingerprint(s) "
              f"to {target}", file=sys.stderr)
        return EXIT_OK

    grandfathered_fps: Set[str] = set()
    if baseline_path is not None:
        try:
            grandfathered_fps = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-analyze: bad baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
    fresh: List[Finding] = [
        f for f in findings if f.fingerprint() not in grandfathered_fps]
    grandfathered = len(findings) - len(fresh)

    report = {
        "root": str(args.root),
        "modules": program.module_count(),
        "functions": len(program.facts),
        "rules": [rule.rule_id for rule in rules],
        "findings": [f.as_dict() for f in fresh],
        "count": len(fresh),
        "grandfathered": grandfathered,
        "wall_time_s": wall_time_s,
    }
    try:
        if args.json or args.out:
            text = json.dumps(report, indent=2)
            _emit(text, args.out)
            if args.out and not args.json:
                for finding in fresh:
                    print(finding.format_text())
        else:
            for finding in fresh:
                print(finding.format_text())
            summary = (f"{len(fresh)} finding(s)"
                       + (f", {grandfathered} grandfathered"
                          if grandfathered else "")
                       + f" across {program.module_count()} module(s) "
                         f"in {wall_time_s}s")
            print(summary, file=sys.stderr)
    except BrokenPipeError:  # `repro-analyze ... | head` is fine
        sys.stderr.close()
    return EXIT_CHECK_FAILED if fresh else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
