"""Whole-program flow rules RPR009–RPR012.

Each rule is the static shadow of a runtime invariant the differential
test suite checks dynamically (DESIGN.md §9 maps them one-to-one):

* RPR009 — trace purity: nothing reachable from a trace/span payload may
  read the simulated clock or draw randomness (trace-on ≡ trace-off).
* RPR010 — RNG provenance: every ``random.Random`` flows from
  ``repro.rng.derive_rng``, even through alias / attribute laundering.
* RPR011 — snapshot safety: cross-object wrappers (installed closures,
  stored bound methods) must belong to a class ``Machine.snapshot``
  uninstalls, or be cleared by a registered class's ``uninstall``.
* RPR012 — sweep picklability: worker-pool callables must be top-level
  functions that do not read globals mutated outside module init.
* RPR013 — tracker layering: ``Tracker`` subclasses observe through the
  ``ActivationFeed`` and actuate through queued refreshes only; calling
  into (or constructing) ``DramModule``/``BankState`` from tracker code
  collapses the observation/policy/actuation layering.
* RPR014 — pattern-compile purity: nothing reachable from the pattern
  DSL's compile surface (``patterns/lang.py``, ``patterns/parser.py``,
  ``patterns/compile.py``) may read the simulated clock or draw
  randomness outside ``derive_rng`` — compiling a pattern twice must
  be indistinguishable from compiling it once.

Rules subclass :class:`FlowRule` and register with
``@register_rule(kind="flow")`` — the same registry the shallow rules
use, so ``--list-rules`` and rule-ID selection see one namespace.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..framework import (
    Finding,
    filter_suppressed,
    make_rules,
    path_matches,
    register_rule,
)
from .callgraph import FunctionFacts, Program
from .taint import chain_to, closure_from

__all__ = [
    "FlowRule",
    "TracePurityRule",
    "RngProvenanceRule",
    "SnapshotSafetyRule",
    "SweepPicklabilityRule",
    "TrackerLayeringRule",
    "PatternPurityRule",
    "flow_rules",
    "run_flow_rules",
]


class FlowRule:
    """Base class for one whole-program rule.

    Unlike :class:`~repro.checkers.framework.LintRule` (one file at a
    time), a flow rule sees the entire :class:`Program` at once and
    implements :meth:`check_program`.
    """

    rule_id: str = "RPR000"
    description: str = ""
    #: Files (exact) / directories (trailing ``/``) exempt from findings.
    allowed_paths: Tuple[str, ...] = ()

    def check_program(self, program: Program) -> Iterable[Finding]:
        raise NotImplementedError

    def exempt(self, rel_path: str) -> bool:
        return path_matches(rel_path, self.allowed_paths)

    def finding(self, facts: FunctionFacts, line: int, col: int,
                message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=facts.fn.rel_path,
            line=line,
            col=col,
            message=message,
            symbol=facts.fn.qname,
        )


@register_rule(kind="flow")
class TracePurityRule(FlowRule):
    """RPR009: trace payloads must not reach the clock or any RNG."""

    rule_id = "RPR009"
    description = ("functions reachable from a trace/span payload must "
                   "not read SimClock or draw randomness "
                   "(static trace-on ≡ trace-off)")
    allowed_paths = ("tests/",)
    #: The trace hub legitimately timestamps events — it neither reports
    #: nor propagates (reachability stops at its module boundary).
    trace_paths: Tuple[str, ...] = ("repro/trace/",)

    def check_program(self, program: Program) -> Iterable[Finding]:
        findings: List[Finding] = []
        for facts in program.facts.values():
            if self.exempt(facts.fn.rel_path) or \
                    path_matches(facts.fn.rel_path, self.trace_paths):
                continue
            for emission in facts.emissions:
                findings.extend(self._check_emission(program, facts, emission))
        return findings

    def _check_emission(self, program: Program, facts: FunctionFacts,
                        emission) -> Iterable[Finding]:
        out: List[Finding] = []
        for desc in emission.direct_clock:
            out.append(self.finding(
                facts, emission.line, emission.col,
                f"payload of {emission.method}() reads the simulated "
                f"clock ({desc.split(' at line')[0]}); compute the value "
                "before the guarded emit"))
        for desc in emission.direct_rng:
            out.append(self.finding(
                facts, emission.line, emission.col,
                f"payload of {emission.method}() draws randomness "
                f"({desc.split(' at line')[0]}); tracing must not "
                "perturb RNG streams"))
        parents = closure_from(
            program, emission.payload_internal, stop_paths=self.trace_paths)
        for qname in sorted(parents):
            reached = program.function_facts(qname)
            if reached is None:
                continue
            if path_matches(reached.fn.rel_path, self.trace_paths):
                continue
            hazards: List[str] = []
            if reached.clock_reads:
                hazards.append(reached.clock_reads[0][1])
            if reached.rng_uses:
                hazards.append(reached.rng_uses[0][1])
            if not hazards:
                continue
            chain = " -> ".join(chain_to(parents, qname))
            out.append(self.finding(
                facts, emission.line, emission.col,
                f"payload of {emission.method}() reaches {qname} which "
                f"{'; '.join(hazards)} (via {chain}); trace-on must be "
                "bit-identical to trace-off"))
        return out


@register_rule(kind="flow")
class RngProvenanceRule(FlowRule):
    """RPR010: ``random.Random`` may only be constructed in ``rng.py``."""

    rule_id = "RPR010"
    description = ("random.Random must flow from repro.rng.derive_rng — "
                   "construction elsewhere (even via aliases or stored "
                   "factories) breaks seed-derivation provenance")
    #: The derivation module itself, wherever the package root sits.
    allowed_paths = ("rng.py", "tests/")

    def check_program(self, program: Program) -> Iterable[Finding]:
        findings: List[Finding] = []
        for facts in program.facts.values():
            if self.exempt(facts.fn.rel_path):
                continue
            for line, col, dotted in facts.external_calls:
                if not self._is_rng_constructor(dotted):
                    continue
                findings.append(self.finding(
                    facts, line, col,
                    f"constructs {dotted} directly; all RNG streams must "
                    "come from repro.rng.derive_rng so seeds stay "
                    "derivable and disjoint"))
        return findings

    @staticmethod
    def _is_rng_constructor(dotted: str) -> bool:
        if dotted.split(".")[0] != "random":
            return False
        tail = dotted.rsplit(".", 1)[-1]
        return tail in ("Random", "SystemRandom", "seed")


@register_rule(kind="flow")
class SnapshotSafetyRule(FlowRule):
    """RPR011: cross-object wrappers must be snapshot-registered."""

    rule_id = "RPR011"
    description = ("closures/bound methods installed across object "
                   "boundaries must belong to a class Machine.snapshot "
                   "uninstalls (or be cleared by a registered uninstall)")
    allowed_paths = ("tests/",)

    def check_program(self, program: Program) -> Iterable[Finding]:
        registered = self._registered_classes(program)
        if registered is None:
            # No Machine.snapshot in the program: nothing to check
            # against (fixture packages opt in by defining one).
            return []
        registered_classes, cleared_attrs = registered
        findings: List[Finding] = []
        for facts in program.facts.values():
            if self.exempt(facts.fn.rel_path):
                continue
            for install in facts.wrapper_installs:
                if install.target_is_self and \
                        install.value_kind != "foreign_method":
                    # A pure self-closure deepcopies with its holder.
                    continue
                owner = facts.fn.cls
                if owner is not None and owner in registered_classes:
                    continue
                if install.target_attr in cleared_attrs:
                    continue
                where = ("on itself" if install.target_is_self
                         else f"on a foreign object's .{install.target_attr}")
                findings.append(self.finding(
                    facts, install.line, install.col,
                    f"stores a {install.value_kind.replace('_', ' ')} "
                    f"{where} but {owner or facts.fn.qname} is not "
                    "uninstalled by Machine.snapshot and no registered "
                    "uninstall clears it; deepcopy would freeze a stale "
                    "wrapper"))
        return findings

    def _registered_classes(
        self, program: Program,
    ) -> Optional[Tuple[Set[str], Set[str]]]:
        """(classes snapshot uninstalls, attrs their uninstalls clear)."""
        snapshot_facts: List[FunctionFacts] = []
        for facts in program.facts.values():
            fn = facts.fn
            if fn.name == "snapshot" and fn.cls is not None and \
                    fn.cls.rsplit(".", 1)[-1] == "Machine":
                snapshot_facts.append(facts)
        if not snapshot_facts:
            return None
        registered: Set[str] = set()
        for facts in snapshot_facts:
            machine_cls = program.table.class_info(facts.fn.cls)
            for method, tail in facts.lifecycle_calls:
                if method != "uninstall":
                    continue
                registered.update(
                    program.global_attr_instances.get(tail, ()))
                if machine_cls is not None:
                    registered.update(
                        machine_cls.attr_types.get(tail, ()))
        cleared: Set[str] = set()
        for cls_qname in registered:
            uninstall = program.function_facts(f"{cls_qname}.uninstall")
            if uninstall is not None:
                cleared.update(uninstall.attr_set_names)
        return registered, cleared


@register_rule(kind="flow")
class SweepPicklabilityRule(FlowRule):
    """RPR012: pool workers must be top-level and capture-free."""

    rule_id = "RPR012"
    description = ("callables handed to worker pools must be top-level "
                   "functions that do not read globals mutated outside "
                   "module init (parallel ≡ serial)")
    allowed_paths = ("tests/",)

    _KIND_REASONS = {
        "lambda": "a lambda cannot be pickled to worker processes",
        "nested": "a nested function cannot be pickled to worker "
                  "processes",
        "bound_method": "a bound method drags its whole instance "
                        "through pickle",
        "method": "an unbound method is not importable by workers",
    }

    def check_program(self, program: Program) -> Iterable[Finding]:
        findings: List[Finding] = []
        for facts in program.facts.values():
            if self.exempt(facts.fn.rel_path):
                continue
            for sub in facts.pool_submissions:
                reason = self._reject(program, sub)
                if reason is None:
                    continue
                findings.append(self.finding(
                    facts, sub.line, sub.col,
                    f"{sub.api} worker {sub.display!r}: {reason}"))
        return findings

    def _reject(self, program: Program, sub) -> Optional[str]:
        if sub.kind in self._KIND_REASONS:
            return self._KIND_REASONS[sub.kind]
        if sub.kind != "toplevel" or sub.qname is None:
            return None  # unresolved: stay bounded, no guess
        worker = program.function_facts(sub.qname)
        if worker is None:
            return None
        mutated = program.mutated_globals.get(worker.fn.module, set())
        captured = sorted(worker.global_reads & mutated)
        if captured:
            return (f"top-level but reads module globals mutated after "
                    f"init ({', '.join(captured)}); worker processes "
                    "would see a stale copy")
        return None


@register_rule(kind="flow")
class TrackerLayeringRule(FlowRule):
    """RPR013: trackers see DRAM only through the activation feed."""

    rule_id = "RPR013"
    description = ("Tracker subclasses must not call into or construct "
                   "DramModule/BankState; policy code observes via the "
                   "ActivationFeed and actuates via queued refreshes only")
    allowed_paths = ("tests/",)
    #: Class tails a tracker must never reach (the substrate the feed
    #: and actuator encapsulate).
    forbidden_tails: Tuple[str, ...] = ("DramModule", "BankState")

    def check_program(self, program: Program) -> Iterable[Finding]:
        tracker_classes = self._tracker_classes(program)
        if not tracker_classes:
            return []
        findings: List[Finding] = []
        for facts in program.facts.values():
            if self.exempt(facts.fn.rel_path):
                continue
            if facts.fn.cls not in tracker_classes:
                continue
            line = facts.fn.node.lineno
            col = facts.fn.node.col_offset
            for qname in sorted(facts.calls):
                owner = self._owning_class_tail(program, qname)
                if owner in self.forbidden_tails:
                    findings.append(self.finding(
                        facts, line, col,
                        f"tracker method calls {qname} ({owner} internals);"
                        " trackers observe through the ActivationFeed and "
                        "actuate through queue_refresh only"))
            for cls_qname in sorted(facts.constructs):
                if cls_qname.rsplit(".", 1)[-1] in self.forbidden_tails:
                    findings.append(self.finding(
                        facts, line, col,
                        f"tracker method constructs {cls_qname}; the DRAM "
                        "substrate belongs to the observation layer, not "
                        "the tracking policy"))
        return findings

    def _tracker_classes(self, program: Program) -> Set[str]:
        """Qnames of every class that (transitively) subclasses Tracker."""
        from .symbols import ClassInfo

        table = program.table
        verdicts: dict = {}

        def is_tracker(cls_info, seen: Set[str]) -> bool:
            if cls_info.qname in verdicts:
                return verdicts[cls_info.qname]
            if cls_info.qname in seen:
                return False
            seen.add(cls_info.qname)
            result = cls_info.name == "Tracker"
            if not result:
                for base in cls_info.bases:
                    if base.rsplit(".", 1)[-1] == "Tracker":
                        result = True
                        break
                    resolved = table.resolve(cls_info.module, base)
                    if isinstance(resolved, ClassInfo) and \
                            is_tracker(resolved, seen):
                        result = True
                        break
            verdicts[cls_info.qname] = result
            return result

        out: Set[str] = set()
        for module in table.modules.values():
            for cls_info in module.classes.values():
                if is_tracker(cls_info, set()) and \
                        cls_info.name != "Tracker":
                    out.add(cls_info.qname)
        return out

    @staticmethod
    def _owning_class_tail(program: Program, qname: str) -> Optional[str]:
        info = program.table.function(qname)
        if info is None or info.cls is None:
            return None
        return info.cls.rsplit(".", 1)[-1]


@register_rule(kind="flow")
class PatternPurityRule(FlowRule):
    """RPR014: the pattern DSL's compile path must be effect-free."""

    rule_id = "RPR014"
    description = ("nothing reachable from the pattern DSL compile "
                   "surface (patterns/{lang,parser,compile}.py) may read "
                   "SimClock or draw RNG outside derive_rng — compile is "
                   "a pure function of source + bindings")
    allowed_paths = ("tests/",)
    #: The compile-time surface of the DSL: every function defined in
    #: these modules seeds the reachability closure.  Execution-side
    #: modules (``program.py``, ``scenario.py``, ``fuzz.py``) schedule
    #: real time and randomness by design and are deliberately absent.
    compile_paths: Tuple[str, ...] = (
        "patterns/lang.py", "patterns/parser.py", "patterns/compile.py")
    #: The seed-derivation module is the sanctioned RNG construction
    #: site (mirrors RPR010's exemption): reachability stops at its
    #: boundary and its body is not a hazard.
    derivation_paths: Tuple[str, ...] = ("rng.py",)

    def check_program(self, program: Program) -> Iterable[Finding]:
        seeds = self._seed_functions(program)
        if not seeds:
            return []
        parents = closure_from(
            program, seeds, stop_paths=self.derivation_paths)
        findings: List[Finding] = []
        for qname in sorted(parents):
            facts = program.function_facts(qname)
            if facts is None or self.exempt(facts.fn.rel_path):
                continue
            if path_matches(facts.fn.rel_path, self.derivation_paths):
                continue
            for line, desc in self._hazards(facts):
                chain = " -> ".join(chain_to(parents, qname))
                findings.append(self.finding(
                    facts, line, facts.fn.node.col_offset,
                    f"pattern compile path {desc} (via {chain}); "
                    "compilation must be a pure function of source and "
                    "bindings — time and randomness belong to plan "
                    "execution, not plan construction"))
        return findings

    def _seed_functions(self, program: Program) -> Set[str]:
        out: Set[str] = set()
        for facts in program.facts.values():
            rel = facts.fn.rel_path
            if self.exempt(rel):
                continue
            if path_matches(rel, self.compile_paths):
                out.add(facts.fn.qname)
        return out

    @staticmethod
    def _hazards(facts: FunctionFacts) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = list(facts.clock_reads)
        for line, desc in facts.rng_uses:
            if "derive_rng" in desc:
                # The sanctioned entry point: deriving a named stream is
                # deterministic in its arguments, so it keeps compile
                # pure even though it constructs an RNG.
                continue
            out.append((line, desc))
        return out


def flow_rules() -> Tuple[FlowRule, ...]:
    """Fresh instances of every registered flow rule, ID order."""
    return make_rules("flow")  # type: ignore[return-value]


def run_flow_rules(
    program: Program,
    rules: Optional[Iterable[FlowRule]] = None,
) -> List[Finding]:
    """Run flow ``rules`` over ``program``; suppressions honoured."""
    chosen = tuple(rules) if rules is not None else flow_rules()
    findings: List[Finding] = []
    for rule in chosen:
        findings.extend(rule.check_program(program))
    findings = filter_suppressed(findings, program.suppressions_by_path())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
