"""Whole-program flow analysis (``repro-analyze`` / ``repro-lint --deep``).

Layered on the per-file lint framework: :mod:`.symbols` builds a
cross-module symbol table, :mod:`.callgraph` resolves calls and collects
per-function facts, :mod:`.taint` runs reachability, and
:mod:`.rules_flow` implements RPR009–RPR012 on top.  :mod:`.analyze` is
the CLI.

Importing this package registers the flow rules in the shared registry.
"""

from .callgraph import CallGraphError, Program
from .rules_flow import (
    FlowRule,
    RngProvenanceRule,
    SnapshotSafetyRule,
    SweepPicklabilityRule,
    TracePurityRule,
    flow_rules,
    run_flow_rules,
)
from .symbols import (
    ClassInfo,
    External,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    module_name_for,
    package_root_of,
)
from .taint import chain_to, closure_from

__all__ = [
    "CallGraphError",
    "ClassInfo",
    "External",
    "FlowRule",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "RngProvenanceRule",
    "SnapshotSafetyRule",
    "SweepPicklabilityRule",
    "SymbolTable",
    "TracePurityRule",
    "chain_to",
    "closure_from",
    "flow_rules",
    "module_name_for",
    "package_root_of",
    "run_flow_rules",
]
