"""Call graph + per-function facts over the symbol table.

One scan per function produces a :class:`FunctionFacts` record: resolved
call edges (methods bound through the class layout, collaborators bound
through a bounded alias analysis of ``self.x = Collaborator(...)``
attributes), trace-emission sites with their payload callees, clock/RNG
touch points, wrapper installs over foreign attributes, and module-global
reads/writes.  :class:`Program` bundles the table, the facts and the
cross-cutting indexes the flow rules (RPR009–RPR012) consume.

Everything here is deliberately *bounded*: no fixpoint iteration beyond
two alias passes, no flow joins, no heap model.  Unresolvable calls stay
unresolved rather than over-approximated, so the rules err toward
missing an exotic construction instead of drowning the tree in false
positives — the same trade the per-file lint makes.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..framework import SourceFile
from .symbols import (
    ClassInfo,
    External,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CLOCK_READ_ATTRS",
    "CLOCK_MUTATOR_METHODS",
    "RNG_METHODS",
    "CallGraphError",
    "Emission",
    "FunctionFacts",
    "PoolSubmission",
    "Program",
    "WrapperInstall",
]

#: Attribute loads that constitute reading the simulated clock.
CLOCK_READ_ATTRS = frozenset({"now_ns", "now_ms"})
#: Method calls that mutate the simulated clock.
CLOCK_MUTATOR_METHODS = frozenset({"advance", "advance_to"})
#: ``random.Random`` draw methods: any call advances the stream.
RNG_METHODS = frozenset({
    "random", "randint", "randrange", "getrandbits", "randbytes",
    "shuffle", "sample", "choice", "choices", "uniform", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "betavariate", "gammavariate",
    "triangular",
})
#: Worker-pool submission methods (multiprocessing / concurrent.futures).
POOL_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap", "map_async",
    "starmap_async", "apply", "apply_async", "submit",
})
_TRACE_EMIT_METHODS = frozenset({"emit", "span_begin", "span_end"})
#: Builder-style methods assumed to return ``self`` for type chaining
#: (``FaultInjector(kernel, plan).install()``).
_CHAINING_METHODS = frozenset({"install", "replace"})
_BUILTIN_NAMES = frozenset(dir(builtins))


class CallGraphError(Exception):
    """A program could not be assembled (bad root, unparsable file)."""


# -------------------------------------------------- inferred value tags
@dataclass(frozen=True)
class _Instance:
    """Value known to be an instance of one of ``classes`` (qnames)."""

    classes: frozenset


@dataclass(frozen=True)
class _ExternalInstance:
    """Value known to be an instance of an external class."""

    dotted: str


@dataclass(frozen=True)
class _Ref:
    """Reference to a resolved symbol (not yet called)."""

    symbol: object  # FunctionInfo | ClassInfo | ModuleInfo | External


@dataclass(frozen=True)
class _LocalFunc:
    """A function defined locally in the scanned function's body."""

    name: str


# ----------------------------------------------------------- fact types
@dataclass
class Emission:
    """One ``trace.emit`` / ``span_begin`` / ``span_end`` call site."""

    line: int
    col: int
    method: str
    #: Program functions invoked inside the payload arguments.
    payload_internal: Set[str] = field(default_factory=set)
    #: External callables invoked inside the payload arguments.
    payload_external: Set[str] = field(default_factory=set)
    #: Attribute calls in the payload we could not bind.
    payload_unresolved: Set[str] = field(default_factory=set)
    #: Clock reads / RNG draws directly in the payload expression.
    direct_clock: List[str] = field(default_factory=list)
    direct_rng: List[str] = field(default_factory=list)


@dataclass
class WrapperInstall:
    """One closure / bound-method stored through an attribute."""

    line: int
    col: int
    target_attr: str
    #: Whether the store target is ``self.<attr>`` (holder pattern) or a
    #: foreign object's attribute (installer pattern).
    target_is_self: bool
    #: ``closure`` | ``bound_self_method`` | ``foreign_method``
    value_kind: str
    value_qname: Optional[str] = None


@dataclass
class PoolSubmission:
    """One callable handed to a worker pool / process constructor."""

    line: int
    col: int
    api: str
    #: ``toplevel`` | ``nested`` | ``lambda`` | ``bound_method`` |
    #: ``method`` | ``unresolved``
    kind: str
    qname: Optional[str] = None
    display: str = ""


@dataclass
class FunctionFacts:
    """Everything the flow rules need to know about one function."""

    fn: FunctionInfo
    calls: Set[str] = field(default_factory=set)
    constructs: Set[str] = field(default_factory=set)
    #: (line, col, dotted) for calls leaving the program.
    external_calls: List[Tuple[int, int, str]] = field(default_factory=list)
    unresolved_calls: Set[str] = field(default_factory=set)
    clock_reads: List[Tuple[int, str]] = field(default_factory=list)
    rng_uses: List[Tuple[int, str]] = field(default_factory=list)
    emissions: List[Emission] = field(default_factory=list)
    wrapper_installs: List[WrapperInstall] = field(default_factory=list)
    #: Attribute names this function assigns (any receiver) — the
    #: snapshot rule checks ``uninstall`` bodies restore wrapped attrs.
    attr_set_names: Set[str] = field(default_factory=set)
    #: ``install``/``uninstall`` calls: (method, receiver attr tail).
    lifecycle_calls: List[Tuple[str, str]] = field(default_factory=list)
    global_reads: Set[str] = field(default_factory=set)
    global_writes: Set[str] = field(default_factory=set)
    pool_submissions: List[PoolSubmission] = field(default_factory=list)


# --------------------------------------------------------------- program
class Program:
    """A whole analysed package: symbols, call graph, rule indexes."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.facts: Dict[str, FunctionFacts] = {}
        #: attribute name -> program classes ever stored through it
        #: (``kernel.sanitizers = self`` inside ``SanitizerManager``).
        self.global_attr_instances: Dict[str, Set[str]] = {}
        #: module name -> module globals rebound outside module init.
        self.mutated_globals: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------ build
    @classmethod
    def from_root(cls, root: Union[str, Path]) -> "Program":
        """Analyse every module under package directory ``root``."""
        root = Path(root)
        if not root.is_dir():
            raise CallGraphError(f"package root {root} is not a directory")
        if not (root / "__init__.py").exists():
            raise CallGraphError(
                f"{root} is not a package (no __init__.py); point "
                "repro-analyze at a package directory such as src/repro")
        sources = []
        for path in sorted(root.rglob("*.py")):
            sf = SourceFile.load(path)
            sources.append((sf, module_name_for(path, root)))
        return cls.from_sources(sources)

    @classmethod
    def from_sources(
            cls, sources: Sequence[Tuple[SourceFile, str]]) -> "Program":
        """Analyse pre-parsed ``(source_file, module_name)`` pairs.

        This is the AST-cache entry point: ``repro-lint --deep`` hands
        the very SourceFile objects the shallow pass already walked.
        """
        table = SymbolTable.build(sources)
        program = cls(table)
        # Two bounded alias passes: the first discovers attribute types
        # (``self.x = Collaborator(...)``), the second re-scans with the
        # discovered types available so attribute-hop calls bind.
        for final in (False, True):
            program.global_attr_instances = {}
            program.mutated_globals = {}
            for fn in table.all_functions():
                facts = _FunctionScanner(program, fn).scan()
                if final:
                    program.facts[fn.qname] = facts
        return program

    # ---------------------------------------------------------- queries
    def callees(self, qname: str) -> Set[str]:
        """Resolved program callees of ``qname`` (incl. constructors)."""
        facts = self.facts.get(qname)
        if facts is None:
            return set()
        out = set(facts.calls)
        for cls_qname in facts.constructs:
            init = f"{cls_qname}.__init__"
            if init in self.facts:
                out.add(init)
        return out

    def function_facts(self, qname: str) -> Optional[FunctionFacts]:
        return self.facts.get(qname)

    def suppressions_by_path(self) -> Dict[str, Dict[int, Set[str]]]:
        """Per-file suppression tables, for shared finding filtering."""
        return {
            info.rel_path: info.source_file.suppressions
            for info in self.table.modules.values()
        }

    def module_count(self) -> int:
        return len(self.table.modules)

    def graph_dict(self) -> Dict[str, object]:
        """JSON-ready dump of the resolved call graph (``--graph``)."""
        edges = {
            qname: sorted(self.callees(qname))
            for qname in sorted(self.facts)
        }
        return {
            "modules": sorted(self.table.modules),
            "functions": sorted(self.facts),
            "edges": {q: targets for q, targets in edges.items() if targets},
            "unresolved": {
                q: sorted(f.unresolved_calls)
                for q, f in sorted(self.facts.items())
                if f.unresolved_calls
            },
        }


# ------------------------------------------------------ function scanner
class _FunctionScanner:
    """One linear, in-order pass over a function body."""

    def __init__(self, program: Program, fn: FunctionInfo) -> None:
        self.program = program
        self.table = program.table
        self.fn = fn
        self.module = program.table.modules[fn.module]
        self.cls = program.table.class_info(fn.cls) if fn.cls else None
        self.facts = FunctionFacts(fn=fn)
        self.env: Dict[str, object] = {}
        self.locals: Set[str] = set()
        #: local name -> attribute tail it was read from
        #: (``manager = self.kernel.sanitizers`` -> ``sanitizers``).
        self.attr_tails: Dict[str, str] = {}
        self.declared_globals: Set[str] = set()
        for arg in _all_args(fn.node.args):
            self.locals.add(arg)

    # ------------------------------------------------------------ drive
    def scan(self) -> FunctionFacts:
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        return self.facts

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.env[stmt.name] = _LocalFunc(stmt.name)
            self.locals.add(stmt.name)
            # Nested bodies contribute facts to the enclosing function:
            # the closure executes (if ever) with these semantics.
            inner_locals = set(_all_args(stmt.args))
            saved = self.locals
            self.locals = self.locals | inner_locals
            for sub in stmt.body:
                self._stmt(sub)
            self.locals = saved
            return
        if isinstance(stmt, ast.ClassDef):
            self.locals.add(stmt.name)
            return
        if isinstance(stmt, ast.Global):
            self.declared_globals.update(stmt.names)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._local_import(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._expr(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    self._bind(stmt.target.id, value, stmt.value)
                elif isinstance(stmt.target, ast.Attribute):
                    self._attr_store(stmt.target, stmt.value, value, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._note_global_write(stmt.target.id)
            elif isinstance(stmt.target, (ast.Attribute, ast.Subscript)):
                self._expr(stmt.target.value)
            return
        if isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            for name in _target_names(stmt.target):
                self.locals.add(name)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._expr(item.context_expr)
                if item.optional_vars is not None and \
                        isinstance(item.optional_vars, ast.Name):
                    self._bind(item.optional_vars.id, value,
                               item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.Try):
            bodies = stmt.body + stmt.orelse + stmt.finalbody
            for handler in stmt.handlers:
                if handler.name:
                    self.locals.add(handler.name)
                bodies = bodies + handler.body
            for sub in bodies:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._expr(value)
            return
        if isinstance(stmt, ast.Delete):
            return
        # Anything else: visit embedded expressions generically.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.stmt):
                self._stmt(child)

    # ------------------------------------------------------- assignment
    def _assign(self, stmt: ast.Assign) -> None:
        value = self._expr(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, value, stmt.value)
            elif isinstance(target, ast.Attribute):
                self._attr_store(target, stmt.value, value, stmt)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for name in _target_names(target):
                    self.locals.add(name)
            elif isinstance(target, ast.Subscript):
                self._expr(target.value)

    def _bind(self, name: str, value: object,
              value_node: ast.expr) -> None:
        self._note_global_write(name)
        self.locals.add(name)
        self.env[name] = value
        tail = _attr_tail(value_node)
        if tail is not None:
            self.attr_tails[name] = tail
        else:
            self.attr_tails.pop(name, None)

    def _note_global_write(self, name: str) -> None:
        if name in self.declared_globals:
            self.facts.global_writes.add(name)
            self.program.mutated_globals.setdefault(
                self.module.name, set()).add(name)

    def _attr_store(self, target: ast.Attribute, value_node: ast.expr,
                    value: object, stmt: ast.stmt) -> None:
        attr = target.attr
        self.facts.attr_set_names.add(attr)
        receiver_is_self = (isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and self.cls is not None)
        self._expr(target.value)
        # Rebinding another module's global is a mutation of that
        # module's state (RPR012 cares who reads it from a worker).
        receiver = self._expr_quiet(target.value)
        if isinstance(receiver, _Ref) and \
                isinstance(receiver.symbol, ModuleInfo):
            self.program.mutated_globals.setdefault(
                receiver.symbol.name, set()).add(attr)
        # Instance stores feed the alias analysis.
        if isinstance(value, _Instance):
            bucket = self.program.global_attr_instances.setdefault(
                attr, set())
            bucket.update(value.classes)
            if receiver_is_self:
                self.cls.attr_types.setdefault(attr, set()).update(
                    value.classes)
            return
        # Callable refs stored on self (RNG-factory laundering, RPR010;
        # foreign bound methods, RPR011).
        if isinstance(value, _Ref):
            symbol = value.symbol
            if receiver_is_self and isinstance(
                    symbol, (FunctionInfo, ClassInfo, External)):
                self.cls.attr_refs.setdefault(attr, set()).add(symbol)
            if isinstance(symbol, FunctionInfo) and symbol.cls is not None:
                own = self.fn.cls
                if receiver_is_self and symbol.cls != own:
                    self.facts.wrapper_installs.append(WrapperInstall(
                        line=stmt.lineno, col=stmt.col_offset,
                        target_attr=attr, target_is_self=True,
                        value_kind="foreign_method",
                        value_qname=symbol.qname))
                elif not receiver_is_self and symbol.cls == own:
                    self.facts.wrapper_installs.append(WrapperInstall(
                        line=stmt.lineno, col=stmt.col_offset,
                        target_attr=attr, target_is_self=False,
                        value_kind="bound_self_method",
                        value_qname=symbol.qname))
            return
        # Local closures / lambdas installed over a foreign attribute.
        if isinstance(value, _LocalFunc) or isinstance(value_node, ast.Lambda):
            self.facts.wrapper_installs.append(WrapperInstall(
                line=stmt.lineno, col=stmt.col_offset,
                target_attr=attr, target_is_self=receiver_is_self,
                value_kind="closure",
                value_qname=(value.name
                             if isinstance(value, _LocalFunc) else None)))

    def _local_import(self, stmt: Union[ast.Import, ast.ImportFrom]) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                dotted = alias.name if alias.asname else alias.name.split(".")[0]
                self.locals.add(bound)
                self.env[bound] = _Ref(
                    self.table.resolve_absolute(dotted))
            return
        from .symbols import _import_base  # shared relative-import math

        base = _import_base(self.module, stmt)
        if base is None:
            return
        for alias in stmt.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            dotted = f"{base}.{alias.name}" if base else alias.name
            self.locals.add(bound)
            resolved = self.table.resolve_absolute(dotted)
            if resolved is not None:
                self.env[bound] = _Ref(resolved)

    # ------------------------------------------------------ expressions
    def _expr(self, expr: ast.expr) -> object:
        """Record facts for ``expr`` and return its inferred value."""
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Attribute):
            if expr.attr in CLOCK_READ_ATTRS:
                self.facts.clock_reads.append(
                    (expr.lineno, f"reads .{expr.attr}"))
            self._expr(expr.value)
            return self._expr_quiet(expr)
        if isinstance(expr, ast.Name):
            if (expr.id not in self.locals
                    and expr.id not in _BUILTIN_NAMES
                    and expr.id in self.module.bindings):
                self.facts.global_reads.add(expr.id)
            return self._expr_quiet(expr)
        if isinstance(expr, ast.Lambda):
            return None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, (ast.comprehension,)):
                self._expr(child.iter)
                for name in _target_names(child.target):
                    self.locals.add(name)
                for cond in child.ifs:
                    self._expr(cond)
        return None

    def _expr_quiet(self, expr: ast.expr) -> object:
        """Type/ref inference without recording facts (bounded)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return _Instance(frozenset({self.cls.qname}))
            if expr.id in self.env:
                return self.env[expr.id]
            if expr.id in self.locals or expr.id in _BUILTIN_NAMES:
                return None
            resolved = self.table.resolve(self.module.name, expr.id)
            return _Ref(resolved) if resolved is not None else None
        if isinstance(expr, ast.Attribute):
            return self._attr_value(self._expr_quiet(expr.value), expr.attr)
        if isinstance(expr, ast.Call):
            # getattr(x, "lit") behaves like x.lit for inference.
            if (isinstance(expr.func, ast.Name)
                    and expr.func.id == "getattr"
                    and len(expr.args) >= 2
                    and isinstance(expr.args[1], ast.Constant)
                    and isinstance(expr.args[1].value, str)):
                return self._attr_value(
                    self._expr_quiet(expr.args[0]), expr.args[1].value)
            callee = self._expr_quiet(expr.func)
            if isinstance(callee, _Ref):
                if isinstance(callee.symbol, ClassInfo):
                    return _Instance(frozenset({callee.symbol.qname}))
                if isinstance(callee.symbol, External):
                    return _ExternalInstance(callee.symbol.dotted)
            # Builder chaining: ``C(...).install()`` yields a C.
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _CHAINING_METHODS):
                base = self._expr_quiet(expr.func.value)
                if isinstance(base, _Instance):
                    return base
            return None
        return None

    def _attr_value(self, base: object, attr: str) -> object:
        if isinstance(base, _Instance):
            types: Set[str] = set()
            refs: Set[object] = set()
            method: Optional[FunctionInfo] = None
            for cls_qname in base.classes:
                cls_info = self.table.class_info(cls_qname)
                if cls_info is None:
                    continue
                types.update(cls_info.attr_types.get(attr, ()))
                refs.update(cls_info.attr_refs.get(attr, ()))
                if method is None:
                    method = self.table.method_lookup(cls_info, attr)
            if types:
                return _Instance(frozenset(types))
            if refs:
                return _Ref(next(iter(refs)))
            if method is not None:
                return _Ref(method)
            return None
        if isinstance(base, _Ref):
            symbol = base.symbol
            if isinstance(symbol, ModuleInfo):
                resolved = self.table.resolve(symbol.name, attr)
                return _Ref(resolved) if resolved is not None else None
            if isinstance(symbol, External):
                return _Ref(External(f"{symbol.dotted}.{attr}"))
            if isinstance(symbol, ClassInfo):
                method = self.table.method_lookup(symbol, attr)
                return _Ref(method) if method is not None else None
        if isinstance(base, _ExternalInstance):
            return None
        return None

    # ------------------------------------------------------------ calls
    def _call(self, call: ast.Call) -> object:
        self._record_call_facts(call)
        # Visit children for nested facts (payload args of the call).
        self._expr(call.func)
        for arg in call.args:
            self._expr(arg)
        for keyword in call.keywords:
            self._expr(keyword.value)
        return self._expr_quiet(call)

    def _record_call_facts(self, call: ast.Call) -> None:
        func = call.func
        # Trace emission sites come first: their payload analysis is
        # separate from the plain call-edge bookkeeping.
        if (isinstance(func, ast.Attribute)
                and func.attr in _TRACE_EMIT_METHODS
                and _mentions_trace(func.value)):
            self.facts.emissions.append(self._emission(call, func.attr))
        internal, external, constructs, unresolved = self._resolve_call(call)
        self.facts.calls.update(internal)
        self.facts.constructs.update(constructs)
        for dotted in external:
            self.facts.external_calls.append(
                (call.lineno, call.col_offset, dotted))
            root = dotted.split(".")[0]
            if root == "random" or dotted.endswith("random.Random"):
                self.facts.rng_uses.append(
                    (call.lineno, f"calls {dotted}"))
        self.facts.unresolved_calls.update(unresolved)
        # RNG draws and clock mutation by method name: distinctive
        # spellings (``.randint``, ``.advance``) on any receiver.
        if isinstance(func, ast.Attribute):
            if func.attr in RNG_METHODS:
                self.facts.rng_uses.append(
                    (call.lineno, f"calls .{func.attr}() (RNG draw)"))
            elif func.attr in CLOCK_MUTATOR_METHODS:
                self.facts.clock_reads.append(
                    (call.lineno, f"calls .{func.attr}() (clock mutation)"))
            elif func.attr in ("install", "uninstall"):
                tail = self._receiver_tail(func.value)
                if tail is not None:
                    self.facts.lifecycle_calls.append((func.attr, tail))
        for name in internal:
            if name.endswith(".derive_rng") or name == "derive_rng":
                self.facts.rng_uses.append(
                    (call.lineno, "calls derive_rng (new RNG stream)"))
        self._pool_submission(call, internal, external)

    def _resolve_call(
        self, call: ast.Call,
    ) -> Tuple[Set[str], Set[str], Set[str], Set[str]]:
        """(internal qnames, external dotted, constructed classes,
        unresolved method names) for one call."""
        internal: Set[str] = set()
        external: Set[str] = set()
        constructs: Set[str] = set()
        unresolved: Set[str] = set()
        func = call.func
        callee = self._expr_quiet(func)
        if isinstance(callee, _Ref):
            symbol = callee.symbol
            if isinstance(symbol, FunctionInfo):
                internal.add(symbol.qname)
            elif isinstance(symbol, ClassInfo):
                constructs.add(symbol.qname)
            elif isinstance(symbol, External):
                external.add(symbol.dotted)
            return internal, external, constructs, unresolved
        if isinstance(func, ast.Attribute):
            receiver = self._expr_quiet(func.value)
            if isinstance(receiver, _Instance):
                bound = False
                for cls_qname in receiver.classes:
                    cls_info = self.table.class_info(cls_qname)
                    if cls_info is None:
                        continue
                    method = self.table.method_lookup(cls_info, func.attr)
                    if method is not None:
                        internal.add(method.qname)
                        bound = True
                if not bound:
                    unresolved.add(func.attr)
            elif isinstance(receiver, _ExternalInstance):
                external.add(f"{receiver.dotted}.{func.attr}")
            else:
                unresolved.add(func.attr)
        elif isinstance(func, ast.Name):
            if func.id not in _BUILTIN_NAMES and func.id not in self.locals:
                unresolved.add(func.id)
        return internal, external, constructs, unresolved

    def _receiver_tail(self, expr: ast.expr) -> Optional[str]:
        """Last attribute hop of a receiver, through local aliases."""
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return self.attr_tails.get(expr.id)
        return None

    # -------------------------------------------------------- emissions
    def _emission(self, call: ast.Call, method: str) -> Emission:
        emission = Emission(
            line=call.lineno, col=call.col_offset, method=method)
        payload: List[ast.expr] = list(call.args)
        payload.extend(kw.value for kw in call.keywords)
        for expr in payload:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    internal, external, constructs, unresolved = \
                        self._resolve_call(node)
                    emission.payload_internal.update(internal)
                    for cls_qname in constructs:
                        init = f"{cls_qname}.__init__"
                        emission.payload_internal.add(init)
                    emission.payload_external.update(external)
                    emission.payload_unresolved.update(
                        u for u in unresolved if u not in _BUILTIN_NAMES)
                    if isinstance(node.func, ast.Attribute):
                        if node.func.attr in RNG_METHODS:
                            emission.direct_rng.append(
                                f".{node.func.attr}() at line {node.lineno}")
                        elif node.func.attr in CLOCK_MUTATOR_METHODS:
                            emission.direct_clock.append(
                                f".{node.func.attr}() at line {node.lineno}")
                    for dotted in external:
                        if dotted.split(".")[0] == "random":
                            emission.direct_rng.append(
                                f"{dotted} at line {node.lineno}")
                elif isinstance(node, ast.Attribute) and \
                        node.attr in CLOCK_READ_ATTRS:
                    emission.direct_clock.append(
                        f".{node.attr} at line {node.lineno}")
        return emission

    # -------------------------------------------------- pool submissions
    def _pool_submission(self, call: ast.Call, internal: Set[str],
                         external: Set[str]) -> None:
        func = call.func
        worker: Optional[ast.expr] = None
        api: Optional[str] = None
        if isinstance(func, ast.Attribute) and func.attr in POOL_METHODS:
            receiver = self._expr_quiet(func.value)
            looks_like_pool = (
                isinstance(receiver, _ExternalInstance)
                and ("Pool" in receiver.dotted
                     or "Executor" in receiver.dotted))
            if not looks_like_pool and isinstance(func.value, ast.Name):
                looks_like_pool = func.value.id in ("pool", "executor")
            if looks_like_pool and call.args:
                worker = call.args[0]
                api = f"pool.{func.attr}"
        if worker is None:
            # multiprocessing.Process(target=fn) and friends.
            for dotted in external:
                if dotted.endswith(".Process") or dotted.endswith(".Thread"):
                    for keyword in call.keywords:
                        if keyword.arg == "target":
                            worker = keyword.value
                            api = dotted
            if worker is None:
                return
        kind, qname = self._classify_callable(worker)
        self.facts.pool_submissions.append(PoolSubmission(
            line=call.lineno, col=call.col_offset, api=api or "pool",
            kind=kind, qname=qname,
            display=ast.unparse(worker)))

    def _classify_callable(
            self, expr: ast.expr) -> Tuple[str, Optional[str]]:
        if isinstance(expr, ast.Lambda):
            return "lambda", None
        value = self._expr_quiet(expr)
        if isinstance(value, _LocalFunc):
            return "nested", value.name
        if isinstance(value, _Ref) and isinstance(value.symbol, FunctionInfo):
            symbol = value.symbol
            if symbol.cls is not None:
                kind = "bound_method" if isinstance(expr, ast.Attribute) \
                    else "method"
                return kind, symbol.qname
            return "toplevel", symbol.qname
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return "bound_method", None
        return "unresolved", None


# --------------------------------------------------------------- helpers
def _all_args(args: ast.arguments) -> Iterable[str]:
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        for arg in group:
            yield arg.arg
    if args.vararg:
        yield args.vararg.arg
    if args.kwarg:
        yield args.kwarg.arg


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _attr_tail(expr: ast.expr) -> Optional[str]:
    """Final attribute hop of a pure attribute chain, else ``None``."""
    node = expr
    # getattr(x, "name", default) counts as x.name.
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "getattr" and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)):
        return node.args[1].value
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mentions_trace(expr: ast.expr) -> bool:
    """Whether a receiver chain names the trace hub (``self.trace``)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and "trace" in node.attr:
            return True
        if isinstance(node, ast.Name) and "trace" in node.id:
            return True
    return False
