"""Command-line driver for the repo-specific lint pass.

Usage::

    python -m repro.checkers.lint src/
    repro-lint src/ --format json
    repro-lint src/ --deep                 # + whole-program flow rules
    repro-lint src/repro/core/tracer.py --rules RPR003,RPR004

``--deep`` layers the flow pass (RPR009..RPR012, see
:mod:`repro.checkers.flow`) on top of the per-file rules.  Both passes
share one :class:`~repro.checkers.framework.SourceFile` per file, so a
deep run reads and parses every file exactly once.

Exit codes: 0 = clean, 1 = findings, 2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys

# Wall-time reporting for the lint run itself (host tooling measuring
# its own runtime, not simulated time).
import time  # repro-lint: disable=RPR001
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .framework import (
    Finding,
    LintRule,
    SourceFile,
    lint_file,
    registered_rule_classes,
    rule_kind,
)
from .rules import default_rules

__all__ = ["collect_files", "lint_paths", "lint_sources", "main"]


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return out


def load_sources(paths: Sequence[str]) -> List[SourceFile]:
    """Read and parse every ``.py`` file under ``paths`` exactly once."""
    return [SourceFile.load(path) for path in collect_files(paths)]


def lint_sources(
    sources: Sequence[SourceFile],
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Run the shallow ``rules`` over pre-parsed sources."""
    chosen = tuple(rules) if rules is not None else tuple(default_rules())
    findings: List[Finding] = []
    for sf in sources:
        findings.extend(lint_file(sf, chosen))
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings.

    Propagates :class:`FileNotFoundError` for missing paths and
    :class:`SyntaxError` for unparsable files.
    """
    return lint_sources(load_sources(paths), rules)


def deep_findings(sources: Sequence[SourceFile],
                  rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the flow pass over the *same* parsed sources (no re-parse).

    Files are grouped by their enclosing package root; files outside any
    package (no ``__init__.py`` chain) cannot take part in cross-module
    resolution and are skipped by the flow pass.
    """
    from .flow import Program, flow_rules, run_flow_rules
    from .flow.symbols import module_name_for, package_root_of

    by_root: Dict[Path, List[Tuple[SourceFile, str]]] = {}
    for sf in sources:
        if sf.path is None:
            continue
        root = package_root_of(sf.path)
        if not (root / "__init__.py").exists():
            continue
        by_root.setdefault(root, []).append(
            (sf, module_name_for(sf.path, root)))
    chosen = flow_rules()
    if rule_ids is not None:
        wanted = {rid.upper() for rid in rule_ids}
        chosen = tuple(r for r in chosen if r.rule_id in wanted)
    findings: List[Finding] = []
    for root in sorted(by_root):
        program = Program.from_sources(by_root[root])
        findings.extend(run_flow_rules(program, chosen))
    return findings


def _select_rule_ids(spec: Optional[str],
                     deep: bool) -> Tuple[Optional[List[str]],
                                          Optional[List[str]]]:
    """(shallow IDs, flow IDs) selected by ``--rules``; None = all."""
    # Importing the flow package registers RPR009..RPR012.
    from . import flow  # noqa: F401

    if not spec:
        return None, None
    wanted = {token.strip().upper()
              for token in spec.split(",") if token.strip()}
    known = {cls.rule_id for cls in registered_rule_classes()}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule IDs: {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    shallow = [rid for rid in sorted(wanted) if rule_kind(rid) == "shallow"]
    flow_ids = [rid for rid in sorted(wanted) if rule_kind(rid) == "flow"]
    if flow_ids and not deep:
        raise ValueError(
            f"rule(s) {', '.join(flow_ids)} need the flow pass; "
            "add --deep")
    return shallow, flow_ids


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.checkers.lint`` / ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific lint for the SoftTRR reproduction "
                    "(rules RPR001..RPR008; --deep adds RPR009..RPR012).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program flow pass "
                             "(RPR009..RPR012) on the same parsed ASTs")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the known rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        from . import flow  # noqa: F401  (registers the flow rules)

        for cls in registered_rule_classes():
            kind = rule_kind(cls.rule_id)
            print(f"{cls.rule_id}  [{kind}]  {cls.description}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    started = time.perf_counter()  # repro-lint: disable=RPR001
    try:
        shallow_ids, flow_ids = _select_rule_ids(args.rules, args.deep)
        sources = load_sources(args.paths)
        shallow_rules = tuple(default_rules())
        if shallow_ids is not None:
            shallow_rules = tuple(r for r in shallow_rules
                                  if r.rule_id in shallow_ids)
        run_shallow = shallow_ids is None or bool(shallow_ids)
        findings = lint_sources(sources, shallow_rules) if run_shallow \
            else []
        if args.deep:
            findings.extend(deep_findings(sources, flow_ids))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: parse error: {exc}", file=sys.stderr)
        return 2
    wall_time_s = round(time.perf_counter() - started, 4)  # repro-lint: disable=RPR001

    try:
        if args.format == "json":
            print(json.dumps(
                {"findings": [f.as_dict() for f in findings],
                 "count": len(findings),
                 "files": len(sources),
                 "deep": args.deep,
                 "wall_time_s": wall_time_s},
                indent=2,
            ))
        else:
            for finding in findings:
                print(finding.format_text())
            if findings:
                print(f"{len(findings)} finding(s)", file=sys.stderr)
    except BrokenPipeError:  # `repro-lint ... | head` is fine
        sys.stderr.close()
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
