"""Command-line driver for the repo-specific lint pass.

Usage::

    python -m repro.checkers.lint src/
    repro-lint src/ --format json
    repro-lint src/repro/core/tracer.py --rules RPR003,RPR004

Exit codes: 0 = clean, 1 = findings, 2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import Finding, LintRule, lint_source
from .rules import default_rules

__all__ = ["collect_files", "lint_paths", "main"]


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return out


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings.

    Propagates :class:`FileNotFoundError` for missing paths and
    :class:`SyntaxError` for unparsable files.
    """
    chosen = tuple(rules) if rules is not None else tuple(default_rules())
    findings: List[Finding] = []
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path.as_posix(), chosen))
    return findings


def _select_rules(spec: Optional[str]) -> Sequence[LintRule]:
    rules = tuple(default_rules())
    if not spec:
        return rules
    wanted = {token.strip().upper() for token in spec.split(",") if token.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule IDs: {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.rule_id in wanted)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.checkers.lint`` / ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific lint for the SoftTRR reproduction "
                    "(rules RPR001..RPR008).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the known rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    try:
        rules = _select_rules(args.rules)
        findings = lint_paths(args.paths, rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: parse error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.format == "json":
            print(json.dumps(
                {"findings": [f.as_dict() for f in findings],
                 "count": len(findings)},
                indent=2,
            ))
        else:
            for finding in findings:
                print(finding.format_text())
            if findings:
                print(f"{len(findings)} finding(s)", file=sys.stderr)
    except BrokenPipeError:  # `repro-lint ... | head` is fine
        sys.stderr.close()
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
