"""Machine assembly layer: declarative configs, the facade, snapshots.

This package is the single sanctioned path for building a simulated
machine (clock + DRAM + MMU + kernel + defense + sanitizers); direct
``Kernel(...)`` / ``DramModule(...)`` wiring elsewhere is lint rule
RPR006's business.  See :mod:`repro.machine.machine` for the facade and
:mod:`repro.machine.config` for the declarative config.
"""

from .config import MachineConfig, build_defense
from .machine import Machine, MachineSnapshot, boot_kernel

__all__ = [
    "Machine",
    "MachineConfig",
    "MachineSnapshot",
    "boot_kernel",
    "build_defense",
]
