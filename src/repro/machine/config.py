"""Declarative machine assembly configuration.

A :class:`MachineConfig` names everything needed to build one evaluation
machine — the hardware profile, the defense riding on it, whether the
runtime sanitizers are installed, and the batching knob — as plain data.
It is picklable (scenario sweeps ship configs to worker processes) and
every field has a deterministic default, so two processes building the
same config produce bit-identical machines.

The config layer deliberately speaks in *names* (registry keys) rather
than objects: ``defense="softtrr"`` + ``defense_params={"max_distance":
1}`` instead of a ``SoftTrrDefense(SoftTrrParams(max_distance=1))``
instance.  That is what makes the paper's evaluation grid — 4 machines x
{vanilla, SoftTRR Δ±1..±6, 5 baseline defenses} — representable as a
list of records (:mod:`repro.scenarios`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..config import MACHINES, MachineSpec, machine as machine_spec
from ..errors import ConfigError

__all__ = ["MachineConfig", "build_defense"]


def build_defense(name: str, params: Optional[Mapping] = None):
    """Instantiate a defense by registry name with plain-dict params.

    SoftTRR's parameters travel as a dict and are hydrated into
    :class:`~repro.core.profile.SoftTrrParams`; every other defense
    factory takes its params as keyword arguments directly.
    """
    from ..defenses.base import DEFENSES

    params = dict(params or {})
    try:
        factory = DEFENSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown defense {name!r}; known: {sorted(DEFENSES.keys())}"
        ) from None
    if name == "softtrr":
        from ..core.profile import SoftTrrParams

        return factory(SoftTrrParams(**params))
    return factory(**params)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to assemble one machine, as plain data.

    ``machine`` is a :data:`repro.config.MACHINES` key; ``defense`` a
    :data:`repro.defenses.base.DEFENSES` key with ``defense_params``
    passed to its factory (for ``"softtrr"`` they hydrate a
    :class:`SoftTrrParams`).  ``sanitize``/``strict_sanitizers`` install
    the runtime invariant sanitizers at boot; ``batch`` pins the batched
    execution paths on/off for workloads run through the machine
    (``None`` = consult the ``REPRO_BATCH`` environment knob).
    """

    machine: str = "perf_testbed"
    defense: str = "vanilla"
    defense_params: Mapping = field(default_factory=dict)
    sanitize: bool = False
    strict_sanitizers: bool = False
    batch: Optional[bool] = None
    #: Disturbance accumulator store: ``True`` pins the array-backed
    #: dense core, ``False`` the dict core, ``None`` (default) consults
    #: the ``REPRO_DENSE`` environment knob at DRAM construction.
    dense: Optional[bool] = None
    #: Override the machine profile's seed (None = profile default).
    seed: Optional[int] = None
    #: Deterministic fault plan installed at assembly (``repro.faults``).
    #: Accepts a :class:`~repro.faults.FaultPlan` or its dict form
    #: (scenario params travel as plain JSON); ``None`` = no injection.
    fault_plan: Optional[object] = None
    #: Tracing level (:mod:`repro.trace`): ``"off"`` (default, zero
    #: overhead beyond one attribute test per choke point),
    #: ``"metrics"``, ``"events"`` or ``"spans"``.
    trace: str = "off"
    #: Ring-buffer capacity in events (``None`` = the trace default).
    trace_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.machine not in MACHINES and self.machine != "tiny":
            raise ConfigError(
                f"unknown machine {self.machine!r}; known: "
                f"{sorted(MACHINES) + ['tiny']}"
            )
        if self.strict_sanitizers and not self.sanitize:
            raise ConfigError("strict_sanitizers requires sanitize=True")
        from ..trace.hub import LEVELS

        if self.trace not in LEVELS:
            raise ConfigError(
                f"unknown trace level {self.trace!r}; known: {LEVELS}")
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ConfigError("trace_capacity must be positive")
        # Normalise to a plain dict so configs pickle/compare cleanly.
        object.__setattr__(self, "defense_params", dict(self.defense_params))
        if self.fault_plan is not None:
            from ..faults import FaultPlan

            object.__setattr__(
                self, "fault_plan", FaultPlan.coerce(self.fault_plan))

    def build_spec(self) -> MachineSpec:
        """The machine profile this config names (seed applied)."""
        if self.machine == "tiny":
            from ..config import tiny_machine

            factory = tiny_machine
        else:
            factory = None
        kwargs = {} if self.seed is None else {"seed": self.seed}
        spec = (factory(**kwargs) if factory is not None
                else machine_spec(self.machine, **kwargs))
        if self.dense is not None:
            spec = replace(spec, dense=self.dense)
        return spec

    def build_defense(self):
        """Fresh defense instance for this config."""
        return build_defense(self.defense, self.defense_params)

    def replace(self, **overrides) -> "MachineConfig":
        """A copy with ``overrides`` applied (dataclasses.replace)."""
        return replace(self, **overrides)

    def label(self) -> str:
        """Short human-readable tag, e.g. ``perf_testbed+softtrr``."""
        return f"{self.machine}+{self.defense}"
