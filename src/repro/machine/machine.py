"""The Machine facade: the one sanctioned assembly path.

Everything that used to be hand-wired at every entry point — ``Kernel(
perf_testbed())`` + ``load_module(...)`` + ad-hoc sanitizer installs +
per-layer counter spelunking — lives here.  A :class:`Machine` owns the
full simulated stack (clock, DRAM, MMU, kernel, defense, sanitizers,
batching knob), is built from a declarative :class:`MachineConfig`, and
offers:

* :attr:`telemetry` — every per-layer statistic (TLB, CPU cache, DRAM
  banks, disturbance engine, in-DRAM TRR, feed trackers, kernel,
  timers, SoftTRR) under one typed facade;
* :meth:`snapshot` / :meth:`restore` — deterministic whole-machine
  checkpointing.  A restored machine replays to bit-identical
  FlipEvent streams because *all* replay-relevant state travels:
  DRAM cell arrays, disturbance accumulators, page tables, TLB/cache,
  ChipTRR trackers, RNG streams, the event clock and pending timers.

Direct ``Kernel(...)`` / ``DramModule(...)`` construction outside this
layer is a lint violation (RPR006) — the facade is how the repo builds
machines.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

from ..config import MachineSpec
from ..kernel.kernel import Kernel
from .config import MachineConfig

__all__ = ["Machine", "MachineSnapshot", "boot_kernel"]


class MachineSnapshot:
    """An immutable, reusable checkpoint of one machine.

    Holds a fully isolated deep copy of the machine state; restoring
    copies it again, so one snapshot supports any number of restores
    and is never mutated by subsequent simulation.
    """

    __slots__ = ("_state", "taken_at_ns")

    def __init__(self, state, taken_at_ns: int) -> None:
        self._state = state
        self.taken_at_ns = taken_at_ns

    def materialise(self):
        """A fresh (kernel, defense, manager, injector) replica."""
        return copy.deepcopy(self._state)


class Machine:
    """A fully assembled simulated machine behind one facade.

    Build declaratively — ``Machine(MachineConfig(machine="perf_testbed",
    defense="softtrr"))`` or the equivalent ``Machine(machine=...,
    defense=...)`` keyword form — or from pre-built parts with
    :meth:`from_parts` (the compatibility path ``boot_kernel`` uses).
    """

    def __init__(self, config: Optional[MachineConfig] = None, **overrides) -> None:
        if config is None:
            config = MachineConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.batch = config.batch
        self._assemble(
            config.build_spec(),
            config.build_defense(),
            sanitize=config.sanitize,
            strict=config.strict_sanitizers,
            fault_plan=config.fault_plan,
            trace=config.trace,
            trace_capacity=config.trace_capacity,
        )

    @classmethod
    def from_parts(
        cls,
        spec: MachineSpec,
        defense=None,
        *,
        sanitize: bool = False,
        strict_sanitizers: bool = False,
        batch: Optional[bool] = None,
        fault_plan=None,
        trace: str = "off",
        trace_capacity: Optional[int] = None,
    ) -> "Machine":
        """Assemble from already-built spec/defense objects.

        This is the escape hatch for callers that need a bespoke
        :class:`MachineSpec` (custom disturbance params, test
        geometries) that no registry name describes.  ``config`` is
        ``None`` on the result.
        """
        self = cls.__new__(cls)
        self.config = None
        self.batch = batch
        if defense is None:
            from ..defenses.base import NoDefense

            defense = NoDefense()
        self._assemble(
            spec, defense, sanitize=sanitize, strict=strict_sanitizers,
            fault_plan=fault_plan, trace=trace, trace_capacity=trace_capacity)
        return self

    def _assemble(self, spec: MachineSpec, defense, *, sanitize: bool,
                  strict: bool, fault_plan=None, trace: str = "off",
                  trace_capacity: Optional[int] = None) -> None:
        self.spec = spec
        self.defense = defense
        self.kernel = Kernel(
            spec, frame_policy_factory=defense.frame_policy_factory())
        # The trace hub attaches before the defense installs so module
        # load (initial collection, warm-up ticks) is observable too.
        if trace != "off":
            from ..trace.hub import TraceHub

            TraceHub.build(
                self.kernel.clock, trace, trace_capacity).attach(self.kernel)
        # ``MachineSpec(sanitize=True)`` already installed (non-strict)
        # sanitizers inside Kernel.__init__; honour a strictness request
        # on that manager rather than double-installing.
        if self.kernel.sanitizers is None:
            if sanitize or strict:
                from ..checkers.sanitizers import install_sanitizers

                install_sanitizers(self.kernel, strict=strict)
        elif strict:
            self.kernel.sanitizers.strict = True
        defense.install(self.kernel)
        # The fault injector installs LAST so its wrappers sit outermost
        # (raw -> sanitizer -> injector): a suppressed event never reaches
        # the sanitizer underneath, which observes the machine the fault
        # produced rather than the fault machinery itself.
        self.fault_injector = None
        if fault_plan is not None and fault_plan:
            from ..faults import FaultInjector, FaultPlan

            plan = FaultPlan.coerce(fault_plan)
            self.fault_injector = FaultInjector(self.kernel, plan).install()

    # ======================================================== conveniences
    @property
    def clock(self):
        """The machine's simulated clock."""
        return self.kernel.clock

    @property
    def dram(self):
        """The machine's DRAM module."""
        return self.kernel.dram

    @property
    def mmu(self):
        """The machine's MMU."""
        return self.kernel.mmu

    @property
    def sanitizers(self):
        """The installed sanitizer manager, or None."""
        return self.kernel.sanitizers

    @property
    def softtrr(self):
        """The loaded SoftTRR module, or None."""
        return self.kernel.module("softtrr")

    def module(self, name: str):
        """A loaded module by name, or None."""
        return self.kernel.module(name)

    def load_softtrr(self, params=None):
        """Load the SoftTRR module raw (no warm-up ticks); returns it.

        This is the overhead-measurement path: unlike the
        ``defense="softtrr"`` config route (which advances two timer
        intervals so the tracer arms pre-existing pages, the Table II
        semantics), the module starts cold and the first tick lands
        inside the measured region — exactly how Tables III–V and the
        LAMP figures boot their machines.
        """
        from ..core.profile import SoftTrrParams
        from ..core.softtrr import SoftTrr

        module = SoftTrr(params or SoftTrrParams())
        self.kernel.load_module("softtrr", module)
        return module

    def run_workload(self, profile, seed: int = 1234):
        """Run a :class:`WorkloadProfile` on this machine's kernel.

        The machine's ``batch`` setting (from its config) pins the
        batched/scalar execution path; ``None`` defers to the
        ``REPRO_BATCH`` environment knob at run time.
        """
        from ..workloads.base import SliceWorkload

        return SliceWorkload(
            self.kernel, profile, seed=seed, use_batch=self.batch).run()

    # =========================================================== telemetry
    @property
    def telemetry(self):
        """The typed :class:`~repro.trace.Telemetry` facade.

        Stateless — built per access over the live machine, so it never
        needs snapshot/restore handling and is always current::

            m.telemetry.counter("tlb.misses")
            m.telemetry.group("dram")
            m.telemetry.as_flat_dict()
        """
        from ..trace.telemetry import Telemetry

        return Telemetry(self)

    # ==================================================== snapshot/restore
    def snapshot(self) -> MachineSnapshot:
        """Checkpoint the whole machine deterministically.

        The deep copy covers every piece of replay-relevant state —
        DRAM cell arrays and disturbance accumulators, page tables
        (they live *in* DRAM), TLB/CPU-cache contents, ChipTRR
        trackers, module RNG streams, the clock and its pending timer
        heap (bound-method callbacks rebind to the copied objects via
        deepcopy memoization).

        The sanitizer manager and fault injector wrap kernel choke
        points with closures over the live objects, which a naive
        deepcopy would leak into the copy — so both are uninstalled
        around the copy and reinstalled on both sides.  The injector
        installs outermost, so it uninstalls FIRST and reinstalls LAST
        (reverse order would capture each other's wrappers as
        "originals" and restore dangling closures, e.g. on the shared
        ``mmu.invlpg`` site).
        """
        manager = self.kernel.sanitizers
        injector = self.fault_injector
        if injector is not None:
            injector.uninstall()
        if manager is not None:
            manager.uninstall()
        try:
            state = copy.deepcopy(
                (self.kernel, self.defense, manager, injector))
        finally:
            if manager is not None:
                manager.install()
            if injector is not None:
                injector.install()
        return MachineSnapshot(state, self.kernel.clock.now_ns)

    def restore(self, snap: MachineSnapshot) -> "Machine":
        """Rewind this machine to a snapshot (in place); returns self.

        The snapshot is copied, not adopted, so it stays reusable.
        Replaying the same inputs after a restore reproduces the
        original run bit-for-bit: identical FlipEvents, counters and
        simulated nanoseconds.
        """
        kernel, defense, manager, injector = snap.materialise()
        self.kernel = kernel
        self.defense = defense
        if manager is not None:
            manager.install()
        self.fault_injector = injector
        if injector is not None:
            injector.install()
        return self


def boot_kernel(spec: MachineSpec, defense=None) -> Kernel:
    """Boot a machine with a defense applied; returns the kernel.

    Compatibility shim for the pre-``Machine`` API — equivalent to
    ``Machine.from_parts(spec, defense).kernel``.
    """
    return Machine.from_parts(spec, defense).kernel
