"""Kernel timers over the simulated clock.

SoftTRR's tracer "sets up a periodic timer to configure rsrv bit in a
fixed interval" (Section IV-C).  Kernel timers in the model fire at
kernel *dispatch points* — the top of syscalls, user memory accesses and
fault handling — which is when a real kernel's softirq work effectively
runs relative to the hammering user code.
"""

from __future__ import annotations

from typing import Callable, List

from ..clock import ScheduledEvent, SimClock


class KernelTimers:
    """Thin ownership layer over :class:`SimClock` scheduling."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._owned: List[ScheduledEvent] = []
        self.fired = 0
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    def add_periodic(self, period_ns: int, callback: Callable[[], None],
                     name: str = "") -> ScheduledEvent:
        """Register a periodic timer starting one period from now."""
        event = self.clock.schedule(
            period_ns, callback, period_ns=period_ns, name=name)
        self._owned.append(event)
        return event

    def add_oneshot(self, delay_ns: int, callback: Callable[[], None],
                    name: str = "") -> ScheduledEvent:
        """Register a one-shot timer."""
        event = self.clock.schedule(delay_ns, callback, name=name)
        self._owned.append(event)
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a timer created through this object."""
        self.clock.cancel(event)
        if event in self._owned:
            self._owned.remove(event)

    def cancel_all(self) -> None:
        """Cancel every owned timer (module unload / kernel shutdown)."""
        for event in self._owned:
            self.clock.cancel(event)
        self._owned.clear()

    def run_pending(self) -> int:
        """Fire all due timers; returns how many ran.

        Note: periodic timers re-arm inside ``pop_due`` and their
        callbacks may themselves advance the clock; the loop drains
        until no event is due at the (possibly advanced) current time.

        A callback may cancel a *sibling* event of the same due batch;
        the sibling is already out of the clock's heap at that point,
        so the cancellation is honoured here, before firing.  A skipped
        one-shot consumes its cancellation; a skipped periodic leaves
        it pending so the re-armed heap instance (same seq) dies at the
        next pop.
        """
        ran = 0
        while True:
            due = self.clock.pop_due()
            if not due:
                return ran
            for event in due:
                if self.clock.is_cancelled(event):
                    if event.period_ns == 0:
                        self.clock.discard_cancellation(event)
                    continue
                if self._fire(event):
                    ran += 1

    def _fire(self, event: ScheduledEvent) -> bool:
        """Fire one due event; returns whether it ran.

        This is the per-tick choke point the fault injector wraps
        (``repro.faults``; lint rule RPR007 keeps every other module
        away from it) — a dropped or delayed tick is a ``_fire`` that
        returns False without running the callback.
        """
        if self.trace is not None:
            self.trace.emit("timer.fire", name=event.name)
        event.callback()
        self.fired += 1
        return True
