"""The kernel facade: boot, processes, paging, hooks, modules.

This is the operating-system substrate SoftTRR loads into.  It owns the
machine (clock, DRAM, MMU), manages physical frames through a pluggable
placement policy, implements demand paging and fork/exit, maintains the
reverse map, exposes the inline-hook points the paper's LKM attaches to,
and dispatches kernel timers at its entry points.

Design notes relevant to fidelity:

* **Page-table pages come from the same buddy pool as user pages** under
  the default policy — that physical co-location is what every attack in
  the paper exploits, and what CATT/CTA/ZebRAM change.
* **fork checks the present bit of leaf PTEs** while copying an address
  space.  A non-zero, non-present leaf (that is not a swap entry — the
  model has no swap) is a corrupted PTE and panics the kernel.  This is
  precisely why the paper's tracer cannot use the present bit and uses
  reserved bit 51 instead (Section IV-C); the alternative present-bit
  tracer in :mod:`repro.core.tracer` demonstrates the crash.
* **Timers fire at kernel dispatch points** (syscall entry, user memory
  access, fault handling), bounding how stale SoftTRR's 1 ms tick can
  get relative to user activity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..clock import CycleAccountant, SimClock
from ..config import MachineSpec
from ..errors import (
    BadAddressError,
    KernelError,
    KernelPanic,
    PageFaultException,
    SegmentationFault,
)
from ..mmu import bits
from ..mmu.faults import PageFaultInfo
from ..mmu.mmu import Mmu
from .buddy import BuddyAllocator
from .hooks import (
    HOOK_CONTEXT_SWITCH,
    HOOK_FREE_PAGES,
    HOOK_PAGE_FAULT,
    HOOK_PAGE_FAULT_POST,
    HOOK_PAGE_MAPPED,
    HOOK_PMD_ALLOC,
    HOOK_PTE_ALLOC,
    HOOK_PTE_CLEARED,
    HookManager,
)
from .physmem import DefaultFramePolicy, FramePolicy, FrameTable, FrameUse
from .process import MmStruct, Process
from .rmap import ReverseMap
from .timer import KernelTimers
from .vma import HUGE, PAGE, Vma, VmaFlags

#: Start of the direct-physical map in kernel virtual space ([25]).
DIRECT_MAP_BASE = 0xFFFF_8880_0000_0000

#: Frames reserved for the kernel image and static data.
KERNEL_RESERVED_FRAMES = 64

#: Default leaf flags for user mappings.
USER_PTE_FLAGS = bits.PTE_PRESENT | bits.PTE_RW | bits.PTE_USER


class Kernel:
    """A booted machine: kernel + MMU + DRAM on one simulated clock."""

    def __init__(
        self,
        spec: MachineSpec,
        frame_policy_factory: Optional[Callable[[BuddyAllocator, "Kernel"], FramePolicy]] = None,
    ) -> None:
        self.spec = spec
        self.cost = spec.cost
        self.clock = SimClock()
        self.dram = spec.build_dram(self.clock)
        self.mmu = Mmu(
            self.clock,
            self.dram,
            cache_hit_ns=self.cost.cache_hit_ns,
            clflush_ns=self.cost.clflush_ns,
            tlb_hit_ns=self.cost.tlb_hit_ns,
            invlpg_ns=self.cost.invlpg_ns,
        )
        total_frames = self.dram.geometry.capacity_bytes // PAGE
        self.total_frames = total_frames
        self.buddy = BuddyAllocator(
            KERNEL_RESERVED_FRAMES, total_frames - KERNEL_RESERVED_FRAMES
        )
        if frame_policy_factory is None:
            self.frame_policy: FramePolicy = DefaultFramePolicy(self.buddy)
        else:
            self.frame_policy = frame_policy_factory(self.buddy, self)
        self.frame_table = FrameTable(total_frames)
        self.rmap = ReverseMap()
        self.hooks = HookManager()
        self.timers = KernelTimers(self.clock)
        self.accountant = CycleAccountant()
        self.processes: Dict[int, Process] = {}
        self.current: Optional[Process] = None
        self._next_pid = 1
        self._modules: Dict[str, object] = {}
        self._in_timer_dispatch = False
        # Statistics the evaluation consumes.
        self.faults_handled = 0
        self.demand_pages = 0
        self.forks = 0
        self.segfaults = 0
        #: Runtime invariant sanitizers (:mod:`repro.checkers`), when
        #: enabled via ``MachineSpec(sanitize=True)`` or installed later
        #: with ``install_sanitizers`` / ``with sanitized(kernel):``.
        self.sanitizers = None
        #: Trace hub (:mod:`repro.trace`), or None when tracing is off.
        #: Lives on the kernel so a machine deepcopy carries exactly one
        #: hub and every component's ``trace`` reference follows it.
        self.trace_hub = None
        self.trace = None
        if spec.sanitize:
            from ..checkers.sanitizers import install_sanitizers

            install_sanitizers(self)

    # =============================================================== frames
    def alloc_frame(self, use: FrameUse, order: int = 0) -> int:
        """Allocate (and zero) a 2**order block; returns base PPN."""
        base = self.frame_policy.alloc(use, order)
        self.frame_table.record_alloc(base, use, order)
        for ppn in range(base, base + (1 << order)):
            self.dram.raw_write(ppn << 12, b"\x00" * PAGE)
        return base

    def free_frame(self, base_ppn: int, order: int = 0) -> None:
        """Free a block; fires the ``__free_pages`` hook first."""
        use, recorded_order = self.frame_table.record_free(base_ppn)
        if recorded_order != order:
            raise KernelError(
                f"free order mismatch for {base_ppn:#x}: "
                f"{recorded_order} vs {order}"
            )
        self.hooks.notify(HOOK_FREE_PAGES, base_ppn, order, use)
        self.frame_policy.free(base_ppn, use, order)

    def frame_paddr(self, ppn: int) -> int:
        """Physical byte address of a frame."""
        return ppn << 12

    # =========================================================== direct map
    def kvaddr_of(self, paddr: int) -> int:
        """Kernel virtual address of a physical address (direct map)."""
        return DIRECT_MAP_BASE + paddr

    def paddr_of_kvaddr(self, kvaddr: int) -> int:
        """Inverse of :meth:`kvaddr_of`."""
        if kvaddr < DIRECT_MAP_BASE:
            raise KernelError(f"{kvaddr:#x} is not a direct-map address")
        return kvaddr - DIRECT_MAP_BASE

    def kernel_read(self, kvaddr: int, size: int) -> bytes:
        """Architectural kernel read through the direct map."""
        return self.mmu.phys_load(self.paddr_of_kvaddr(kvaddr), size)

    def kernel_write(self, kvaddr: int, data: bytes) -> None:
        """Architectural kernel write through the direct map."""
        self.mmu.phys_store(self.paddr_of_kvaddr(kvaddr), data)

    # ============================================================ processes
    def create_process(self, name: str = "proc") -> Process:
        """Create a process with an empty address space."""
        pml4 = self.alloc_frame(FrameUse.PAGE_TABLE)
        mm = MmStruct(pml4_ppn=pml4)
        mm.upper_table_pages.append(pml4)
        mm.table_levels[pml4] = 4
        process = Process(pid=self._next_pid, name=name, mm=mm)
        self._next_pid += 1
        self.processes[process.pid] = process
        if self.current is None:
            self.current = process
        return process

    def switch_to(self, process: Process) -> None:
        """Context switch: CR3 reload semantics + cost."""
        if not process.alive:
            raise KernelError(f"switching to dead process {process.pid}")
        if self.current is process:
            return
        self.current = process
        self.mmu.on_context_switch()
        self.clock.advance(self.cost.context_switch_ns)
        self.accountant.charge("context_switch", self.cost.context_switch_ns)
        self.hooks.notify(HOOK_CONTEXT_SWITCH, process)

    # ---------------------------------------------------------- page tables
    def _ensure_l1_table(self, process: Process, vaddr: int) -> int:
        """Walk/create upper levels; returns the L1 table's PPN.

        Fires the ``__pte_alloc`` hook when a *new* L1PT page is created,
        which is how SoftTRR's collector sees dynamic page-table births.
        """
        mm = process.mm
        table = mm.pml4_ppn
        for level in (4, 3):
            index = bits.level_index(vaddr, level)
            entry = self.mmu.pt_ops.read_entry(table, index)
            if not bits.is_present(entry):
                child = self.alloc_frame(FrameUse.PAGE_TABLE)
                mm.upper_table_pages.append(child)
                mm.table_levels[child] = level - 1
                self.mmu.write_pte(
                    table, index, bits.make_pte(child, USER_PTE_FLAGS))
                if level - 1 == 2:
                    self.hooks.notify(HOOK_PMD_ALLOC, process, child)
                table = child
            else:
                table = bits.pte_ppn(entry)
        index = bits.level_index(vaddr, 2)
        entry = self.mmu.pt_ops.read_entry(table, index)
        if not bits.is_present(entry):
            l1 = self.alloc_frame(FrameUse.PAGE_TABLE)
            mm.pte_page_population[l1] = 0
            self.mmu.write_pte(
                table, index, bits.make_pte(l1, USER_PTE_FLAGS))
            self.accountant.charge("pte_alloc_hook", self.cost.collector_hook_ns)
            self.hooks.notify(HOOK_PTE_ALLOC, process, l1)
            return l1
        if bits.is_huge(entry):
            raise KernelError(f"{vaddr:#x} already covered by a huge mapping")
        return bits.pte_ppn(entry)

    def _l2_slot_of(self, process: Process, vaddr: int) -> Tuple[int, int]:
        """(L2 table ppn, index) covering ``vaddr``; creates upper levels."""
        mm = process.mm
        table = mm.pml4_ppn
        for level in (4, 3):
            index = bits.level_index(vaddr, level)
            entry = self.mmu.pt_ops.read_entry(table, index)
            if not bits.is_present(entry):
                child = self.alloc_frame(FrameUse.PAGE_TABLE)
                mm.upper_table_pages.append(child)
                mm.table_levels[child] = level - 1
                self.mmu.write_pte(
                    table, index, bits.make_pte(child, USER_PTE_FLAGS))
                if level - 1 == 2:
                    self.hooks.notify(HOOK_PMD_ALLOC, process, child)
                table = child
            else:
                table = bits.pte_ppn(entry)
        return table, bits.level_index(vaddr, 2)

    def map_page(self, process: Process, vaddr: int, ppn: int,
                 flags: int = USER_PTE_FLAGS) -> None:
        """Install a 4 KiB user mapping."""
        l1 = self._ensure_l1_table(process, vaddr)
        index = bits.level_index(vaddr, 1)
        old = self.mmu.pt_ops.read_entry(l1, index)
        if bits.is_present(old):
            raise KernelError(f"{vaddr:#x} already mapped in pid {process.pid}")
        self.mmu.write_pte(l1, index, bits.make_pte(ppn, flags))
        process.mm.pte_page_population[l1] = (
            process.mm.pte_page_population.get(l1, 0) + 1)
        self.rmap.add(ppn, process.pid, bits.page_base(vaddr))
        self.hooks.notify(HOOK_PAGE_MAPPED, process,
                          bits.page_base(vaddr), ppn, 1)

    def map_huge_page(self, process: Process, vaddr: int, base_ppn: int,
                      flags: int = USER_PTE_FLAGS) -> None:
        """Install a 2 MiB user mapping (PS entry at L2)."""
        if vaddr % HUGE:
            raise KernelError("huge mapping must be 2 MiB aligned")
        l2, index = self._l2_slot_of(process, vaddr)
        old = self.mmu.pt_ops.read_entry(l2, index)
        if bits.is_present(old):
            raise KernelError(f"{vaddr:#x} already covered at L2")
        self.mmu.write_pte(
            l2, index, bits.make_pte(base_ppn, flags | bits.PTE_PSE))
        for i in range(HUGE // PAGE):
            self.rmap.add(base_ppn + i, process.pid, vaddr + i * PAGE)
        self.hooks.notify(HOOK_PAGE_MAPPED, process, vaddr, base_ppn, 2)

    def unmap_page(self, process: Process, vaddr: int) -> Optional[int]:
        """Remove a 4 KiB mapping; returns the PPN it held (or None).

        Frees the L1PT page when its last entry goes away (firing
        ``__free_pages``), which is how the collector learns about
        page-table deaths.
        """
        mm = process.mm
        walk = self.software_walk(mm, vaddr)
        if walk is None:
            return None
        ppn, leaf_level, pte_paddr, entry = walk
        if leaf_level != 1:
            raise KernelError("unmap_page on a huge mapping")
        l1 = pte_paddr >> 12
        index = (pte_paddr & 0xFFF) // 8
        self.mmu.write_pte(l1, index, 0)
        self.hooks.notify(HOOK_PTE_CLEARED, pte_paddr)
        self.mmu.invlpg(bits.page_base(vaddr))
        self.rmap.remove(ppn, process.pid, bits.page_base(vaddr))
        mm.pte_page_population[l1] -= 1
        if mm.pte_page_population[l1] == 0:
            self._free_l1_table(process, vaddr, l1)
        return ppn

    def _free_l1_table(self, process: Process, vaddr: int, l1: int) -> None:
        """Release an empty L1PT page and clear its L2 entry."""
        mm = process.mm
        l2, index = self._l2_slot_of(process, vaddr)
        self.mmu.write_pte(l2, index, 0)
        self.hooks.notify(
            HOOK_PTE_CLEARED, self.mmu.pt_ops.entry_paddr(l2, index))
        del mm.pte_page_population[l1]
        self.free_frame(l1)

    def unmap_huge_page(self, process: Process, vaddr: int) -> Optional[int]:
        """Remove a 2 MiB mapping; returns its base PPN (or None)."""
        l2, index = self._l2_slot_of(process, vaddr)
        entry = self.mmu.pt_ops.read_entry(l2, index)
        if not bits.is_present(entry) or not bits.is_huge(entry):
            return None
        base_ppn = bits.pte_ppn(entry)
        self.mmu.write_pte(l2, index, 0)
        self.hooks.notify(
            HOOK_PTE_CLEARED, self.mmu.pt_ops.entry_paddr(l2, index))
        self.mmu.invlpg(vaddr)
        for i in range(HUGE // PAGE):
            self.rmap.remove(base_ppn + i, process.pid, vaddr + i * PAGE)
        return base_ppn

    def software_walk(
        self, mm: MmStruct, vaddr: int
    ) -> Optional[Tuple[int, int, int, int]]:
        """Kernel software walk: (ppn, leaf_level, pte_paddr, entry) or None.

        Unlike the hardware walker this does not fault on rsvd bits or
        permissions — it reports the raw leaf, which is what kernel code
        (and SoftTRR) needs.  Reads are architectural (cached).
        """
        table = mm.pml4_ppn
        for level in (4, 3, 2):
            index = bits.level_index(vaddr, level)
            entry = self.mmu.pt_ops.read_entry(table, index)
            if not bits.is_present(entry):
                return None
            if level == 2 and bits.is_huge(entry):
                base = bits.pte_ppn(entry)
                return (
                    base + bits.level_index(vaddr, 1),
                    2,
                    self.mmu.pt_ops.entry_paddr(table, index),
                    entry,
                )
            table = bits.pte_ppn(entry)
        index = bits.level_index(vaddr, 1)
        entry = self.mmu.pt_ops.read_entry(table, index)
        if entry == 0:
            return None
        return (
            bits.pte_ppn(entry),
            1,
            self.mmu.pt_ops.entry_paddr(table, index),
            entry,
        )

    # ================================================================= mmap
    def mmap(self, process: Process, length: int, *,
             flags: VmaFlags = None, name: str = "anon",
             huge: bool = False, at: Optional[int] = None) -> int:
        """Create an anonymous demand-paged mapping; returns its base."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        if flags is None:
            flags = VmaFlags.rw()
        mm = process.mm
        align = HUGE if huge else PAGE
        length = (length + align - 1) & ~(align - 1)
        if length <= 0:
            raise BadAddressError(0, "mmap of zero length")
        if at is not None:
            start = at
        elif huge:
            start = mm.huge_cursor
            mm.huge_cursor += length + HUGE
        else:
            start = mm.mmap_cursor
            mm.mmap_cursor += length + PAGE
        if huge:
            flags |= VmaFlags.HUGEPAGE
        vma = Vma(start=start, end=start + length, flags=flags, name=name)
        mm.add_vma(vma)
        return start

    def munmap(self, process: Process, vaddr: int, length: int) -> None:
        """Unmap [vaddr, vaddr+length), freeing frames and empty PTs."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        mm = process.mm
        length = (length + PAGE - 1) & ~(PAGE - 1)
        end = vaddr + length
        victims = [v for v in mm.vmas if v.overlaps(vaddr, end)]
        if not victims:
            raise BadAddressError(vaddr, "munmap of unmapped range")
        for vma in victims:
            if vma.flags & VmaFlags.DEVICE:
                # Device frames belong to the driver: unmap the covered
                # pages (splitting the VMA if partial), don't free them.
                lo = max(vma.start, vaddr)
                hi = min(vma.end, end)
                for page in range(lo, hi, PAGE):
                    self.unmap_page(process, page)
                mm.remove_vma(vma)
                if vma.start < lo:
                    mm.add_vma(Vma(vma.start, lo, vma.flags, vma.name))
                if hi < vma.end:
                    mm.add_vma(Vma(hi, vma.end, vma.flags, vma.name))
                continue
            if vma.is_huge():
                if vaddr > vma.start or end < vma.end:
                    raise KernelError("partial munmap of huge VMA unsupported")
                for base in range(vma.start, vma.end, HUGE):
                    ppn = self.unmap_huge_page(process, base)
                    if ppn is not None:
                        self.free_frame(ppn, order=9)
                mm.remove_vma(vma)
                continue
            lo = max(vma.start, vaddr)
            hi = min(vma.end, end)
            for page in range(lo, hi, PAGE):
                ppn = self.unmap_page(process, page)
                if ppn is not None:
                    self.free_frame(ppn)
            # Reshape the VMA.
            mm.remove_vma(vma)
            if vma.start < lo:
                mm.add_vma(Vma(vma.start, lo, vma.flags, vma.name))
            if hi < vma.end:
                mm.add_vma(Vma(hi, vma.end, vma.flags, vma.name))

    def brk(self, process: Process, new_brk: int) -> int:
        """Grow/shrink the heap; returns the resulting brk."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        mm = process.mm
        new_brk = (new_brk + PAGE - 1) & ~(PAGE - 1)
        if new_brk < mm.brk_start:
            raise BadAddressError(new_brk, "brk below heap start")
        old = mm.brk
        if new_brk > old:
            mm.add_vma(Vma(old, new_brk, VmaFlags.rw(), name="heap"))
        elif new_brk < old:
            self.munmap(process, new_brk, old - new_brk)
        mm.brk = new_brk
        return mm.brk

    def mlock(self, process: Process, vaddr: int, length: int) -> None:
        """Pre-fault and pin a range (prefault via the fault path)."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        if self.current is not process:
            # The faults below run in the caller's context — placement
            # policies (e.g. RIP-RH) route by the allocating process.
            self.switch_to(process)
        end = vaddr + length
        for page in range(bits.page_base(vaddr), end, PAGE):
            if self.software_walk(process.mm, page) is None:
                vma = process.mm.find_vma(page)
                if vma is None:
                    raise BadAddressError(page, "mlock of unmapped range")
                self._demand_page(process, vma, page, is_write=False)

    def mremap(self, process: Process, old_vaddr: int, old_len: int,
               new_len: int) -> int:
        """Move/resize a mapping; returns the new base address."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        mm = process.mm
        vma = mm.find_vma(old_vaddr)
        if vma is None or vma.start != old_vaddr:
            raise BadAddressError(old_vaddr, "mremap of unmapped base")
        if vma.is_huge():
            raise KernelError("mremap of huge VMA unsupported")
        new_base = mm.mmap_cursor
        mm.mmap_cursor += ((new_len + PAGE - 1) & ~(PAGE - 1)) + PAGE
        new_len = (new_len + PAGE - 1) & ~(PAGE - 1)
        new_vma = Vma(new_base, new_base + new_len, vma.flags, vma.name)
        # Move existing frames that still fit.
        moved = []
        for offset in range(0, min(old_len, new_len), PAGE):
            old_page = old_vaddr + offset
            walk = self.software_walk(mm, old_page)
            if walk is None:
                continue
            ppn = self.unmap_page(process, old_page)
            moved.append((new_base + offset, ppn))
        mm.remove_vma(vma)
        mm.add_vma(new_vma)
        for new_page, ppn in moved:
            self.map_page(process, new_page, ppn)
        return new_base

    # =========================================================== page faults
    def handle_page_fault(self, process: Process, fault: PageFaultInfo) -> None:
        """The do_page_fault entry point (hookable)."""
        self.faults_handled += 1
        self.clock.advance(self.cost.page_fault_overhead_ns)
        self.accountant.charge("page_fault", self.cost.page_fault_overhead_ns)
        if self.trace is not None and fault.is_reserved_bit:
            self.trace.emit("kernel.rsvd_fault", vaddr=fault.vaddr)
        handled = self.hooks.dispatch(HOOK_PAGE_FAULT, process, fault)
        if handled is not None:
            return
        self._default_page_fault(process, fault)

    def _default_page_fault(self, process: Process, fault: PageFaultInfo) -> None:
        if fault.is_reserved_bit:
            # No module claimed a reserved-bit fault: the kernel treats
            # this as a corrupted PTE.
            raise KernelPanic(
                f"unexpected reserved bit set in PTE for {fault.vaddr:#x}"
            )
        vma = process.mm.find_vma(fault.vaddr)
        if vma is None:
            self.segfaults += 1
            raise SegmentationFault(fault.vaddr, "no VMA")
        if fault.is_write and not vma.is_writable():
            self.segfaults += 1
            raise SegmentationFault(fault.vaddr, "write to read-only VMA")
        if not fault.is_non_present:
            self.segfaults += 1
            raise SegmentationFault(fault.vaddr, "permission violation")
        mapped = self._demand_page(
            process, vma, fault.vaddr, is_write=fault.is_write)
        self.hooks.notify(HOOK_PAGE_FAULT_POST, process, fault, mapped)

    def _demand_page(self, process: Process, vma: Vma, vaddr: int,
                     *, is_write: bool) -> Tuple[int, int]:
        """Allocate and map the page backing ``vaddr``.

        Returns (base ppn, leaf_level) of the new mapping.
        """
        self.demand_pages += 1
        self.clock.advance(self.cost.demand_paging_ns)
        self.accountant.charge("demand_paging", self.cost.demand_paging_ns)
        flags = bits.PTE_PRESENT | bits.PTE_USER
        if vma.is_writable():
            flags |= bits.PTE_RW
        if not vma.flags & VmaFlags.EXEC:
            flags |= bits.PTE_NX
        if vma.is_huge():
            base = bits.huge_base(vaddr)
            ppn = self.alloc_frame(FrameUse.USER, order=9)
            self.map_huge_page(process, base, ppn, flags)
            return ppn, 2
        ppn = self.alloc_frame(FrameUse.USER)
        self.map_page(process, bits.page_base(vaddr), ppn, flags)
        return ppn, 1

    # ============================================================== access
    def dispatch_timers(self) -> None:
        """Run due kernel timers (idempotent, non-reentrant)."""
        if self._in_timer_dispatch:
            return
        self._in_timer_dispatch = True
        try:
            self.timers.run_pending()
        finally:
            self._in_timer_dispatch = False

    def _user_op(self, process: Process, op: Callable[[], object]) -> object:
        """Run a user memory operation with the fault-repair loop."""
        self.dispatch_timers()
        if self.current is not process:
            self.switch_to(process)
        for _ in range(64):
            try:
                return op()
            except PageFaultException as exc:
                self.handle_page_fault(process, exc.info)
        raise KernelError("fault livelock: access kept faulting")

    def user_read(self, process: Process, vaddr: int, size: int) -> bytes:
        """A user-mode load (with demand paging / tracing side effects)."""
        return self._user_op(
            process,
            lambda: self.mmu.load(
                process.mm.pml4_ppn, vaddr, size, pid=process.pid),
        )

    def user_write(self, process: Process, vaddr: int, data: bytes) -> None:
        """A user-mode store."""
        self._user_op(
            process,
            lambda: self.mmu.store(
                process.mm.pml4_ppn, vaddr, data, pid=process.pid),
        )

    def user_access_run(
        self, process: Process, vaddr: int, count: int, *,
        size: int = 8, data: Optional[bytes] = None,
    ) -> Optional[bytes]:
        """Repeat one user access ``count`` times, batching safe repeats.

        Semantically identical to ``count`` :meth:`user_read` calls (or
        :meth:`user_write` when ``data`` is given): the same faults are
        taken — one trace-bit fault per touch while a page stays armed,
        since re-arming needs a timer tick and the batched replay never
        crosses one — the same timers fire at the same simulated times,
        and the clock advances identically.  Each iteration runs one
        touch through the full scalar path (timer dispatch + fault
        loop), measures its cost, and replays as many further touches
        as provably fit before the next timer deadline via
        :meth:`Mmu.access_run`.  Returns the last read's bytes (None
        for writes).
        """
        if count <= 0:
            return None
        pml4 = process.mm.pml4_ppn
        if data is not None:
            op = lambda: self.mmu.store(pml4, vaddr, data, pid=process.pid)
        else:
            op = lambda: self.mmu.load(pml4, vaddr, size, pid=process.pid)
        clock = self.clock
        last: Optional[bytes] = None
        done = 0
        while done < count:
            before_ns = clock.now_ns
            result = self._user_op(process, op)
            if data is None:
                last = result
            done += 1
            if done >= count:
                break
            per_touch = clock.now_ns - before_ns
            deadline = clock.next_due_ns()
            if deadline is None:
                room = count - done
            elif per_touch <= 0 or deadline <= clock.now_ns:
                continue
            else:
                # Replayed touch k starts at now + k*per_touch; the
                # scalar loop's timer dispatch before it is a no-op as
                # long as that start stays before the deadline.  The
                # measured cost is an upper bound on the replay cost
                # (the first touch may have walked/faulted), so this
                # never overshoots.
                room = min(
                    count - done,
                    (deadline - clock.now_ns - 1) // per_touch + 1,
                )
                if room <= 0:
                    continue
            completed, payload = self.mmu.access_run(
                pml4, vaddr, size, room, data=data, pid=process.pid,
            )
            if data is None and payload is not None:
                last = payload
            done += completed
            # completed < room: preconditions broke — the loop's next
            # scalar touch restores them (or takes the fault).
        return last

    def user_fetch(self, process: Process, vaddr: int, size: int = 16) -> bytes:
        """A user-mode instruction fetch."""
        return self._user_op(
            process,
            lambda: self.mmu.load(
                process.mm.pml4_ppn, vaddr, size, is_fetch=True,
                pid=process.pid),
        )

    # ================================================================ fork
    def fork(self, parent: Process, name: Optional[str] = None) -> Process:
        """Fork: copy the address space eagerly (no COW in the model).

        While copying, the kernel checks leaf PTEs' present bits: a
        non-zero, non-present leaf is a corrupted entry => KernelPanic.
        """
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        self.forks += 1
        child = self.create_process(name or f"{parent.name}-child")
        child.parent_pid = parent.pid
        mm = parent.mm
        child.mm.brk_start = mm.brk_start
        child.mm.brk = mm.brk
        child.mm.mmap_cursor = mm.mmap_cursor
        child.mm.huge_cursor = mm.huge_cursor
        for vma in mm.vmas:
            child.mm.add_vma(Vma(vma.start, vma.end, vma.flags, vma.name))
            if vma.flags & VmaFlags.DEVICE:
                # Device mappings are shared, not copied.
                for page in vma.pages():
                    walk = self.software_walk(mm, page)
                    if walk is not None:
                        self._fork_check_leaf(walk[3], page)
                        self.map_page(child, page, walk[0],
                                      bits.pte_flags(walk[3]) & ~bits.PTE_RSVD_TRACE)
                continue
            if vma.is_huge():
                for base in range(vma.start, vma.end, HUGE):
                    walk = self.software_walk(mm, base)
                    if walk is None:
                        continue
                    self._fork_check_leaf(walk[3], base)
                    new_base = self.alloc_frame(FrameUse.USER, order=9)
                    for i in range(HUGE // PAGE):
                        data = self.dram.raw_read((walk[0] + i) << 12, PAGE)
                        self.dram.raw_write((new_base + i) << 12, data)
                    self.map_huge_page(child, base, new_base,
                                       bits.pte_flags(walk[3])
                                       & ~(bits.PTE_PSE | bits.PTE_RSVD_TRACE))
                continue
            for page in vma.pages():
                walk = self._fork_read_leaf(mm, page)
                if walk is None:
                    continue
                entry = walk[3]
                self._fork_check_leaf(entry, page)
                new_ppn = self.alloc_frame(FrameUse.USER)
                self.dram.raw_write(
                    new_ppn << 12, self.dram.raw_read(walk[0] << 12, PAGE))
                self.map_page(child, page, new_ppn,
                              bits.pte_flags(entry) & ~bits.PTE_RSVD_TRACE)
        return child

    def _fork_read_leaf(self, mm: MmStruct, vaddr: int):
        """Read a leaf for fork, *including* non-present non-zero leaves."""
        table = mm.pml4_ppn
        for level in (4, 3, 2):
            index = bits.level_index(vaddr, level)
            entry = self.mmu.pt_ops.read_entry(table, index)
            if not bits.is_present(entry):
                return None
            table = bits.pte_ppn(entry)
        index = bits.level_index(vaddr, 1)
        entry = self.mmu.pt_ops.read_entry(table, index)
        if entry == 0:
            return None
        return (
            bits.pte_ppn(entry), 1,
            self.mmu.pt_ops.entry_paddr(table, index), entry,
        )

    @staticmethod
    def _fork_check_leaf(entry: int, vaddr: int) -> None:
        """The present-bit consistency check that dooms a P-bit tracer."""
        if entry != 0 and not bits.is_present(entry):
            raise KernelPanic(
                f"fork: leaf PTE for {vaddr:#x} is non-zero but not "
                f"present ({entry:#x}) — corrupted page table"
            )

    # ================================================================ exit
    def exit_process(self, process: Process, code: int = 0) -> None:
        """Tear down a process: frames, L1PTs, upper tables."""
        self.dispatch_timers()
        self.clock.advance(self.cost.syscall_ns)
        if not process.alive:
            raise KernelError(f"double exit of pid {process.pid}")
        for vma in list(process.mm.vmas):
            if vma.flags & VmaFlags.DEVICE:
                # Unmap but do not free device frames (driver owns them).
                for page in vma.pages():
                    self.unmap_page(process, page)
                process.mm.remove_vma(vma)
            else:
                self.munmap(process, vma.start, vma.length)
        for table in reversed(process.mm.upper_table_pages):
            self.free_frame(table)
        process.mm.upper_table_pages.clear()
        self.rmap.remove_process(process.pid)
        process.alive = False
        process.exit_code = code
        del self.processes[process.pid]
        if self.current is process:
            self.current = None

    # ============================================================== modules
    def load_module(self, name: str, module) -> None:
        """Load an LKM-style module (calls ``module.load(kernel)``)."""
        if name in self._modules:
            raise KernelError(f"module {name!r} already loaded")
        module.load(self)
        self._modules[name] = module

    def unload_module(self, name: str) -> None:
        """Unload a module (calls ``module.unload(kernel)``)."""
        module = self._modules.pop(name, None)
        if module is None:
            raise KernelError(f"module {name!r} not loaded")
        module.unload(self)

    def module(self, name: str):
        """A loaded module by name, or None."""
        return self._modules.get(name)

    def loaded_modules(self) -> List:
        """All loaded modules (load order)."""
        return list(self._modules.values())

    def defense_overhead_ns(self) -> int:
        """Total simulated time loaded modules added (``overhead_ns``
        accumulators); the workload engine uses this so that slice
        padding cannot mask a defense's cost."""
        return sum(getattr(module, "overhead_ns", 0)
                   for module in self._modules.values())

    # ============================================================== queries
    def l1pt_frames(self) -> List[int]:
        """PPNs of every live L1PT page across all processes."""
        out: List[int] = []
        for process in self.processes.values():
            out.extend(process.mm.pte_page_population.keys())
        return out

    def mapped_ppn_of(self, process: Process, vaddr: int) -> Optional[int]:
        """PPN backing ``vaddr`` (software walk), or None."""
        walk = self.software_walk(process.mm, vaddr)
        return walk[0] if walk else None
