"""Mini-kernel substrate.

SoftTRR is a loadable kernel module; to run it faithfully we need a
kernel for it to load into.  This package provides a small but real one:

* :mod:`repro.kernel.buddy` / :mod:`repro.kernel.slab` — the page and
  small-object allocators (SoftTRR's tree nodes come from a slab cache,
  Section IV-A).
* :mod:`repro.kernel.physmem` — frame bookkeeping and pluggable frame
  *placement policies* (the hook point the baseline defenses CATT / CTA /
  ZebRAM use to partition DRAM).
* :mod:`repro.kernel.hooks` — the dynamic inline-hook framework; SoftTRR
  attaches to ``__pte_alloc``, ``__free_pages`` and ``do_page_fault``
  without modifying kernel code (design principle DP2).
* :mod:`repro.kernel.vma` / :mod:`repro.kernel.process` — VMAs,
  ``mm_struct`` and ``task_struct`` equivalents, fork/exit.
* :mod:`repro.kernel.rmap` — reverse mapping (PPN -> (pid, vaddr)), used
  by the tracer to find the PTEs of an adjacent physical page.
* :mod:`repro.kernel.timer` — kernel timers on the simulated clock.
* :mod:`repro.kernel.devices` — the SCSI-generic driver buffer CATTmew
  abuses (kernel-owned memory mapped user-accessible).
* :mod:`repro.kernel.syscalls` — the syscall surface the LTP-style
  robustness tests (Table V) exercise.
* :mod:`repro.kernel.kernel` — the :class:`~repro.kernel.kernel.Kernel`
  facade: boot, processes, demand paging, module loading.
"""

from .buddy import BuddyAllocator
from .slab import SlabCache
from .physmem import FramePolicy, DefaultFramePolicy, FrameUse
from .hooks import HookManager
from .rmap import ReverseMap
from .timer import KernelTimers
from .vma import Vma, VmaFlags
from .process import Process, MmStruct
from .kernel import Kernel, DIRECT_MAP_BASE
from .devices import SgDevice
from .syscalls import SyscallTable

__all__ = [
    "BuddyAllocator",
    "SlabCache",
    "FramePolicy",
    "DefaultFramePolicy",
    "FrameUse",
    "HookManager",
    "ReverseMap",
    "KernelTimers",
    "Vma",
    "VmaFlags",
    "Process",
    "MmStruct",
    "Kernel",
    "DIRECT_MAP_BASE",
    "SgDevice",
    "SyscallTable",
]
