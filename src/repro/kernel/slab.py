"""Slab allocator for small kernel objects.

SoftTRR allocates its red-black-tree nodes "using the slab allocator,
an efficient memory management mechanism intended for the kernel's small
object allocation" (Section IV-A).  The Fig. 4 memory-consumption curves
are exactly the footprint of these caches plus the pre-allocated PTE
ring buffer, so the model tracks both object-level and page-level usage.

The cache grabs whole pages from a page-frame provider and slices them
into fixed-size slots; freed slots go on a free list and are reused
before new pages are taken.  Empty pages are returned to the provider
opportunistically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..errors import ConfigError, KernelError

PAGE_BYTES = 4096


class SlabCache:
    """A fixed-object-size slab cache.

    ``page_alloc``/``page_free`` supply and reclaim backing frames; they
    default to pure bookkeeping (no real frames) so the cache can also be
    used standalone in tests.
    """

    def __init__(
        self,
        name: str,
        obj_size: int,
        page_alloc: Optional[Callable[[], int]] = None,
        page_free: Optional[Callable[[int], None]] = None,
    ) -> None:
        if obj_size <= 0 or obj_size > PAGE_BYTES:
            raise ConfigError(f"slab object size {obj_size} out of range")
        self.name = name
        self.obj_size = obj_size
        self.objs_per_page = PAGE_BYTES // obj_size
        self._page_alloc = page_alloc
        self._page_free = page_free
        self._fake_next_page = 1 << 40  # synthetic ppn space when unbacked
        # page ppn -> set of free slot indexes
        self._free_slots: Dict[int, Set[int]] = {}
        # live object handle -> (page, slot)
        self._live: Dict[int, tuple] = {}
        self._next_handle = 1
        self.live_objects = 0
        self.total_allocs = 0
        self.total_frees = 0

    # ------------------------------------------------------------- pages
    def _take_page(self) -> int:
        if self._page_alloc is not None:
            page = self._page_alloc()
        else:
            page = self._fake_next_page
            self._fake_next_page += 1
        self._free_slots[page] = set(range(self.objs_per_page))
        return page

    def _release_page(self, page: int) -> None:
        del self._free_slots[page]
        if self._page_free is not None:
            self._page_free(page)

    # ------------------------------------------------------------- alloc
    def alloc(self) -> int:
        """Allocate one object; returns an opaque handle."""
        page = None
        for candidate, slots in self._free_slots.items():
            if slots:
                page = candidate
                break
        if page is None:
            page = self._take_page()
        slot = min(self._free_slots[page])
        self._free_slots[page].discard(slot)
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = (page, slot)
        self.live_objects += 1
        self.total_allocs += 1
        return handle

    def free(self, handle: int) -> None:
        """Free an object handle."""
        location = self._live.pop(handle, None)
        if location is None:
            raise KernelError(f"slab {self.name}: free of dead handle {handle}")
        page, slot = location
        self._free_slots[page].add(slot)
        self.live_objects -= 1
        self.total_frees += 1
        # Return fully-free pages (keep one warm page, like real slab).
        if len(self._free_slots[page]) == self.objs_per_page:
            if len(self._free_slots) > 1:
                self._release_page(page)

    # ------------------------------------------------------------- stats
    def pages_held(self) -> int:
        """Backing pages currently held by the cache."""
        return len(self._free_slots)

    def bytes_held(self) -> int:
        """Footprint in bytes (page-granular, as /proc/slabinfo counts)."""
        return self.pages_held() * PAGE_BYTES

    def bytes_live(self) -> int:
        """Bytes in actually-live objects (object-granular)."""
        return self.live_objects * self.obj_size
