"""Virtual memory areas (VMAs).

Each process's address space is a set of non-overlapping VMAs, as in
Linux.  The collector's initial scan iterates "every virtual page in
each valid virtual memory area (VMA) of each user process"
(Section IV-B), and demand paging consults the VMA of a faulting address
to decide whether the fault is repairable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import KernelError

PAGE = 4096
HUGE = 2 * 1024 * 1024


class VmaFlags(enum.Flag):
    """Access and type flags of a VMA."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    #: Backed by 2 MiB huge pages.
    HUGEPAGE = enum.auto()
    #: Kernel-owned device buffer mapped into user space (SG buffer).
    DEVICE = enum.auto()
    #: Pre-faulted and pinned (mlock).
    LOCKED = enum.auto()

    @classmethod
    def rw(cls) -> "VmaFlags":
        """The common anonymous read/write mapping flags."""
        return cls.READ | cls.WRITE


@dataclass
class Vma:
    """One mapping: [start, end) with flags."""

    start: int
    end: int
    flags: VmaFlags = field(default_factory=VmaFlags.rw)
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.start % PAGE or self.end % PAGE:
            raise KernelError(
                f"VMA [{self.start:#x}, {self.end:#x}) not page-aligned")
        if self.end <= self.start:
            raise KernelError("VMA end must be after start")
        if self.flags & VmaFlags.HUGEPAGE and (
            self.start % HUGE or self.end % HUGE
        ):
            raise KernelError("huge-page VMA must be 2 MiB aligned")

    @property
    def length(self) -> int:
        """Size of the VMA in bytes."""
        return self.end - self.start

    @property
    def page_count(self) -> int:
        """Number of 4 KiB pages covered."""
        return self.length // PAGE

    def contains(self, vaddr: int) -> bool:
        """Whether an address falls inside the VMA."""
        return self.start <= vaddr < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """Whether [start, end) intersects this VMA."""
        return start < self.end and end > self.start

    def pages(self) -> Iterator[int]:
        """Page-aligned virtual addresses of every page in the VMA."""
        return iter(range(self.start, self.end, PAGE))

    def is_writable(self) -> bool:
        """Whether the VMA permits writes."""
        return bool(self.flags & VmaFlags.WRITE)

    def is_huge(self) -> bool:
        """Whether the VMA uses 2 MiB pages."""
        return bool(self.flags & VmaFlags.HUGEPAGE)
