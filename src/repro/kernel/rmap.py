"""Reverse mapping: physical page -> virtual mappings.

SoftTRR's tracer "leverages kernel's reverse mapping feature to
translate a PPN in adj_rbtree to a set of virtual addresses, as a PPN
can be mapped to multiple virtual addresses" (Section IV-C).  The kernel
maintains this map on every map/unmap, exactly like Linux's rmap.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import KernelError


class ReverseMap:
    """PPN -> set of (pid, vaddr) user mappings."""

    def __init__(self) -> None:
        self._map: Dict[int, Set[Tuple[int, int]]] = {}

    def add(self, ppn: int, pid: int, vaddr: int) -> None:
        """Record that ``vaddr`` in process ``pid`` maps ``ppn``."""
        self._map.setdefault(ppn, set()).add((pid, vaddr))

    def remove(self, ppn: int, pid: int, vaddr: int) -> None:
        """Forget one mapping; missing entries are an error (kernel bug)."""
        mappings = self._map.get(ppn)
        if not mappings or (pid, vaddr) not in mappings:
            raise KernelError(
                f"rmap: unmapping untracked ({pid}, {vaddr:#x}) -> {ppn:#x}"
            )
        mappings.discard((pid, vaddr))
        if not mappings:
            del self._map[ppn]

    def remove_process(self, pid: int) -> None:
        """Drop every mapping of a process (exit teardown backstop)."""
        for ppn in list(self._map):
            self._map[ppn] = {m for m in self._map[ppn] if m[0] != pid}
            if not self._map[ppn]:
                del self._map[ppn]

    def mappings_of(self, ppn: int) -> List[Tuple[int, int]]:
        """All (pid, vaddr) pairs mapping ``ppn`` (possibly empty)."""
        return sorted(self._map.get(ppn, ()))

    def is_mapped(self, ppn: int) -> bool:
        """Whether any process maps ``ppn``."""
        return ppn in self._map

    def mapped_page_count(self) -> int:
        """Number of distinct mapped PPNs."""
        return len(self._map)
