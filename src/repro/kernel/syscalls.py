"""The syscall surface exercised by the Table V robustness tests.

Table V stress-tests 20 syscalls of five types (file, network, memory,
process, misc) on the vanilla system and under SoftTRR Δ±1 / Δ±6.  This
module provides those 20 entry points over the mini-kernel, with small
in-memory file and socket tables.  Every syscall goes through
:meth:`SyscallTable._enter`, which dispatches pending kernel timers and
charges syscall cost — so a loaded SoftTRR module's timer work really
interleaves with syscall storms, which is what the robustness test is
probing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BadAddressError, KernelError
from .process import Process
from .vma import VmaFlags


@dataclass
class OpenFile:
    """A file-table entry."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    offset: int = 0


@dataclass
class Socket:
    """A socket-table entry."""

    family: str = "inet"
    listening: bool = False
    backlog: int = 0
    #: In-flight message queue (loopback semantics).
    queue: List[bytes] = field(default_factory=list)


class SyscallTable:
    """POSIX-ish syscalls over the mini-kernel."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self._files: Dict[str, bytearray] = {}
        self._fds: Dict[int, Dict[int, OpenFile]] = {}
        self._sockets: Dict[int, Dict[int, Socket]] = {}
        self._next_fd: Dict[int, int] = {}
        self._prctl_names: Dict[int, str] = {}
        self.calls = 0

    def _enter(self, process: Process) -> None:
        self.calls += 1
        self.kernel.dispatch_timers()
        self.kernel.clock.advance(self.kernel.cost.syscall_ns)
        if self.kernel.current is not process:
            self.kernel.switch_to(process)

    def _fd_table(self, process: Process) -> Dict[int, OpenFile]:
        return self._fds.setdefault(process.pid, {})

    def _sock_table(self, process: Process) -> Dict[int, Socket]:
        return self._sockets.setdefault(process.pid, {})

    def _alloc_fd(self, process: Process) -> int:
        fd = self._next_fd.get(process.pid, 3)
        self._next_fd[process.pid] = fd + 1
        return fd

    # ================================================================ file
    def open(self, process: Process, name: str, create: bool = True) -> int:
        """open(2): returns a file descriptor."""
        self._enter(process)
        if name not in self._files:
            if not create:
                raise KernelError(f"open: no such file {name!r}")
            self._files[name] = bytearray()
        fd = self._alloc_fd(process)
        self._fd_table(process)[fd] = OpenFile(name=name,
                                               data=self._files[name])
        return fd

    def close(self, process: Process, fd: int) -> None:
        """close(2)."""
        self._enter(process)
        if self._fd_table(process).pop(fd, None) is None and \
                self._sock_table(process).pop(fd, None) is None:
            raise KernelError(f"close: bad fd {fd}")

    def ftruncate(self, process: Process, fd: int, length: int) -> None:
        """ftruncate(2)."""
        self._enter(process)
        entry = self._fd_table(process).get(fd)
        if entry is None:
            raise KernelError(f"ftruncate: bad fd {fd}")
        if length < 0:
            raise KernelError("ftruncate: negative length")
        current = self._files[entry.name]
        if length <= len(current):
            del current[length:]
        else:
            current.extend(b"\x00" * (length - len(current)))

    def rename(self, process: Process, old: str, new: str) -> None:
        """rename(2)."""
        self._enter(process)
        if old not in self._files:
            raise KernelError(f"rename: no such file {old!r}")
        self._files[new] = self._files.pop(old)
        for table in self._fds.values():
            for entry in table.values():
                if entry.name == old:
                    entry.name = new

    def write(self, process: Process, fd: int, data: bytes) -> int:
        """write(2) (needed by several stress loops)."""
        self._enter(process)
        entry = self._fd_table(process).get(fd)
        if entry is None:
            raise KernelError(f"write: bad fd {fd}")
        entry.data.extend(data)
        return len(data)

    # ============================================================= network
    def socket(self, process: Process) -> int:
        """socket(2)."""
        self._enter(process)
        fd = self._alloc_fd(process)
        self._sock_table(process)[fd] = Socket()
        return fd

    def listen(self, process: Process, fd: int, backlog: int = 16) -> None:
        """listen(2)."""
        self._enter(process)
        sock = self._sock_table(process).get(fd)
        if sock is None:
            raise KernelError(f"listen: bad socket fd {fd}")
        sock.listening = True
        sock.backlog = backlog

    def send(self, process: Process, fd: int, data: bytes) -> int:
        """send(2) (loopback: lands in the socket's own queue)."""
        self._enter(process)
        sock = self._sock_table(process).get(fd)
        if sock is None:
            raise KernelError(f"send: bad socket fd {fd}")
        sock.queue.append(bytes(data))
        return len(data)

    def recv(self, process: Process, fd: int, size: int) -> bytes:
        """recv(2)."""
        self._enter(process)
        sock = self._sock_table(process).get(fd)
        if sock is None:
            raise KernelError(f"recv: bad socket fd {fd}")
        if not sock.queue:
            return b""
        head = sock.queue.pop(0)
        return head[:size]

    # ============================================================== memory
    def mmap(self, process: Process, length: int, *,
             huge: bool = False, name: str = "anon") -> int:
        """mmap(2) (anonymous)."""
        # Kernel mmap path charges its own syscall cost.
        return self.kernel.mmap(process, length, huge=huge, name=name)

    def munmap(self, process: Process, vaddr: int, length: int) -> None:
        """munmap(2)."""
        self.kernel.munmap(process, vaddr, length)

    def brk(self, process: Process, new_brk: int) -> int:
        """brk(2)."""
        return self.kernel.brk(process, new_brk)

    def mlock(self, process: Process, vaddr: int, length: int) -> None:
        """mlock(2)."""
        self.kernel.mlock(process, vaddr, length)

    def munlock(self, process: Process, vaddr: int, length: int) -> None:
        """munlock(2): drops the LOCKED attribute (frames stay mapped)."""
        self._enter(process)
        vma = process.mm.find_vma(vaddr)
        if vma is None:
            raise BadAddressError(vaddr, "munlock of unmapped range")
        vma.flags &= ~VmaFlags.LOCKED

    def mremap(self, process: Process, old_vaddr: int, old_len: int,
               new_len: int) -> int:
        """mremap(2)."""
        return self.kernel.mremap(process, old_vaddr, old_len, new_len)

    # ============================================================= process
    def getpid(self, process: Process) -> int:
        """getpid(2)."""
        self._enter(process)
        return process.pid

    def clone(self, process: Process, name: Optional[str] = None) -> Process:
        """clone(2)/fork(2)."""
        self._enter(process)
        return self.kernel.fork(process, name)

    def exit(self, process: Process, code: int = 0) -> None:
        """exit(2)."""
        self._enter(process)
        self._fds.pop(process.pid, None)
        self._sockets.pop(process.pid, None)
        self.kernel.exit_process(process, code)

    # ================================================================ misc
    def ioctl(self, process: Process, fd: int, request: int) -> int:
        """ioctl(2): accepted on any open fd; returns 0."""
        self._enter(process)
        if fd not in self._fd_table(process) and \
                fd not in self._sock_table(process):
            raise KernelError(f"ioctl: bad fd {fd}")
        return 0

    def prctl(self, process: Process, name: str) -> int:
        """prctl(2) (PR_SET_NAME flavour)."""
        self._enter(process)
        self._prctl_names[process.pid] = name[:16]
        process.name = name[:16]
        return 0

    def vhangup(self, process: Process) -> int:
        """vhangup(2): hang up the controlling terminal (modelled no-op)."""
        self._enter(process)
        return 0
