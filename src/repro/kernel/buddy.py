"""Buddy page allocator.

A standard power-of-two buddy system over a contiguous physical frame
range, like Linux's zone allocator.  Orders 0..``max_order``; freeing
coalesces with the buddy block when it is free and of the same order.

The reproduction needs a real allocator (not a bump pointer) because

* page-table pages and user pages must *interleave* in physical memory
  over time — that interleaving is what creates the attacker-relevant
  adjacency between user rows and L1PT rows; and
* the baseline defenses (CATT, CTA, ZebRAM) are precisely allocator
  modifications, so they need a real allocator to modify.
"""

from __future__ import annotations

from typing import Dict, Set

from ..errors import ConfigError, KernelError, OutOfMemoryError


class BuddyAllocator:
    """Buddy allocator over frames [start_ppn, start_ppn + frame_count)."""

    def __init__(self, start_ppn: int, frame_count: int, max_order: int = 10) -> None:
        if frame_count <= 0:
            raise ConfigError("buddy needs at least one frame")
        if max_order < 0 or max_order > 18:
            raise ConfigError("max_order out of sane range")
        self.start_ppn = start_ppn
        self.frame_count = frame_count
        self.max_order = max_order
        # order -> set of block base PPNs (relative to start for buddy math).
        self._free: Dict[int, Set[int]] = {o: set() for o in range(max_order + 1)}
        self._allocated: Dict[int, int] = {}  # base ppn -> order
        self._seed_free_lists()
        self.alloc_count = 0
        self.free_count = 0

    def _seed_free_lists(self) -> None:
        """Carve the range into maximal aligned power-of-two blocks.

        Alignment is *absolute* (a block of order k starts at a PPN that
        is a multiple of 2**k), which x86 huge pages require.
        """
        ppn = self.start_ppn
        end = self.start_ppn + self.frame_count
        while ppn < end:
            order = min(self.max_order, (end - ppn).bit_length() - 1)
            while order > 0 and ppn & ((1 << order) - 1):
                order -= 1
            self._free[order].add(ppn)
            ppn += 1 << order

    # ------------------------------------------------------------- alloc
    def alloc_pages(self, order: int = 0) -> int:
        """Allocate a 2**order-frame block; returns its base PPN."""
        if not 0 <= order <= self.max_order:
            raise KernelError(f"order {order} out of range")
        current = order
        while current <= self.max_order and not self._free[current]:
            current += 1
        if current > self.max_order:
            raise OutOfMemoryError(
                f"buddy exhausted: no block of order >= {order} "
                f"({self.free_frames()} frames free but fragmented)"
            )
        base = min(self._free[current])  # deterministic choice
        self._free[current].discard(base)
        # Split down to the requested order.
        while current > order:
            current -= 1
            buddy = base + (1 << current)
            self._free[current].add(buddy)
        self._allocated[base] = order
        self.alloc_count += 1
        return base

    def alloc_specific(self, ppn: int) -> int:
        """Allocate exactly the frame ``ppn`` (order 0).

        Splits whatever free block contains it.  This is not a normal
        allocator operation — it models the *kernel-assisted* placement
        the paper's evaluation uses to convert probabilistic spraying
        into a deterministic attack ("we ask the kernel to copy the
        content of the m pages of L1PTs into the m vulnerable pages",
        Section V-A).
        """
        if not self.contains(ppn):
            raise KernelError(f"frame {ppn:#x} outside this allocator")
        for order in range(self.max_order + 1):
            base = ppn & ~((1 << order) - 1)
            if base in self._free[order]:
                self._free[order].discard(base)
                # Split down, keeping the halves that don't hold ppn.
                current = order
                while current > 0:
                    current -= 1
                    half = 1 << current
                    low, high = base, base + half
                    if ppn < high:
                        self._free[current].add(high)
                        base = low
                    else:
                        self._free[current].add(low)
                        base = high
                self._allocated[ppn] = 0
                self.alloc_count += 1
                return ppn
        raise KernelError(f"frame {ppn:#x} is not free")

    # -------------------------------------------------------------- free
    def free_pages(self, base_ppn: int, order: int = 0) -> None:
        """Free a block previously returned by :meth:`alloc_pages`."""
        recorded = self._allocated.pop(base_ppn, None)
        if recorded is None:
            raise KernelError(f"free of unallocated block ppn={base_ppn:#x}")
        if recorded != order:
            self._allocated[base_ppn] = recorded
            raise KernelError(
                f"free order mismatch at ppn={base_ppn:#x}: "
                f"allocated order {recorded}, freeing order {order}"
            )
        self.free_count += 1
        # Coalesce with buddies while possible (absolute buddy math).
        ppn = base_ppn
        end = self.start_ppn + self.frame_count
        while order < self.max_order:
            buddy_ppn = ppn ^ (1 << order)
            if buddy_ppn not in self._free[order]:
                break
            if buddy_ppn < self.start_ppn or buddy_ppn + (1 << order) > end:
                break
            self._free[order].discard(buddy_ppn)
            ppn = min(ppn, buddy_ppn)
            order += 1
        self._free[order].add(ppn)

    # ------------------------------------------------------------- stats
    def free_frames(self) -> int:
        """Total free frames (across all orders)."""
        return sum(len(blocks) << order for order, blocks in self._free.items())

    def allocated_frames(self) -> int:
        """Total allocated frames."""
        return sum(1 << order for order in self._allocated.values())

    def is_allocated(self, base_ppn: int) -> bool:
        """Whether ``base_ppn`` is the base of a live allocation."""
        return base_ppn in self._allocated

    def contains(self, ppn: int) -> bool:
        """Whether ``ppn`` falls inside this allocator's range."""
        return self.start_ppn <= ppn < self.start_ppn + self.frame_count

    def largest_free_order(self) -> int:
        """Largest order with a free block, or -1 if empty."""
        for order in range(self.max_order, -1, -1):
            if self._free[order]:
                return order
        return -1
