"""Dynamic inline-hook (trampoline) framework.

SoftTRR's prototype "performs dynamic inline hooks to multiple kernel
functions ... without kernel recompilation or binary rewriting"
(Section IV-B), using a detours library on ``__pte_alloc`` and
``__free_pages``, plus a hook on ``do_page_fault``.

The model exposes named hook points the kernel calls at the equivalent
places.  Two dispatch styles exist, matching how the real hooks are
used:

* **notifier hooks** (:meth:`HookManager.notify`) — every registered
  callback runs; used for ``__pte_alloc`` / ``__free_pages``.
* **handler hooks** (:meth:`HookManager.dispatch`) — callbacks run in
  registration order until one returns a non-``None`` result, which is
  returned to the caller; used for ``do_page_fault``, where SoftTRR's
  hook consumes RSVD faults and passes everything else to the default
  handler.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import HookError

#: Hook points the kernel exposes, mirroring the functions the paper hooks.
HOOK_PTE_ALLOC = "__pte_alloc"
#: L2 (PMD) table births — used by the Section VII extension that
#: protects higher-level page tables.
HOOK_PMD_ALLOC = "__pmd_alloc"
HOOK_FREE_PAGES = "__free_pages"
HOOK_PAGE_FAULT = "do_page_fault"
#: Runs after the default fault handler repaired a fault; carries the
#: newly mapped page.  This is the wrapping half of the do_page_fault
#: detour: the tracer uses it to catch "any new page that is allocated
#: for the user space in the default page fault handler" (Section IV-C).
HOOK_PAGE_FAULT_POST = "do_page_fault_post"
HOOK_CONTEXT_SWITCH = "context_switch"
#: Fires whenever a user mapping is installed (demand paging, fork
#: copies, SG-buffer setup).  Carries (process, vaddr, ppn, leaf_level).
#: SoftTRR's tracer uses it to catch pages that become adjacent after
#: the initial collection ("free pages that are adjacent to L1PT pages
#: and allocated for use later", Section IV-B).
HOOK_PAGE_MAPPED = "page_mapped"
#: Fires when kernel unmap code clears a live leaf PTE (writes zero
#: over it).  Carries the entry's physical address.  SoftTRR's tracer
#: needs it to drop any armed record for the slot — otherwise a stale
#: registry entry would block re-arming when the slot is recycled (and
#: trip the PTE sanitizer's tracked-but-unmarked invariant).
HOOK_PTE_CLEARED = "pte_cleared"

KNOWN_HOOKS = (
    HOOK_PTE_ALLOC,
    HOOK_PMD_ALLOC,
    HOOK_FREE_PAGES,
    HOOK_PAGE_FAULT,
    HOOK_PAGE_FAULT_POST,
    HOOK_CONTEXT_SWITCH,
    HOOK_PAGE_MAPPED,
    HOOK_PTE_CLEARED,
)


class HookManager:
    """Registry and dispatcher for kernel hook points."""

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Callable]] = {name: [] for name in KNOWN_HOOKS}
        self.dispatch_count: Dict[str, int] = {name: 0 for name in KNOWN_HOOKS}
        # Trace hub, or None when tracing is off (repro.trace attaches).
        self.trace = None

    def register(self, point: str, callback: Callable) -> None:
        """Install ``callback`` on ``point`` (like installing a detour)."""
        if point not in self._hooks:
            raise HookError(f"unknown hook point {point!r}")
        if callback in self._hooks[point]:
            raise HookError(f"callback already hooked on {point!r}")
        self._hooks[point].append(callback)

    def unregister(self, point: str, callback: Callable) -> None:
        """Remove a previously installed hook."""
        if point not in self._hooks:
            raise HookError(f"unknown hook point {point!r}")
        try:
            self._hooks[point].remove(callback)
        except ValueError:
            raise HookError(f"callback not hooked on {point!r}") from None

    def hook(self, point: str, callback: Callable) -> None:
        """Install a detour — the paper's vocabulary for :meth:`register`."""
        self.register(point, callback)

    def unhook(self, point: str, callback: Callable) -> None:
        """Remove a detour — the paper's vocabulary for :meth:`unregister`.

        Raises :class:`~repro.errors.HookError` (never ``ValueError``,
        never a silent pass) when the point is unknown or the callback
        was not hooked, keeping it exactly symmetric with :meth:`hook`,
        which rejects double installation the same way.
        """
        self.unregister(point, callback)

    def unregister_all(self, owner_callbacks) -> None:
        """Remove every callback in ``owner_callbacks`` wherever installed.

        Convenience for module unload: a module passes the callbacks it
        registered and they are detached from all points.
        """
        for point, callbacks in self._hooks.items():
            self._hooks[point] = [
                cb for cb in callbacks if cb not in owner_callbacks
            ]

    def hooked(self, point: str) -> int:
        """Number of callbacks installed on a point."""
        if point not in self._hooks:
            raise HookError(f"unknown hook point {point!r}")
        return len(self._hooks[point])

    def callbacks(self, point: str) -> List[Callable]:
        """A copy of the callbacks installed on a point, in order."""
        if point not in self._hooks:
            raise HookError(f"unknown hook point {point!r}")
        return list(self._hooks[point])

    # ---------------------------------------------------------- dispatch
    def notify(self, point: str, *args, **kwargs) -> None:
        """Run every callback on ``point`` (notifier style)."""
        self.dispatch_count[point] += 1
        if self.trace is not None:
            self.trace.emit("hook.notify", point=point)
        for callback in list(self._hooks[point]):
            callback(*args, **kwargs)

    def dispatch(self, point: str, *args, **kwargs) -> Optional[Any]:
        """Run callbacks until one handles the event (handler style).

        Returns the first non-``None`` result, or ``None`` if no hook
        claimed the event (the caller then runs the default path).
        """
        self.dispatch_count[point] += 1
        for callback in list(self._hooks[point]):
            result = callback(*args, **kwargs)
            if result is not None:
                return result
        return None
