"""Process model: ``task_struct`` and ``mm_struct`` equivalents.

The collector enumerates "the list of task_struct to find every existing
process" (Section IV-B), and the tracer stores ``mm`` pointers in its
ring buffer to pair a PTE with the address space it belongs to.

The kernel (not this module) performs the actual page-table surgery;
``MmStruct`` only carries the address-space state: the PML4 root, the
VMA set, layout cursors and per-page-table occupancy counters used to
decide when an L1PT page can be freed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import KernelError
from .vma import Vma

#: Default bases of the simulated user layout.
MMAP_BASE = 0x0000_7F00_0000_0000
BRK_BASE = 0x0000_5555_0000_0000
HUGE_MMAP_BASE = 0x0000_7E00_0000_0000


class MmStruct:
    """Address-space state of one process."""

    def __init__(self, pml4_ppn: int) -> None:
        self.pml4_ppn = pml4_ppn
        self.vmas: List[Vma] = []
        self.mmap_cursor = MMAP_BASE
        self.huge_cursor = HUGE_MMAP_BASE
        self.brk_start = BRK_BASE
        self.brk = BRK_BASE
        #: L1PT ppn -> number of present leaf entries (to free empty PTs).
        self.pte_page_population: Dict[int, int] = {}
        #: Upper-level table pages (L4/L3/L2) owned by this mm.
        self.upper_table_pages: List[int] = []
        #: table ppn -> paging level (4 = PML4 ... 2 = PD); L1 pages are
        #: tracked via ``pte_page_population``.
        self.table_levels: Dict[int, int] = {}

    # --------------------------------------------------------------- VMAs
    def find_vma(self, vaddr: int) -> Optional[Vma]:
        """The VMA containing ``vaddr``, or None."""
        for vma in self.vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def add_vma(self, vma: Vma) -> None:
        """Insert a VMA, refusing overlaps."""
        for existing in self.vmas:
            if existing.overlaps(vma.start, vma.end):
                raise KernelError(
                    f"VMA [{vma.start:#x},{vma.end:#x}) overlaps "
                    f"[{existing.start:#x},{existing.end:#x})"
                )
        self.vmas.append(vma)
        self.vmas.sort(key=lambda v: v.start)

    def remove_vma(self, vma: Vma) -> None:
        """Remove a VMA object."""
        try:
            self.vmas.remove(vma)
        except ValueError:
            raise KernelError("removing unknown VMA") from None

    def total_mapped_bytes(self) -> int:
        """Sum of VMA lengths."""
        return sum(v.length for v in self.vmas)


@dataclass
class Process:
    """A simulated task."""

    pid: int
    name: str
    mm: MmStruct
    parent_pid: Optional[int] = None
    alive: bool = True
    #: Set by exit(); inspected by robustness tests.
    exit_code: Optional[int] = None

    def __hash__(self) -> int:
        return hash(self.pid)

    def __eq__(self, other) -> bool:
        return isinstance(other, Process) and other.pid == self.pid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else f"exited({self.exit_code})"
        return f"<Process {self.pid} {self.name!r} {state}>"
