"""Frame bookkeeping and pluggable frame-placement policies.

Every physical frame allocation in the kernel goes through a
:class:`FramePolicy`.  The default policy is a single buddy pool — the
vanilla Linux behaviour SoftTRR runs on ("without requiring a new memory
allocator or changing legacy allocator logic", Section III-C).

The *baseline* defenses the paper compares against are allocator
modifications, and they plug in here:

* CATT partitions frames into kernel vs user pools with DRAM-row guards;
* CTA gives level-1 page tables a dedicated region;
* ZebRAM stripes sensitive rows in a zebra pattern.

:class:`FrameUse` tags each allocation with its purpose so policies can
discriminate, and so the kernel can fire the right hooks on free.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..errors import KernelError
from .buddy import BuddyAllocator


class FrameUse(enum.Enum):
    """What an allocated frame is for (drives placement policies)."""

    USER = "user"
    PAGE_TABLE = "pagetable"
    KERNEL = "kernel"
    #: Kernel driver buffer that ends up user-accessible (SG buffer).
    SG_BUFFER = "sg"


class FramePolicy:
    """Interface for frame-placement policies."""

    name = "abstract"

    def alloc(self, use: FrameUse, order: int = 0) -> int:
        """Allocate a 2**order block for ``use``; returns base PPN."""
        raise NotImplementedError

    def free(self, base_ppn: int, use: FrameUse, order: int = 0) -> None:
        """Free a block previously allocated for ``use``."""
        raise NotImplementedError

    def free_frames(self) -> int:
        """Frames still available."""
        raise NotImplementedError

    def alloc_specific(self, ppn: int, use: FrameUse) -> int:
        """Allocate exactly ``ppn`` for ``use`` (kernel-assisted
        placement).  Policies that partition memory must *refuse* a
        placement that violates their isolation — that refusal is
        exactly how CATT/CTA stop the Memory Spray placement step."""
        raise NotImplementedError


class DefaultFramePolicy(FramePolicy):
    """Vanilla kernel behaviour: one buddy pool for everything.

    This is what makes user pages land next to (and inside the same rows
    as) L1PT pages — the adjacency every attack in the paper exploits.
    """

    name = "default"

    def __init__(self, buddy: BuddyAllocator) -> None:
        self.buddy = buddy

    def alloc(self, use: FrameUse, order: int = 0) -> int:
        return self.buddy.alloc_pages(order)

    def free(self, base_ppn: int, use: FrameUse, order: int = 0) -> None:
        self.buddy.free_pages(base_ppn, order)

    def free_frames(self) -> int:
        return self.buddy.free_frames()

    def alloc_specific(self, ppn: int, use: FrameUse) -> int:
        return self.buddy.alloc_specific(ppn)


class FrameTable:
    """Tracks every live frame's use (the kernel's ``struct page`` array).

    Needed so ``__free_pages`` hooks can tell what kind of page is being
    released, and so integrity checks can enumerate all L1PT frames.
    """

    def __init__(self, total_frames: int) -> None:
        self.total_frames = total_frames
        self._use: Dict[int, FrameUse] = {}
        self._order: Dict[int, int] = {}

    def record_alloc(self, base_ppn: int, use: FrameUse, order: int) -> None:
        """Record an allocation of 2**order frames at ``base_ppn``."""
        if base_ppn in self._use:
            raise KernelError(f"frame {base_ppn:#x} double-allocated")
        self._use[base_ppn] = use
        self._order[base_ppn] = order

    def record_free(self, base_ppn: int) -> tuple:
        """Forget an allocation; returns (use, order)."""
        use = self._use.pop(base_ppn, None)
        if use is None:
            raise KernelError(f"frame {base_ppn:#x} freed but not allocated")
        order = self._order.pop(base_ppn)
        return use, order

    def use_of(self, base_ppn: int) -> Optional[FrameUse]:
        """Use of a live allocation base, or None."""
        return self._use.get(base_ppn)

    def frames_with_use(self, use: FrameUse) -> list:
        """Base PPNs of all live allocations of a given use."""
        return [ppn for ppn, u in self._use.items() if u is use]

    def live_count(self) -> int:
        """Number of live allocations."""
        return len(self._use)
