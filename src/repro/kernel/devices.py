"""The SCSI-generic (SG) driver buffer CATTmew exploits.

CATTmew [12] breaks CATT's user/kernel physical isolation "by
identifying device (e.g., SCSI Generic) driver buffers that are kernel
memory but can be accessed by unprivileged users" (Section V-B).  The
kernel allocates the buffer from *kernel* frames (so a CATT-style
partition places it in the kernel region, next to page tables) and then
maps it into the calling process's address space with user permissions —
the exact double-ownership hole the attack rides.

The paper's evaluation also relies on the machine granting a large SG
buffer ("we can apply as large as 123 MiB and only 8m KiB ... are
enough"), so the device enforces only a generous cap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import KernelError
from ..mmu import bits
from .physmem import FrameUse
from .process import Process
from .vma import PAGE, Vma, VmaFlags

#: Where SG mappings land in user space (away from the mmap area).
SG_MAP_BASE = 0x0000_7A00_0000_0000


class SgDevice:
    """Simulated /dev/sg driver with user-mappable kernel buffers."""

    def __init__(self, kernel, max_buffer_bytes: int = 32 * 1024 * 1024) -> None:
        self.kernel = kernel
        self.max_buffer_bytes = max_buffer_bytes
        #: (pid, vaddr base) -> list of kernel frame PPNs
        self._buffers: Dict[Tuple[int, int], List[int]] = {}
        self._next_base = SG_MAP_BASE
        self.total_allocated_bytes = 0

    def alloc_buffer(self, process: Process, length: int) -> int:
        """Allocate an SG buffer and map it into ``process``.

        Returns the user virtual base address.  The frames are allocated
        with :attr:`FrameUse.SG_BUFFER` — *kernel* memory from a
        partitioning defense's point of view.
        """
        length = (length + PAGE - 1) & ~(PAGE - 1)
        if length <= 0 or length > self.max_buffer_bytes:
            raise KernelError(
                f"SG buffer of {length} bytes exceeds device cap "
                f"{self.max_buffer_bytes}"
            )
        base = self._next_base
        self._next_base += length + PAGE
        frames: List[int] = []
        vma = Vma(base, base + length,
                  VmaFlags.READ | VmaFlags.WRITE | VmaFlags.DEVICE,
                  name="sg-buffer")
        process.mm.add_vma(vma)
        flags = bits.PTE_PRESENT | bits.PTE_RW | bits.PTE_USER | bits.PTE_NX
        for offset in range(0, length, PAGE):
            ppn = self.kernel.alloc_frame(FrameUse.SG_BUFFER)
            frames.append(ppn)
            self.kernel.map_page(process, base + offset, ppn, flags)
        self._buffers[(process.pid, base)] = frames
        self.total_allocated_bytes += length
        return base

    def free_buffer(self, process: Process, base: int) -> None:
        """Release an SG buffer (unmap + free the kernel frames)."""
        frames = self._buffers.pop((process.pid, base), None)
        if frames is None:
            raise KernelError(f"no SG buffer at {base:#x} for pid {process.pid}")
        vma = process.mm.find_vma(base)
        if vma is not None:
            for page in vma.pages():
                self.kernel.unmap_page(process, page)
            process.mm.remove_vma(vma)
        for ppn in frames:
            self.kernel.free_frame(ppn)
        self.total_allocated_bytes -= len(frames) * PAGE

    def buffer_frames(self, process: Process, base: int) -> List[int]:
        """The kernel PPNs backing a buffer (attack reconnaissance)."""
        frames = self._buffers.get((process.pid, base))
        if frames is None:
            raise KernelError(f"no SG buffer at {base:#x} for pid {process.pid}")
        return list(frames)

    def remap_buffer_frame(self, process: Process, base: int,
                           index: int, new_ppn: int) -> int:
        """Swap one buffer page's backing frame (evaluation harness).

        Models the paper's kernel-assisted step: "We instruct the kernel
        to copy the allocated SG buffer's content into the 2m aggressor
        pages and change the buffer's address mappings accordingly"
        (Section V-B).  Returns the old PPN.
        """
        frames = self.buffer_frames(process, base)
        if not 0 <= index < len(frames):
            raise KernelError(f"SG buffer page index {index} out of range")
        vaddr = base + index * PAGE
        old_ppn = frames[index]
        # Copy content, then swap the mapping.
        data = self.kernel.dram.raw_read(old_ppn << 12, PAGE)
        self.kernel.dram.raw_write(new_ppn << 12, data)
        self.kernel.unmap_page(process, vaddr)
        flags = bits.PTE_PRESENT | bits.PTE_RW | bits.PTE_USER | bits.PTE_NX
        self.kernel.map_page(process, vaddr, new_ppn, flags)
        self._buffers[(process.pid, base)][index] = new_ppn
        return old_ppn
