"""Common defense interface and kernel-boot helper.

A defense can contribute two things:

* a *frame-placement policy* (allocator modification — what CATT, CTA
  and ZebRAM are), installed at boot; and/or
* a *module* installed after boot (what ANVIL and SoftTRR are).

``boot_kernel(spec, defense)`` builds a machine with both applied, which
is what the security benches iterate over.

Defenses self-register by decorating their class with
:func:`register_defense`; ``DEFENSES`` is the resulting name -> factory
catalogue, loaded lazily so importing this module never drags in every
defense (or trips an import cycle).
"""

from __future__ import annotations

import importlib
from collections.abc import Mapping
from typing import Callable, Dict, Iterator, Optional

from ..config import MachineSpec
from ..core.profile import SoftTrrParams
from ..core.softtrr import SoftTrr
from ..kernel.kernel import Kernel


class Defense:
    """Interface for a deployable defense configuration."""

    name = "abstract"
    #: Short description used by report tables.
    summary = ""

    def frame_policy_factory(self) -> Optional[Callable]:
        """Factory passed to :class:`Kernel` (None = vanilla allocator)."""
        return None

    def install(self, kernel: Kernel) -> None:
        """Post-boot installation (module load, timers...)."""

    def module_name(self) -> Optional[str]:
        """Name under which :meth:`install` registered a module."""
        return None


#: Modules that define ``@register_defense``-decorated classes.  The
#: registry imports these on first lookup, so nothing pays the import
#: cost (or risks a cycle) until a defense is actually requested.
_DEFENSE_MODULES = (
    "repro.defenses.alis",
    "repro.defenses.anvil",
    "repro.defenses.catt",
    "repro.defenses.cta",
    "repro.defenses.riprh",
    "repro.defenses.zebram",
    "repro.defenses.trackers.chiptrr",
    "repro.defenses.trackers.para",
    "repro.defenses.trackers.misra_gries",
    "repro.defenses.trackers.ptmp",
    "repro.defenses.trackers.dapper",
)


class DefenseRegistry(Mapping):
    """Name -> Defense factory, populated by :func:`register_defense`.

    A read-only mapping from the outside; defense modules add themselves
    by decorating their :class:`Defense` subclass, exactly like lint
    rules do with ``@register_rule``.  Unknown names raise a
    :class:`KeyError` that lists the full catalogue.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Defense]] = {}
        self._loaded = False

    def register(self, factory: Callable[..., Defense]):
        name = getattr(factory, "name", None)
        if not name or name == Defense.name:
            raise ValueError(
                f"defense class {factory!r} must define a concrete `name`"
            )
        # Re-registration (module reload, tests) replaces by name.
        self._factories[name] = factory
        return factory

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in _DEFENSE_MODULES:
            importlib.import_module(module)

    def __getitem__(self, key: str) -> Callable[..., Defense]:
        self._load()
        try:
            return self._factories[key]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(
                f"unknown defense {key!r}; known: {known}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        self._load()
        return iter(self._factories)

    def __len__(self) -> int:
        self._load()
        return len(self._factories)


#: name -> Defense factory.
DEFENSES = DefenseRegistry()


def register_defense(cls):
    """Class decorator: add a :class:`Defense` subclass to ``DEFENSES``.

    The class registers under its ``name`` attribute.  Registration is
    the *only* boilerplate a new defense needs; the registry, config
    hydration, differential harness parametrization and the zoo sweep
    all read ``DEFENSES``.
    """
    return DEFENSES.register(cls)


@register_defense
class NoDefense(Defense):
    """The vanilla system (the Table II 'attack succeeds' baseline)."""

    name = "vanilla"
    summary = "unmodified kernel and allocator"


@register_defense
class SoftTrrDefense(Defense):
    """SoftTRR as a defense configuration (for head-to-head benches)."""

    name = "softtrr"
    summary = "software-only target row refresh (this paper)"

    def __init__(self, params: Optional[SoftTrrParams] = None) -> None:
        self.params = params or SoftTrrParams()

    def install(self, kernel: Kernel) -> None:
        kernel.load_module("softtrr", SoftTrr(self.params))
        # Let the first tracer tick arm the already-adjacent pages.
        kernel.clock.advance(2 * self.params.timer_inr_ns)
        kernel.dispatch_timers()

    def module_name(self) -> Optional[str]:
        return "softtrr"


def boot_kernel(spec: MachineSpec, defense: Optional[Defense] = None) -> Kernel:
    """Boot a machine with a defense applied (policy + module).

    Compatibility alias: assembly itself lives in :mod:`repro.machine`.
    """
    from ..machine import Machine

    return Machine.from_parts(spec, defense).kernel
