"""Common defense interface and kernel-boot helper.

A defense can contribute two things:

* a *frame-placement policy* (allocator modification — what CATT, CTA
  and ZebRAM are), installed at boot; and/or
* a *module* installed after boot (what ANVIL and SoftTRR are).

``boot_kernel(spec, defense)`` builds a machine with both applied, which
is what the security benches iterate over.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import MachineSpec
from ..core.profile import SoftTrrParams
from ..core.softtrr import SoftTrr
from ..kernel.kernel import Kernel


class Defense:
    """Interface for a deployable defense configuration."""

    name = "abstract"
    #: Short description used by report tables.
    summary = ""

    def frame_policy_factory(self) -> Optional[Callable]:
        """Factory passed to :class:`Kernel` (None = vanilla allocator)."""
        return None

    def install(self, kernel: Kernel) -> None:
        """Post-boot installation (module load, timers...)."""

    def module_name(self) -> Optional[str]:
        """Name under which :meth:`install` registered a module."""
        return None


class NoDefense(Defense):
    """The vanilla system (the Table II 'attack succeeds' baseline)."""

    name = "vanilla"
    summary = "unmodified kernel and allocator"


class SoftTrrDefense(Defense):
    """SoftTRR as a defense configuration (for head-to-head benches)."""

    name = "softtrr"
    summary = "software-only target row refresh (this paper)"

    def __init__(self, params: Optional[SoftTrrParams] = None) -> None:
        self.params = params or SoftTrrParams()

    def install(self, kernel: Kernel) -> None:
        kernel.load_module("softtrr", SoftTrr(self.params))
        # Let the first tracer tick arm the already-adjacent pages.
        kernel.clock.advance(2 * self.params.timer_inr_ns)
        kernel.dispatch_timers()

    def module_name(self) -> Optional[str]:
        return "softtrr"


def boot_kernel(spec: MachineSpec, defense: Optional[Defense] = None) -> Kernel:
    """Boot a machine with a defense applied (policy + module).

    Compatibility alias: assembly itself lives in :mod:`repro.machine`.
    """
    from ..machine import Machine

    return Machine.from_parts(spec, defense).kernel


def _registry() -> Dict[str, Callable[[], Defense]]:
    from .alis import AlisDefense
    from .anvil import AnvilDefense
    from .catt import CattDefense
    from .cta import CtaDefense
    from .riprh import RipRhDefense
    from .zebram import ZebramDefense

    return {
        "vanilla": NoDefense,
        "catt": CattDefense,
        "cta": CtaDefense,
        "zebram": ZebramDefense,
        "anvil": AnvilDefense,
        "riprh": RipRhDefense,
        "alis": AlisDefense,
        "softtrr": SoftTrrDefense,
    }


class _LazyRegistry(dict):
    """Defense registry resolved lazily to avoid import cycles."""

    def __missing__(self, key):
        self.update(_registry())
        # dict.__getitem__ re-enters __missing__ for absent keys, so an
        # unknown defense must raise here rather than recurse.
        if key not in self:
            raise KeyError(key)
        return dict.__getitem__(self, key)

    def keys(self):  # pragma: no cover - convenience
        self.update(_registry())
        return dict.keys(self)


#: name -> Defense factory.
DEFENSES = _LazyRegistry()
