"""RIP-RH [8]: per-process DRAM isolation for sensitive user processes.

The paper's Section VII cites RIP-RH as the existing answer to the
rowhammer *root*-privilege-escalation attack [19] (flipping opcodes of a
setuid binary): it "physically isolates sensitive user processes", so no
attacker-controlled row can neighbour a protected process's frames.

The model: a guarded DRAM region reserved for processes the
administrator marks *sensitive*; their USER frame allocations come from
that region, everything else (other users, kernel, page tables, SG
buffers) from the common region.  Guard rows wider than the maximum
blast radius separate the two.

What it covers and what it does not (both asserted in tests):

* an unprivileged attacker cannot hammer a sensitive process's code or
  data — the adjacency simply does not exist;
* page tables are *not* in the protected region (RIP-RH is a user-data
  defense), so every Section V page-table attack still works — which is
  exactly why the paper positions SoftTRR as complementary.
"""

from __future__ import annotations

from typing import Optional, Set

from ..kernel.buddy import BuddyAllocator
from ..kernel.physmem import FramePolicy, FrameUse
from .base import Defense, register_defense
from .catt import RegionPolicy, _guard_frames

#: Fraction of managed frames reserved for sensitive processes.
SENSITIVE_FRACTION = 0.2


class RipRhPolicy(FramePolicy):
    """Routes USER frames of sensitive processes to a guarded region."""

    name = "riprh"

    def __init__(self, kernel, regions: RegionPolicy,
                 sensitive_pids: Set[int]) -> None:
        self.kernel = kernel
        self._regions = regions
        self._sensitive_pids = sensitive_pids

    def _use_for(self, use: FrameUse) -> FrameUse:
        """Sensitive processes' USER allocations masquerade as the
        synthetic 'sensitive' routing class (KERNEL slot reused)."""
        if use is FrameUse.USER:
            current = self.kernel.current
            if current is not None and current.pid in self._sensitive_pids:
                return FrameUse.KERNEL  # routed to the sensitive region
        return use

    def alloc(self, use: FrameUse, order: int = 0) -> int:
        return self._regions.alloc(self._use_for(use), order)

    def free(self, base_ppn: int, use: FrameUse, order: int = 0) -> None:
        self._regions.free(base_ppn, use, order)

    def free_frames(self) -> int:
        return self._regions.free_frames()

    def alloc_specific(self, ppn: int, use: FrameUse) -> int:
        return self._regions.alloc_specific(ppn, self._use_for(use))

    def region_of(self, ppn: int) -> Optional[str]:
        return self._regions.region_of(ppn)


@register_defense
class RipRhDefense(Defense):
    """RIP-RH as a bootable defense configuration.

    Mark processes with :meth:`mark_sensitive` *before* they allocate
    (as the real system does at exec time for its protected set).
    """

    name = "riprh"
    summary = "per-process DRAM isolation for sensitive users [8]"

    def __init__(self, sensitive_fraction: float = SENSITIVE_FRACTION,
                 guard_rows: int = 8) -> None:
        self.sensitive_fraction = sensitive_fraction
        self.guard_rows = guard_rows
        self.policy: Optional[RipRhPolicy] = None
        self._sensitive_pids: Set[int] = set()

    def mark_sensitive(self, process) -> None:
        """Enrol a process in the isolated region."""
        self._sensitive_pids.add(process.pid)

    def frame_policy_factory(self):
        def factory(default_buddy: BuddyAllocator, kernel) -> RipRhPolicy:
            start = default_buddy.start_ppn
            total = default_buddy.frame_count
            guard = _guard_frames(kernel, self.guard_rows)
            sensitive_count = int(total * self.sensitive_fraction)
            common_count = total - sensitive_count - guard
            sensitive_start = start + common_count + guard
            regions = RegionPolicy([
                # The common region serves everything, including the
                # KERNEL-class allocations of *non*-sensitive contexts.
                ("common", start, common_count,
                 {FrameUse.USER, FrameUse.PAGE_TABLE, FrameUse.SG_BUFFER}),
                # The guarded region serves the sensitive routing class.
                ("sensitive", sensitive_start, sensitive_count,
                 {FrameUse.KERNEL}),
            ])
            self.policy = RipRhPolicy(kernel, regions, self._sensitive_pids)
            return self.policy

        return factory
