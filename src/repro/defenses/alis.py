"""ALIS [47]: DMA-buffer isolation with guard rows.

Section VII's integration sketch: "ALIS on x86 physically isolates DMA
memory using guard rows and bit flips are thus confined to DMA memory of
attackers."  ALIS was built against Throwhammer (remote rowhammer over
RDMA buffers); in this stack the user-mappable DMA memory is the SCSI-
generic driver buffer — precisely the aggressor CATTmew rides.

The model: SG-buffer frames come from a dedicated region separated from
everything else (page tables included) by guard rows wider than the
blast radius.  Consequences, asserted in tests:

* CATTmew dies structurally: the kernel refuses to place an L1PT on an
  SG-region frame, and no SG frame ever neighbours a page-table row;
* Memory Spray is untouched (ALIS isolates DMA memory, nothing else) —
  the complementarity argument for running ALIS *with* SoftTRR.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.buddy import BuddyAllocator
from ..kernel.physmem import FrameUse
from .base import Defense, register_defense
from .catt import RegionPolicy, _guard_frames

#: Fraction of managed frames reserved for DMA buffers.
DMA_FRACTION = 0.15


@register_defense
class AlisDefense(Defense):
    """ALIS as a bootable defense configuration."""

    name = "alis"
    summary = "DMA-buffer isolation with guard rows [47]"

    def __init__(self, dma_fraction: float = DMA_FRACTION,
                 guard_rows: int = 8) -> None:
        self.dma_fraction = dma_fraction
        self.guard_rows = guard_rows
        self.policy: Optional[RegionPolicy] = None

    def frame_policy_factory(self):
        def factory(default_buddy: BuddyAllocator, kernel) -> RegionPolicy:
            start = default_buddy.start_ppn
            total = default_buddy.frame_count
            guard = _guard_frames(kernel, self.guard_rows)
            dma_count = int(total * self.dma_fraction)
            common_count = total - dma_count - guard
            dma_start = start + common_count + guard
            self.policy = RegionPolicy([
                ("common", start, common_count,
                 {FrameUse.USER, FrameUse.KERNEL, FrameUse.PAGE_TABLE}),
                ("dma", dma_start, dma_count, {FrameUse.SG_BUFFER}),
            ])
            return self.policy

        return factory
