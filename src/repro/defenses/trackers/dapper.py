"""DAPPER: mitigation under a per-epoch power budget (arXiv:2501.18857).

Low-power DRAM cannot issue unlimited extra refreshes — every targeted
refresh burns energy and blocks the bank.  DAPPER models the constraint
the LPDDR vendors actually face: a Misra-Gries tracker paired with a
hard cap on mitigations per auto-refresh epoch.  While the budget
lasts, behaviour matches the Graphene-style tracker; once it is spent,
further threshold crossings are *suppressed* — the counter resets (the
engine saw the row) but no refresh goes out, and the suppression is
counted so the comparative sweep can show exactly when the budget, not
the tracker, is the weak link.

The interesting regime for the zoo: many-sided patterns that stay under
ChipTRR's radar are caught here (bigger table), but a wide attack that
*triggers* often enough drains the budget and flips rows anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigError
from ..base import Defense, register_defense
from ...dram.feed import Tracker


@dataclass(frozen=True)
class DapperParams:
    """DAPPER configuration."""

    #: Counter table entries per bank.
    table_entries: int = 8
    #: ACT count at which a tracked row's neighbourhood is refreshed.
    threshold: int = 2_000
    #: Targeted mitigations allowed per bank per auto-refresh epoch;
    #: crossings beyond the budget are suppressed (and counted).
    mitigation_budget: int = 4
    #: How far out to refresh when triggered (rows each side).
    refresh_distance: int = 2

    def __post_init__(self) -> None:
        if self.table_entries < 1:
            raise ConfigError("DAPPER table needs at least one entry")
        if self.threshold < 2:
            raise ConfigError("DAPPER threshold must be >= 2")
        if self.mitigation_budget < 1:
            raise ConfigError("DAPPER mitigation budget must be >= 1")
        if self.refresh_distance < 1:
            raise ConfigError("DAPPER refresh distance must be >= 1")


class DapperTracker(Tracker):
    """Misra-Gries tracking with budget-capped actuation."""

    name = "dapper"

    def __init__(self, params: DapperParams, remap=None) -> None:
        super().__init__()
        self.params = params
        self.remap = remap
        # bank -> [epoch, {row: count}, budget_left]
        self._tables: Dict[int, List] = {}
        self.mitigations = 0
        self.suppressed = 0
        self.evictions = 0

    def _state(self, bank: int, epoch: int) -> List:
        state = self._tables.get(bank)
        if state is None:
            state = [epoch, {}, self.params.mitigation_budget]
            self._tables[bank] = state
        elif state[0] != epoch:
            state[0] = epoch
            state[1] = {}
            state[2] = self.params.mitigation_budget
        return state

    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        if count <= 0:
            return
        state = self._state(bank, epoch)
        table = state[1]
        if row in table:
            table[row] += count
        elif len(table) < self.params.table_entries:
            table[row] = count
        else:
            self.evictions += 1
            dead = []
            for tracked, value in table.items():
                value -= count
                if value <= 0:
                    dead.append(tracked)
                else:
                    table[tracked] = value
            for tracked in dead:
                del table[tracked]
            return
        while table[row] >= self.params.threshold:
            table[row] -= self.params.threshold
            if state[2] > 0:
                state[2] -= 1
                self._issue_refresh(bank, row)
            else:
                # Budget spent: the engine saw the crossing but the
                # refresh never goes out.  The attacker wins this epoch.
                self.suppressed += 1

    def _issue_refresh(self, bank: int, row: int) -> None:
        self.mitigations += 1
        for distance in range(1, self.params.refresh_distance + 1):
            if self.remap is not None:
                for victim in self.remap.neighbors_at(row, distance):
                    self.queue_refresh(bank, victim)
            else:
                self.queue_refresh(bank, row - distance)
                self.queue_refresh(bank, row + distance)

    def tracked_rows(self, bank: int, epoch: int) -> Dict[int, int]:
        """Snapshot of the table for tests/diagnostics."""
        return dict(self._state(bank, epoch)[1])

    def budget_left(self, bank: int, epoch: int) -> int:
        """Remaining mitigations this epoch (tests/diagnostics)."""
        return self._state(bank, epoch)[2]

    def counters(self) -> Dict[str, int]:
        return {
            "mitigations": self.mitigations,
            "suppressed": self.suppressed,
            "evictions": self.evictions,
        }

    def sram_bits(self) -> int:
        counter_bits = max(2, self.params.threshold.bit_length())
        budget_bits = max(1, self.params.mitigation_budget.bit_length())
        return self.params.table_entries * (16 + counter_bits) + budget_bits


@register_defense
class DapperDefense(Defense):
    """DAPPER as a deployable defense configuration."""

    name = "dapper"
    summary = "Misra-Gries tracking, budget-capped mitigation"

    def __init__(self, table_entries: int = 8, threshold: int = 2_000,
                 mitigation_budget: int = 4,
                 refresh_distance: int = 2) -> None:
        self.params = DapperParams(
            table_entries=table_entries,
            threshold=threshold,
            mitigation_budget=mitigation_budget,
            refresh_distance=refresh_distance,
        )
        self._tracker: Optional[DapperTracker] = None

    def install(self, kernel) -> None:
        self._tracker = DapperTracker(
            self.params, remap=kernel.dram.remap
        )
        kernel.dram.feed.subscribe(self._tracker)
