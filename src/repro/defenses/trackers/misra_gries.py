"""Graphene-style Misra-Gries heavy-hitter tracker (Park et al. [41]).

Same summary structure as the in-DRAM ChipTRR model, but sized and
managed the way Graphene proposes for a *provable* guarantee: enough
table entries that any row reaching the rowhammer threshold must be
tracked (Misra-Gries guarantees a row with true count ``c`` has counter
``>= c - A/(k+1)`` for A total ACTs and k entries), and mitigation
*subtracts* the threshold from the counter instead of zeroing it, so a
row that keeps hammering keeps getting mitigated at the right cadence
rather than restarting from scratch.

Counters reset lazily at each auto-refresh epoch, like every other
accumulator in the DRAM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigError
from ..base import Defense, register_defense
from ...dram.feed import Tracker


@dataclass(frozen=True)
class MisraGriesParams:
    """Graphene-style tracker configuration."""

    #: Counter table entries per bank (Graphene sizes this from the
    #: rowhammer threshold; default is deliberately generous vs ChipTRR).
    table_entries: int = 8
    #: ACT count at which a tracked row's neighbourhood is refreshed.
    threshold: int = 2_000
    #: How far out to refresh when triggered (rows each side).
    refresh_distance: int = 2

    def __post_init__(self) -> None:
        if self.table_entries < 1:
            raise ConfigError("Misra-Gries table needs at least one entry")
        if self.threshold < 2:
            raise ConfigError("Misra-Gries threshold must be >= 2")
        if self.refresh_distance < 1:
            raise ConfigError("Misra-Gries refresh distance must be >= 1")


class MisraGriesTracker(Tracker):
    """Per-bank Misra-Gries summary with subtract-on-mitigate."""

    name = "misra_gries"

    def __init__(self, params: MisraGriesParams, remap=None) -> None:
        super().__init__()
        self.params = params
        self.remap = remap
        # bank -> [epoch, {row: count}]
        self._tables: Dict[int, List] = {}
        self.mitigations = 0
        self.evictions = 0

    def _table(self, bank: int, epoch: int) -> Dict[int, int]:
        state = self._tables.get(bank)
        if state is None:
            state = [epoch, {}]
            self._tables[bank] = state
        elif state[0] != epoch:
            state[0] = epoch
            state[1] = {}
        return state[1]

    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        if count <= 0:
            return
        table = self._table(bank, epoch)
        if row in table:
            table[row] += count
        elif len(table) < self.params.table_entries:
            table[row] = count
        else:
            # Misra-Gries spillover: decrement everybody by the arrival
            # weight; rows that hit zero free their entry.
            self.evictions += 1
            dead = []
            for tracked, value in table.items():
                value -= count
                if value <= 0:
                    dead.append(tracked)
                else:
                    table[tracked] = value
            for tracked in dead:
                del table[tracked]
            return
        # Graphene mitigation: subtract the threshold (possibly several
        # times for a large batch) so sustained hammering is mitigated
        # at threshold cadence, not restarted from zero.
        while table[row] >= self.params.threshold:
            table[row] -= self.params.threshold
            self._issue_refresh(bank, row)

    def _issue_refresh(self, bank: int, row: int) -> None:
        self.mitigations += 1
        for distance in range(1, self.params.refresh_distance + 1):
            if self.remap is not None:
                for victim in self.remap.neighbors_at(row, distance):
                    self.queue_refresh(bank, victim)
            else:
                self.queue_refresh(bank, row - distance)
                self.queue_refresh(bank, row + distance)

    def tracked_rows(self, bank: int, epoch: int) -> Dict[int, int]:
        """Snapshot of the table for tests/diagnostics."""
        return dict(self._table(bank, epoch))

    def counters(self) -> Dict[str, int]:
        return {
            "mitigations": self.mitigations,
            "evictions": self.evictions,
        }

    def sram_bits(self) -> int:
        counter_bits = max(2, self.params.threshold.bit_length())
        return self.params.table_entries * (16 + counter_bits)


@register_defense
class MisraGriesDefense(Defense):
    """Graphene-style counting as a deployable defense configuration."""

    name = "misra_gries"
    summary = "Graphene-style Misra-Gries counters, subtract-on-mitigate"

    def __init__(self, table_entries: int = 8, threshold: int = 2_000,
                 refresh_distance: int = 2) -> None:
        self.params = MisraGriesParams(
            table_entries=table_entries,
            threshold=threshold,
            refresh_distance=refresh_distance,
        )
        self._tracker: Optional[MisraGriesTracker] = None

    def install(self, kernel) -> None:
        self._tracker = MisraGriesTracker(
            self.params, remap=kernel.dram.remap
        )
        kernel.dram.feed.subscribe(self._tracker)
