"""The in-DRAM ChipTRR sampler as a first-class zoo defense.

Machine profiles model whether the *module silicon* ships TRR
(``MachineSpec.trr``); this defense instead deploys the identical
Misra-Gries sampler as a configuration choice, so the comparative sweep
can put ChipTRR head-to-head with PARA, Graphene, PTMP, DAPPER and
SoftTRR on the same machine regardless of the profile's silicon.  It
subscribes a second, always-enabled :class:`~repro.dram.chiptrr.ChipTrr`
tracker to the activation feed — the exact class the DRAM model uses,
so the blind spot (many-sided patterns wider than ``tracker_slots``)
is reproduced, not re-implemented.
"""

from __future__ import annotations

from typing import Optional

from ...dram.chiptrr import ChipTrr, TrrParams
from ..base import Defense, register_defense


@register_defense
class ChipTrrDefense(Defense):
    """Deploy the DRAM model's TRR sampler via the activation feed."""

    name = "chiptrr"
    summary = "in-DRAM Misra-Gries sampler (TRRespass-bypassable)"

    def __init__(self, tracker_slots: int = 2, trr_threshold: int = 4_000,
                 refresh_distance: int = 6) -> None:
        self.params = TrrParams(
            enabled=True,
            tracker_slots=tracker_slots,
            trr_threshold=trr_threshold,
            refresh_distance=refresh_distance,
        )
        self._tracker: Optional[ChipTrr] = None

    def install(self, kernel) -> None:
        self._tracker = ChipTrr(self.params, remap=kernel.dram.remap)
        kernel.dram.feed.subscribe(self._tracker)
