"""PARA: probabilistic adjacent row activation (Kim et al. [26]).

The original rowhammer mitigation: on every ACT, with a small
probability ``p`` refresh the activated row's neighbours.  No tracking
state at all — an attacker hammering N times gets caught with
probability ``1 - (1 - p)^N``, which for the paper-recommended
``p = 0.001`` makes a 100k-ACT hammer survive with odds ~4e-44.  The
cost is a steady ~``2p`` refresh overhead on *every* workload, hammered
or not, and no protection guarantee (it is probabilistic, unlike
SoftTRR's precise page-table tracking).

The tracker draws one Bernoulli per ACT from a
:func:`~repro.rng.derive_rng` stream keyed by the machine seed, so runs
are deterministic and scalar/batch/dense execution sees the identical
draw sequence (the feed publishes identically in every mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...errors import ConfigError
from ...rng import Random, derive_rng
from ..base import Defense, register_defense
from ...dram.feed import Tracker


@dataclass(frozen=True)
class ParaParams:
    """PARA configuration."""

    #: Per-ACT probability of refreshing the aggressor's neighbours.
    probability: float = 0.001
    #: How far out to refresh when triggered (rows each side).
    refresh_distance: int = 1
    #: Extra seed component (machine seed is always mixed in).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError("PARA probability must be in (0, 1]")
        if self.refresh_distance < 1:
            raise ConfigError("PARA refresh distance must be >= 1")


class ParaTracker(Tracker):
    """Stateless per-ACT coin flip; zero SRAM."""

    name = "para"

    def __init__(self, params: ParaParams, rng: Random, remap=None) -> None:
        super().__init__()
        self.params = params
        self.rng = rng
        self.remap = remap
        self.triggers = 0

    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        probability = self.params.probability
        rng_random = self.rng.random
        hits = 0
        for _ in range(count):
            if rng_random() < probability:
                hits += 1
        if not hits:
            return
        self.triggers += hits
        for distance in range(1, self.params.refresh_distance + 1):
            if self.remap is not None:
                for victim in self.remap.neighbors_at(row, distance):
                    self.queue_refresh(bank, victim)
            else:
                self.queue_refresh(bank, row - distance)
                self.queue_refresh(bank, row + distance)

    def counters(self) -> Dict[str, int]:
        return {"triggers": self.triggers}

    def sram_bits(self) -> int:
        return 0


@register_defense
class ParaDefense(Defense):
    """PARA as a deployable defense configuration."""

    name = "para"
    summary = "probabilistic adjacent row activation (stateless)"

    def __init__(self, probability: float = 0.001,
                 refresh_distance: int = 1, seed: int = 0) -> None:
        self.params = ParaParams(
            probability=probability,
            refresh_distance=refresh_distance,
            seed=seed,
        )
        self._tracker: Optional[ParaTracker] = None

    def install(self, kernel) -> None:
        rng = derive_rng("tracker", self.name, kernel.spec.seed,
                         self.params.seed)
        self._tracker = ParaTracker(
            self.params, rng, remap=kernel.dram.remap
        )
        kernel.dram.feed.subscribe(self._tracker)
