"""PTMP: probabilistic tracker management policies (arXiv:2404.16256).

Deterministic insertion/eviction policies (LRU, Misra-Gries) are what
TRRespass-style pattern engineering exploits: once the attacker knows
the policy, a pattern that deterministically evicts the aggressors is a
search problem.  PTMP randomises the *management* instead of the
sampling — an untracked arrival is inserted only with probability
``insert_probability``, and when the table is full the slot it takes is
chosen uniformly at random.  No activation pattern can guarantee an
aggressor stays untracked; the attacker can only lower the odds, and
sustained hammering keeps re-rolling them.

Mitigation itself stays deterministic: a tracked row crossing the
threshold gets its neighbourhood refreshed and its counter reset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import ConfigError
from ...rng import Random, derive_rng
from ..base import Defense, register_defense
from ...dram.feed import Tracker


@dataclass(frozen=True)
class PtmpParams:
    """PTMP configuration."""

    #: Counter table entries per bank.
    table_entries: int = 4
    #: ACT count at which a tracked row's neighbourhood is refreshed.
    threshold: int = 2_000
    #: Probability an untracked arrival is inserted (evicting a random
    #: victim when the table is full).
    insert_probability: float = 1 / 16
    #: How far out to refresh when triggered (rows each side).
    refresh_distance: int = 2
    #: Extra seed component (machine seed is always mixed in).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.table_entries < 1:
            raise ConfigError("PTMP table needs at least one entry")
        if self.threshold < 2:
            raise ConfigError("PTMP threshold must be >= 2")
        if not 0.0 < self.insert_probability <= 1.0:
            raise ConfigError("PTMP insert probability must be in (0, 1]")
        if self.refresh_distance < 1:
            raise ConfigError("PTMP refresh distance must be >= 1")


class PtmpTracker(Tracker):
    """Randomised insertion + random eviction, deterministic mitigation."""

    name = "ptmp"

    def __init__(self, params: PtmpParams, rng: Random, remap=None) -> None:
        super().__init__()
        self.params = params
        self.rng = rng
        self.remap = remap
        # bank -> [epoch, {row: count}]
        self._tables: Dict[int, List] = {}
        self.mitigations = 0
        self.insertions = 0
        self.rejected = 0

    def _table(self, bank: int, epoch: int) -> Dict[int, int]:
        state = self._tables.get(bank)
        if state is None:
            state = [epoch, {}]
            self._tables[bank] = state
        elif state[0] != epoch:
            state[0] = epoch
            state[1] = {}
        return state[1]

    def observe(self, bank: int, row: int, count: int, epoch: int,
                now_ns: int) -> None:
        if count <= 0:
            return
        table = self._table(bank, epoch)
        if row not in table:
            # Probabilistic insertion: one roll per arrival *burst* (the
            # burst models back-to-back ACTs of one aggressor, which the
            # policy samples once).
            if self.rng.random() >= self.params.insert_probability:
                self.rejected += 1
                return
            self.insertions += 1
            if len(table) >= self.params.table_entries:
                # Random eviction: the victim slot is drawn uniformly,
                # so no pattern can deterministically shield itself.
                victim = self.rng.choice(sorted(table))
                del table[victim]
            table[row] = 0
        table[row] += count
        if table[row] >= self.params.threshold:
            table[row] = 0
            self._issue_refresh(bank, row)

    def _issue_refresh(self, bank: int, row: int) -> None:
        self.mitigations += 1
        for distance in range(1, self.params.refresh_distance + 1):
            if self.remap is not None:
                for victim in self.remap.neighbors_at(row, distance):
                    self.queue_refresh(bank, victim)
            else:
                self.queue_refresh(bank, row - distance)
                self.queue_refresh(bank, row + distance)

    def tracked_rows(self, bank: int, epoch: int) -> Dict[int, int]:
        """Snapshot of the table for tests/diagnostics."""
        return dict(self._table(bank, epoch))

    def counters(self) -> Dict[str, int]:
        return {
            "mitigations": self.mitigations,
            "insertions": self.insertions,
            "rejected": self.rejected,
        }

    def sram_bits(self) -> int:
        counter_bits = max(2, self.params.threshold.bit_length())
        return self.params.table_entries * (16 + counter_bits)


@register_defense
class PtmpDefense(Defense):
    """PTMP as a deployable defense configuration."""

    name = "ptmp"
    summary = "probabilistic insertion + random eviction tracker"

    def __init__(self, table_entries: int = 4, threshold: int = 2_000,
                 insert_probability: float = 1 / 16,
                 refresh_distance: int = 2, seed: int = 0) -> None:
        self.params = PtmpParams(
            table_entries=table_entries,
            threshold=threshold,
            insert_probability=insert_probability,
            refresh_distance=refresh_distance,
            seed=seed,
        )
        self._tracker: Optional[PtmpTracker] = None

    def install(self, kernel) -> None:
        rng = derive_rng("tracker", self.name, kernel.spec.seed,
                         self.params.seed)
        self._tracker = PtmpTracker(
            self.params, rng, remap=kernel.dram.remap
        )
        kernel.dram.feed.subscribe(self._tracker)
