"""Pluggable activation-tracker defenses (the "zoo").

Each module here pairs a :class:`~repro.dram.feed.Tracker` policy with a
self-registering :class:`~repro.defenses.base.Defense` that subscribes
it to the machine's :class:`~repro.dram.feed.ActivationFeed` at install
time.  The trackers differ only in *policy* — observation (the feed)
and actuation (the shared :class:`~repro.dram.feed.RefreshActuator`)
are common infrastructure:

* :mod:`repro.defenses.trackers.chiptrr` — the in-DRAM Misra-Gries
  sampler as a first-class defense (enabled regardless of the machine
  profile's TRR setting).
* :mod:`repro.defenses.trackers.para` — PARA [26]: stateless
  probabilistic adjacent-row activation; zero SRAM, tunable p.
* :mod:`repro.defenses.trackers.misra_gries` — Graphene-style [41]
  heavy-hitter counting with subtract-on-mitigate, larger tables than
  ChipTRR.
* :mod:`repro.defenses.trackers.ptmp` — PTMP (arXiv:2404.16256):
  probabilistic insertion with random eviction, trading SRAM for a
  small miss probability.
* :mod:`repro.defenses.trackers.dapper` — DAPPER (arXiv:2501.18857):
  budget-capped mitigation for power-constrained parts; exceeds of the
  per-epoch budget are suppressed (and counted).

All trackers share the feed's guarantees: bit-identical behaviour
across scalar/batch and dict/dense execution, snapshot/restore replay,
trace-on ≡ trace-off, and :func:`~repro.rng.derive_rng`-seeded
randomness keyed by the machine seed.
"""

from ...dram.feed import ActivationFeed, RefreshActuator, Tracker
from .chiptrr import ChipTrrDefense
from .para import ParaDefense, ParaParams, ParaTracker
from .misra_gries import MisraGriesDefense, MisraGriesParams, MisraGriesTracker
from .ptmp import PtmpDefense, PtmpParams, PtmpTracker
from .dapper import DapperDefense, DapperParams, DapperTracker

__all__ = [
    "ActivationFeed",
    "RefreshActuator",
    "Tracker",
    "ChipTrrDefense",
    "ParaDefense",
    "ParaParams",
    "ParaTracker",
    "MisraGriesDefense",
    "MisraGriesParams",
    "MisraGriesTracker",
    "PtmpDefense",
    "PtmpParams",
    "PtmpTracker",
    "DapperDefense",
    "DapperParams",
    "DapperTracker",
]
