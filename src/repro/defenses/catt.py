"""CATT [11]: physical user/kernel isolation with guard rows.

"CATT implements DRAM isolation between user and kernel memory"
(Section II-C): the allocator is split so user frames and kernel frames
(including page tables) can never share or neighbour DRAM rows; a guard
gap wider than the maximum blast radius separates the partitions.

What this stops: Memory Spray — no attacker-accessible page can ever be
adjacent to an L1PT row, and the kernel will refuse to place a page
table in the user partition.

What it misses (the paper's Section V-B point): the *SG driver buffer*
is kernel memory, so CATT's own policy places it inside the kernel
partition — right next to page tables — while the driver maps it
user-accessible.  CATTmew hammers straight through the partition.  And
PThammer needs no attacker-adjacent memory at all.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..errors import DefenseError
from ..kernel.buddy import BuddyAllocator
from ..kernel.physmem import FramePolicy, FrameUse
from .base import Defense, register_defense


class RegionPolicy(FramePolicy):
    """Frames partitioned into use-restricted regions with guard gaps.

    ``regions`` is a list of (name, start_ppn, frame_count, allowed
    uses); gaps between regions are never allocated (the guard rows).
    """

    name = "region"

    def __init__(self, regions: Sequence[Tuple[str, int, int, Set[FrameUse]]]) -> None:
        self._regions: List[Tuple[str, BuddyAllocator, Set[FrameUse]]] = []
        for region_name, start, count, uses in regions:
            self._regions.append(
                (region_name, BuddyAllocator(start, count), set(uses)))

    def _region_for_use(self, use: FrameUse):
        for name, buddy, uses in self._regions:
            if use in uses:
                return name, buddy
        raise DefenseError(f"no region accepts {use.value} frames")

    def _region_containing(self, ppn: int):
        for name, buddy, uses in self._regions:
            if buddy.contains(ppn):
                return name, buddy, uses
        return None

    def alloc(self, use: FrameUse, order: int = 0) -> int:
        _, buddy = self._region_for_use(use)
        return buddy.alloc_pages(order)

    def free(self, base_ppn: int, use: FrameUse, order: int = 0) -> None:
        located = self._region_containing(base_ppn)
        if located is None:
            raise DefenseError(f"freeing {base_ppn:#x} outside all regions")
        located[1].free_pages(base_ppn, order)

    def free_frames(self) -> int:
        return sum(buddy.free_frames() for _, buddy, _ in self._regions)

    def alloc_specific(self, ppn: int, use: FrameUse) -> int:
        located = self._region_containing(ppn)
        if located is None:
            raise DefenseError(
                f"frame {ppn:#x} lies in a guard gap — placement refused")
        name, buddy, uses = located
        if use not in uses:
            raise DefenseError(
                f"placement of a {use.value} frame in the {name!r} region "
                f"violates the partition")
        return buddy.alloc_specific(ppn)

    def region_of(self, ppn: int) -> Optional[str]:
        """Region name containing ``ppn`` (diagnostics/tests)."""
        located = self._region_containing(ppn)
        return located[0] if located else None


#: Fraction of managed frames given to the kernel partition.
KERNEL_FRACTION = 0.3


def _guard_frames(kernel, guard_rows: int = 8) -> int:
    """Frames spanning ``guard_rows`` row indexes (across all banks)."""
    geo = kernel.dram.geometry
    frames_per_row_index = geo.capacity_bytes // geo.rows_per_bank // 4096
    return guard_rows * frames_per_row_index


@register_defense
class CattDefense(Defense):
    """CATT as a bootable defense configuration."""

    name = "catt"
    summary = "user/kernel DRAM partition with guard rows [11]"

    def __init__(self, kernel_fraction: float = KERNEL_FRACTION,
                 guard_rows: int = 8) -> None:
        self.kernel_fraction = kernel_fraction
        self.guard_rows = guard_rows
        self.policy: Optional[RegionPolicy] = None

    def frame_policy_factory(self):
        def factory(default_buddy: BuddyAllocator, kernel) -> RegionPolicy:
            start = default_buddy.start_ppn
            total = default_buddy.frame_count
            guard = _guard_frames(kernel, self.guard_rows)
            kernel_count = int(total * self.kernel_fraction)
            user_start = start + kernel_count + guard
            user_count = total - kernel_count - guard
            self.policy = RegionPolicy([
                ("kernel", start, kernel_count,
                 {FrameUse.PAGE_TABLE, FrameUse.KERNEL, FrameUse.SG_BUFFER}),
                ("user", user_start, user_count, {FrameUse.USER}),
            ])
            return self.policy

        return factory
