"""ANVIL [4]: performance-counter-based rowhammer detection.

ANVIL watches the LLC-miss rate; when it spikes, it samples the
addresses of missing *loads* (Intel PEBS), aggregates them per DRAM row,
and issues selective refreshes of the neighbours of hot rows.

The model mirrors the mechanism and both documented weaknesses
(Section II-C):

* **false negatives on PThammer** — PEBS attributes a sample to the
  *load's* address, not to the page-walker's L1PTE fetch; our DRAM
  module tags walker activations ``"walk"`` and ANVIL never sees them
  ("its current implementation cannot detect PThammer").
* **false positives** — any workload with a high miss rate triggers
  sampling and spurious refreshes; the module counts them so the
  benches can report the effect.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..clock import NS_PER_MS
from .base import Defense, register_defense

#: Miss-rate trip point per observation interval.
DEFAULT_MISS_THRESHOLD = 2_000
#: Samples on one row within an interval that mark it an aggressor.
DEFAULT_ROW_THRESHOLD = 16
#: Rows refreshed on each side of a detected aggressor.
REFRESH_DISTANCE = 6


class AnvilModule:
    """The ANVIL detector as a loadable module."""

    name = "anvil"

    def __init__(self, interval_ns: int = NS_PER_MS,
                 miss_threshold: int = DEFAULT_MISS_THRESHOLD,
                 row_threshold: int = DEFAULT_ROW_THRESHOLD) -> None:
        self.interval_ns = interval_ns
        self.miss_threshold = miss_threshold
        self.row_threshold = row_threshold
        self.kernel = None
        self._timer = None
        self._last_misses = 0
        self.detections = 0
        self.refreshes = 0
        self.sampled_intervals = 0
        #: Simulated time this module added (see Kernel.defense_overhead_ns).
        self.overhead_ns = 0

    # ---------------------------------------------------------- lifecycle
    def load(self, kernel) -> None:
        self.kernel = kernel
        self._last_misses = self._miss_proxy()
        self._timer = kernel.timers.add_periodic(
            self.interval_ns, self.tick, name="anvil-tick")

    def _miss_proxy(self) -> int:
        """The LLC-miss performance counter.

        In this simulation every DRAM activation corresponds to a missed
        access (the hybrid hammer loop batches activations without
        individual cache bookkeeping), so the activation counter is the
        faithful stand-in for the LLC-miss MSR.
        """
        return self.kernel.dram.total_activations

    def unload(self, kernel) -> None:
        if self._timer is not None:
            kernel.timers.cancel(self._timer)
            self._timer = None

    # -------------------------------------------------------------- logic
    def tick(self) -> None:
        kernel = self.kernel
        tick_start = kernel.clock.now_ns
        misses = self._miss_proxy()
        delta = misses - self._last_misses
        self._last_misses = misses
        samples = kernel.dram.recent_activations
        if delta < self.miss_threshold:
            samples.clear()
            return
        self.sampled_intervals += 1
        # Phase 2: attribute sampled *data* loads to rows.  Walker
        # activations carry no load address and are invisible.
        counts = Counter(
            (bank, row) for bank, row, origin in samples if origin == "data")
        samples.clear()
        for (bank, row), count in counts.items():
            if count < self.row_threshold:
                continue
            self.detections += 1
            for distance in range(1, REFRESH_DISTANCE + 1):
                for victim in kernel.dram.remap.neighbors_at(row, distance):
                    kernel.dram.refresh_row(bank, victim)
                    self.refreshes += 1
        # Selective refresh costs time (row reads through the cache).
        kernel.clock.advance(500 + 200 * self.refreshes_this_tick(counts))
        kernel.accountant.charge("anvil", 500)
        self.overhead_ns += kernel.clock.now_ns - tick_start

    def refreshes_this_tick(self, counts) -> int:
        """Rows refreshed for this tick's hot set (cost accounting)."""
        hot = sum(1 for c in counts.values() if c >= self.row_threshold)
        return hot * 2 * REFRESH_DISTANCE


@register_defense
class AnvilDefense(Defense):
    """ANVIL as a bootable defense configuration."""

    name = "anvil"
    summary = "PMU-based detection + selective refresh [4]"

    def __init__(self, **kwargs) -> None:
        self.kwargs = kwargs
        self.module: Optional[AnvilModule] = None

    def install(self, kernel) -> None:
        self.module = AnvilModule(**self.kwargs)
        kernel.load_module("anvil", self.module)

    def module_name(self) -> Optional[str]:
        return "anvil"
