"""CTA [52]: a dedicated DRAM region for level-1 page tables.

"CTA provides a dedicated DRAM region for level-1 page tables"
(Section II-C): L1PTs live in their own partition (plus the monotonic-
pointer integrity scheme, which matters for exploitation but not for
the adjacency physics modelled here).  Nothing attacker-accessible —
user pages *or* SG buffers — can neighbour an L1PT row, so both Memory
Spray and CATTmew fail at placement.

The blind spot the paper leans on: *L1PTs still neighbour L1PTs inside
the dedicated region*, and PThammer hammers L1PTEs through page walks —
the adjacency CTA preserves is exactly the adjacency PThammer needs
(Section II: "CATT and CTA are vulnerable to ... PThammer").
"""

from __future__ import annotations

from typing import Optional

from ..kernel.buddy import BuddyAllocator
from ..kernel.physmem import FrameUse
from .base import Defense, register_defense
from .catt import RegionPolicy, _guard_frames

#: Fraction of managed frames reserved for the L1PT region.
PT_FRACTION = 0.15


@register_defense
class CtaDefense(Defense):
    """CTA as a bootable defense configuration."""

    name = "cta"
    summary = "dedicated DRAM region for L1 page tables [52]"

    def __init__(self, pt_fraction: float = PT_FRACTION,
                 guard_rows: int = 8) -> None:
        self.pt_fraction = pt_fraction
        self.guard_rows = guard_rows
        self.policy: Optional[RegionPolicy] = None

    def frame_policy_factory(self):
        def factory(default_buddy: BuddyAllocator, kernel) -> RegionPolicy:
            start = default_buddy.start_ppn
            total = default_buddy.frame_count
            guard = _guard_frames(kernel, self.guard_rows)
            pt_count = int(total * self.pt_fraction)
            common_count = total - pt_count - guard
            pt_start = start + common_count + guard
            self.policy = RegionPolicy([
                ("common", start, common_count,
                 {FrameUse.USER, FrameUse.KERNEL, FrameUse.SG_BUFFER}),
                ("pagetable", pt_start, pt_count, {FrameUse.PAGE_TABLE}),
            ])
            return self.policy

        return factory
