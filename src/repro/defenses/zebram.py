"""ZebRAM [28]: zebra-striped DRAM with the one-row assumption.

"ZebRAM isolates rows of sensitive data in a zebra pattern"
(Section II-C): every other row is a *safe* row holding regular data
(kernel, page tables, user pages); the interleaved *unsafe* rows serve
only as an integrity-checked swap zone.  Under the assumption that a
hammered row only disturbs its distance-1 neighbours, any flip caused
by safe-row aggressors lands in an unsafe row where it is detected and
repaired — so nothing sensitive can be corrupted.

The paper's criticism (Section I): Kim et al. [26] showed flips up to
*six* rows away, so distance-2 hammering jumps the stripe entirely:
safe-row aggressors flip safe-row victims and ZebRAM never notices.
The :mod:`repro.attacks.templating` ``"distance_two"`` pattern plus the
baseline bench reproduce exactly that failure.

The model keeps ZebRAM's allocator essence: all allocatable frames live
in even rows; odd rows are reserved (the swap zone).  Half the memory
disappears from the allocator, matching ZebRAM's real capacity cost.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import DefenseError, OutOfMemoryError
from ..kernel.buddy import BuddyAllocator
from ..kernel.physmem import FramePolicy, FrameUse
from .base import Defense, register_defense


class StripedPolicy(FramePolicy):
    """Order-0 allocator over frames whose DRAM rows are all even."""

    name = "zebram"

    def __init__(self, kernel, start_ppn: int, frame_count: int) -> None:
        mapping = kernel.dram.mapping
        self._free: List[int] = []
        self._free_set: Set[int] = set()
        for ppn in range(start_ppn, start_ppn + frame_count):
            rows = mapping.page_rows(ppn)
            if all(row % 2 == 0 for _, row in rows):
                self._free.append(ppn)
                self._free_set.add(ppn)
        self._free.sort(reverse=True)  # pop() yields the lowest ppn
        self._allocated: Set[int] = set()

    def alloc(self, use: FrameUse, order: int = 0) -> int:
        if order != 0:
            raise OutOfMemoryError(
                "ZebRAM stripes cannot back higher-order (huge) blocks")
        if not self._free:
            raise OutOfMemoryError("ZebRAM safe stripe exhausted")
        ppn = self._free.pop()
        self._free_set.discard(ppn)
        self._allocated.add(ppn)
        return ppn

    def free(self, base_ppn: int, use: FrameUse, order: int = 0) -> None:
        if order != 0 or base_ppn not in self._allocated:
            raise DefenseError(f"bad ZebRAM free of {base_ppn:#x}")
        self._allocated.discard(base_ppn)
        self._free.append(base_ppn)
        self._free_set.add(base_ppn)

    def free_frames(self) -> int:
        return len(self._free)

    def alloc_specific(self, ppn: int, use: FrameUse) -> int:
        if ppn not in self._free_set:
            raise DefenseError(
                f"frame {ppn:#x} is in the unsafe stripe (or busy) — "
                f"placement refused")
        self._free.remove(ppn)
        self._free_set.discard(ppn)
        self._allocated.add(ppn)
        return ppn

    def is_safe_frame(self, ppn: int) -> bool:
        """Whether a frame belongs to the safe (even-row) stripe."""
        return ppn in self._free_set or ppn in self._allocated


@register_defense
class ZebramDefense(Defense):
    """ZebRAM as a bootable defense configuration."""

    name = "zebram"
    summary = "zebra-striped safe/unsafe rows, +-1 assumption [28]"

    def __init__(self) -> None:
        self.policy: Optional[StripedPolicy] = None

    def frame_policy_factory(self):
        def factory(default_buddy: BuddyAllocator, kernel) -> StripedPolicy:
            self.policy = StripedPolicy(
                kernel, default_buddy.start_ppn, default_buddy.frame_count)
            return self.policy

        return factory
