"""Baseline software defenses the paper compares against (Section II-C).

* :mod:`repro.defenses.catt`   — CATT [11]: physical user/kernel
  partition with guard rows.  Broken by CATTmew (SG buffers) and
  PThammer.
* :mod:`repro.defenses.cta`    — CTA [52]: a dedicated DRAM region for
  level-1 page tables.  Broken by PThammer (PT-to-PT adjacency remains).
* :mod:`repro.defenses.zebram` — ZebRAM [28]: zebra striping with the
  one-row-distance assumption.  Broken by distance >= 2 hammering.
* :mod:`repro.defenses.anvil`  — ANVIL [4]: performance-counter
  detection with selective refresh.  Blind to PThammer because page-walk
  activations are invisible to load-address PMU sampling.
* :mod:`repro.defenses.riprh`  — RIP-RH [8]: per-process DRAM isolation
  for sensitive users (the Section VII answer to the setuid opcode
  attack).  Does nothing for page tables.
* :mod:`repro.defenses.alis`   — ALIS [47]: DMA-buffer isolation with
  guard rows (kills CATTmew structurally, nothing else).
* :mod:`repro.defenses.trackers` — the pluggable tracker zoo (ChipTRR,
  PARA, Misra-Gries/Graphene, PTMP, DAPPER) riding the DRAM module's
  activation feed.
* :mod:`repro.defenses.base`   — the common interface, the
  ``@register_defense`` registry and the ``boot_kernel`` helper the
  security benches use.
"""

from .base import (
    DEFENSES,
    Defense,
    DefenseRegistry,
    NoDefense,
    SoftTrrDefense,
    boot_kernel,
    register_defense,
)
from .catt import CattDefense, RegionPolicy
from .cta import CtaDefense
from .zebram import ZebramDefense, StripedPolicy
from .anvil import AnvilDefense, AnvilModule
from .riprh import RipRhDefense, RipRhPolicy
from .alis import AlisDefense
from .trackers import (
    ChipTrrDefense,
    DapperDefense,
    MisraGriesDefense,
    ParaDefense,
    PtmpDefense,
)

__all__ = [
    "Defense",
    "DefenseRegistry",
    "NoDefense",
    "SoftTrrDefense",
    "boot_kernel",
    "register_defense",
    "DEFENSES",
    "ChipTrrDefense",
    "ParaDefense",
    "MisraGriesDefense",
    "PtmpDefense",
    "DapperDefense",
    "CattDefense",
    "RegionPolicy",
    "CtaDefense",
    "ZebramDefense",
    "StripedPolicy",
    "AnvilDefense",
    "AnvilModule",
    "RipRhDefense",
    "RipRhPolicy",
    "AlisDefense",
]
