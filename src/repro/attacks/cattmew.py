"""CATTmew [12], optimised as in Section V-B.

CATT [11] physically separates user and kernel memory, so an attacker's
own pages can never neighbour L1PT rows.  CATTmew breaks that guarantee
"by identifying device (e.g., SCSI Generic) driver buffers that are
kernel memory but can be accessed by unprivileged users": the SG buffer
is allocated from kernel frames (inside CATT's kernel region, next to
page tables) yet mapped user-writable.

The structure of the optimised evaluation (Optiplex 990, plain 2-sided
hammer on DDR3) follows the paper: the attacker obtains a large SG
buffer ("we can apply as large as 123 MiB and only 8m KiB ... are
enough"), templates *through the buffer* — so victims and aggressors
are kernel-region frames — then the kernel copies ``m`` sprayed L1PT
pages onto the vulnerable frames.  The aggressors are SG pages the
whole time: from CATT's point of view, kernel memory hammering kernel
memory, one guard ring away from nothing.

Against CATT this attack *succeeds* (the placement is entirely inside
the kernel partition).  Against CTA it fails: the vulnerable SG-region
frame cannot become an L1PT, because L1PTs only live in CTA's dedicated
region.  Against SoftTRR it fails because SG pages adjacent to L1PT
rows are traced like any other user-accessible page.
"""

from __future__ import annotations

from ..kernel.devices import SgDevice
from ..kernel.vma import PAGE
from .base import PageTableAttack, PlacedTarget
from .placement import place_l1pt_at, set_bit_polarity, spray_l1pts


class CattmewAttack(PageTableAttack):
    """Section V-B's optimised CATTmew."""

    name = "cattmew"
    pattern = "double_sided"

    def __init__(self, kernel, m: int = 4, **kwargs) -> None:
        self.sg = SgDevice(kernel, max_buffer_bytes=8 * 1024 * 1024)
        super().__init__(kernel, m=m, **kwargs)

    def _template_region_provider(self):
        """Template through the SG driver buffer: attacker-writable
        kernel memory (the CATTmew primitive)."""
        def provider(pages: int) -> int:
            return self.sg.alloc_buffer(self.process, pages * PAGE)

        return provider

    def _place(self) -> None:
        kernel = self.kernel
        slices = spray_l1pts(kernel, self.process, self.m)
        for vulnerable, slice_vaddr in zip(self.vulnerable, slices):
            # Release the vulnerable SG page back to the kernel; the
            # frame stays in whatever region the active policy put SG
            # memory in (the kernel partition, under CATT).
            kernel.munmap(self.process, vulnerable.victim_vaddr, PAGE)
            kernel.free_frame(vulnerable.victim_ppn)
            place_l1pt_at(kernel, self.process, slice_vaddr,
                          vulnerable.victim_ppn)
            flip = vulnerable.flips[0]
            set_bit_polarity(kernel, vulnerable.victim_ppn,
                             flip.page_bit_offset, flip.from_value)
            # The aggressors are SG-buffer mappings already.
            self.targets.append(PlacedTarget(
                victim_ppn=vulnerable.victim_ppn,
                aggressor_vaddrs=list(vulnerable.aggressor_vaddrs),
                template=vulnerable,
            ))
