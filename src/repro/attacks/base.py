"""Shared attack machinery for the Section V evaluation.

Each attack follows the paper's optimised deterministic recipe:

1. **template** — find ``m`` vulnerable pages with the machine's hammer
   pattern;
2. **place** — spray L1PT pages and, with kernel assistance, relocate
   them onto the vulnerable frames (and, per attack, arrange the
   aggressor memory: plain user pages, SG-buffer pages, or further L1PT
   pages);
3. **hammer** — drive the aggressors and check the victim L1PT pages'
   integrity, exactly as the paper does ("we ... observe no single bit
   flip in those m pages of L1PTs by checking their integrity").

The experiment runner calls ``setup()`` first, then (optionally) loads
SoftTRR or a baseline defense, then ``run()`` — matching the paper's
"enable SoftTRR ... re-start the optimized attack" order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AttackError
from ..kernel.vma import PAGE
from .hammer import HammerKit
from .templating import FlipTemplater, VulnerablePage


def _pt_view(page_bytes: bytes) -> bytes:
    """Integrity view of an L1PT page: the tracer's reserved bit 51 is
    SoftTRR's own legitimate bookkeeping in every entry, so it is masked
    out before comparing (bit 51 = bit 3 of byte 6 of each qword)."""
    view = bytearray(page_bytes)
    for entry in range(0, len(view), 8):
        view[entry + 6] &= ~0x08
    return bytes(view)


@dataclass
class AttackOutcome:
    """Result of one attack run (one Table II cell)."""

    attack: str
    machine: str
    m: int
    hammer_time_ns: int
    targeted_pt_pages: List[int]
    flipped_pt_pages: List[int]
    flip_events_in_pts: int
    softtrr_loaded: bool

    @property
    def bit_flip_failed(self) -> bool:
        """True when no targeted L1PT page was corrupted — the Table II
        checkmark meaning the defense held."""
        return not self.flipped_pt_pages

    @property
    def succeeded(self) -> bool:
        """True when the attack corrupted at least one L1PT page."""
        return bool(self.flipped_pt_pages)


@dataclass
class PlacedTarget:
    """One victim after placement: an L1PT page on a vulnerable frame."""

    victim_ppn: int
    aggressor_vaddrs: List[int]
    template: VulnerablePage
    #: Extra per-round delay for this target's hammer loop.
    per_iter_delay_ns: int = 0


class PageTableAttack:
    """Base class for the three Section V attacks."""

    name = "abstract"
    pattern = "double_sided"

    def __init__(self, kernel, m: int = 4, region_pages: int = 320,
                 template_rounds: int = 22_000,
                 pattern_override: Optional[str] = None) -> None:
        self.kernel = kernel
        self.m = m
        self.region_pages = region_pages
        self.template_rounds = template_rounds
        if pattern_override is not None:
            self.pattern = pattern_override
        self.process = kernel.create_process(f"{self.name}-attacker")
        self.kit = HammerKit(kernel, self.process)
        self.templater = FlipTemplater(
            kernel, self.process, self.kit,
            region_provider=self._template_region_provider())
        self.targets: List[PlacedTarget] = []
        self.vulnerable: List[VulnerablePage] = []
        self._snapshots: Dict[int, bytes] = {}

    def _template_region_provider(self):
        """Memory source for templating (None = ordinary mmap)."""
        return None

    # ------------------------------------------------------------ phases
    def setup(self) -> None:
        """Template + place.  Subclasses implement :meth:`_place`."""
        self.vulnerable = self.templater.find_vulnerable_pages(
            self.m,
            pattern=self.pattern,
            region_pages=self.region_pages,
            rounds=self.template_rounds,
            per_iter_delay_ns=self._template_delay_ns(),
        )
        self._place()
        if len(self.targets) != self.m:
            raise AttackError(
                f"{self.name}: placed {len(self.targets)} of {self.m} targets")

    def _template_delay_ns(self) -> int:
        """Per-round delay used to rate-match templating (Section V-C)."""
        return 0

    def _place(self) -> None:
        raise NotImplementedError

    def run(self, hammer_ns_per_victim: int = 8_000_000) -> AttackOutcome:
        """Hammer every placed target and check L1PT integrity."""
        if not self.targets:
            raise AttackError(f"{self.name}: setup() has not placed targets")
        kernel = self.kernel
        self._snapshots = {
            t.victim_ppn: kernel.dram.raw_read(t.victim_ppn << 12, PAGE)
            for t in self.targets
        }
        start = kernel.clock.now_ns
        for target in self.targets:
            self._sync_refresh_window(hammer_ns_per_victim)
            self._hammer_target(target, hammer_ns_per_victim)
        hammer_time = kernel.clock.now_ns - start
        flipped = []
        flip_events = 0
        for target in self.targets:
            after = kernel.dram.raw_read(target.victim_ppn << 12, PAGE)
            before = self._snapshots[target.victim_ppn]
            if _pt_view(after) != _pt_view(before):
                flipped.append(target.victim_ppn)
            flip_events += sum(
                1 for f in kernel.dram.flips_in_page(target.victim_ppn)
                if f.at_ns >= start)
        return AttackOutcome(
            attack=self.name,
            machine=kernel.spec.name,
            m=self.m,
            hammer_time_ns=hammer_time,
            targeted_pt_pages=[t.victim_ppn for t in self.targets],
            flipped_pt_pages=flipped,
            flip_events_in_pts=flip_events,
            softtrr_loaded=kernel.module("softtrr") is not None,
        )

    # ------------------------------------------------------------ helpers
    def _hammer_target(self, target: PlacedTarget, duration_ns: int) -> None:
        self.kit.run_for(
            target.aggressor_vaddrs, duration_ns,
            per_iter_delay_ns=target.per_iter_delay_ns)

    def _sync_refresh_window(self, needed_ns: int) -> None:
        """Start each victim's hammer at a refresh-window boundary so the
        run is not split by an auto-refresh (real attackers sync too)."""
        window = self.kernel.dram.timings.refresh_window_ns
        into = self.kernel.clock.now_ns % window
        if into + needed_ns > window:
            self.kernel.clock.advance(window - into)
