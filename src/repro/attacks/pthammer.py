"""PThammer [57], optimised as in Section V-C.

PThammer is the *implicit* attack: the attacker never touches memory
adjacent to L1PTs.  Instead it exploits the page walk — a load whose
translation misses the TLB and whose L1PTE misses the cache forces the
CPU to fetch the L1PTE from DRAM, *activating the L1PT page's row*.
Spraying L1PT pages makes some of them mutual neighbours; hammering two
aggressor L1PTs flips bits in a victim L1PT between them.

The optimised evaluation (Thinkpad X230):

* templating uses 2-sided hammer padded with NOPs "to meet the time
  cost taken by the kernel-assisted hammer" (so the found pages flip at
  PThammer's slower activation rate);
* ``3m`` L1PT pages are sprayed; the kernel copies them onto the ``m``
  victim and ``2m`` aggressor frames;
* the hammer loop is kernel-assisted flush + load: ``invlpg`` for the
  TLB entry, ``clflush`` for the L1PTE line, then a user load that
  page-walks through the aggressor L1PT.

Against SoftTRR this is exactly the class-(b) adjacency of Section
III-C: the loaded pages' *L1PT pages* are adjacent to the victim L1PT,
so SoftTRR traces the loads and refreshes the victim row in time.
"""

from __future__ import annotations

from typing import List

from ..errors import AttackError
from ..mmu import bits
from .base import PageTableAttack, PlacedTarget
from .placement import (
    free_user_frame,
    l1pt_of,
    place_l1pt_at,
    set_bit_polarity,
    spray_l1pts,
)

#: Extra time per hammer round vs the plain 2-sided loop: invlpg +
#: pipeline cost of the kernel-assisted flush (~the "180 NOPs" padding).
PTHAMMER_EXTRA_NS = 170


def page_walk_hammer(kernel, process, entries, duration_ns: int,
                     batch: int = 100) -> None:
    """The kernel-assisted page-walk hammer loop shared by both
    PThammer variants.  ``entries`` is a list of
    (vaddr, l1_ppn, l1_index, pte_paddr) tuples."""
    start = kernel.clock.now_ns
    while kernel.clock.now_ns - start < duration_ns:
        for vaddr, l1, index, pte_paddr in entries:
            kernel.mmu.invlpg(vaddr)
            kernel.mmu.pt_ops.flush_entry(l1, index)
            kernel.user_read(process, vaddr, 8)
            kernel.dram.hammer(pte_paddr, batch - 1, origin="walk")
            kernel.clock.advance((batch - 1) * PTHAMMER_EXTRA_NS)
        kernel.dispatch_timers()


class PthammerAttack(PageTableAttack):
    """Section V-C's optimised PThammer."""

    name = "pthammer"
    pattern = "double_sided"

    def _template_delay_ns(self) -> int:
        # Rate-match templating to the slower page-walk hammer, as the
        # paper does with NOP padding.
        return PTHAMMER_EXTRA_NS

    def _place(self) -> None:
        kernel = self.kernel
        # Spray 3m L1PTs: m victims + 2m aggressors.
        slices = spray_l1pts(kernel, self.process, 3 * self.m)
        slice_iter = iter(slices)
        for vulnerable in self.vulnerable:
            # Victim L1PT onto the vulnerable frame.
            victim_slice = next(slice_iter)
            free_user_frame(kernel, self.process, vulnerable.victim_vaddr)
            place_l1pt_at(kernel, self.process, victim_slice,
                          vulnerable.victim_ppn)
            flip = vulnerable.flips[0]
            set_bit_polarity(kernel, vulnerable.victim_ppn,
                             flip.page_bit_offset, flip.from_value)
            # Aggressor L1PTs onto the frames flanking the victim row.
            hammer_vaddrs: List[int] = []
            for aggr_vaddr, aggr_ppn in zip(vulnerable.aggressor_vaddrs,
                                            vulnerable.aggressor_ppns):
                aggr_slice = next(slice_iter)
                free_user_frame(kernel, self.process, aggr_vaddr)
                place_l1pt_at(kernel, self.process, aggr_slice, aggr_ppn)
                # The load target: the (pre-faulted) first page of the
                # slice, now translated through the aggressor L1PT.
                hammer_vaddrs.append(aggr_slice)
            self.targets.append(PlacedTarget(
                victim_ppn=vulnerable.victim_ppn,
                aggressor_vaddrs=hammer_vaddrs,
                template=vulnerable,
                per_iter_delay_ns=PTHAMMER_EXTRA_NS,
            ))

    # ------------------------------------------------------ hammer loop
    def _hammer_target(self, target: PlacedTarget, duration_ns: int) -> None:
        """Kernel-assisted flush + load: the page-walk hammer."""
        kernel = self.kernel
        entries = []
        for vaddr in target.aggressor_vaddrs:
            l1 = l1pt_of(kernel, self.process, vaddr)
            if l1 is None:
                raise AttackError(f"no L1PT behind {vaddr:#x}")
            index = bits.level_index(vaddr, 1)
            pte_paddr = kernel.mmu.pt_ops.entry_paddr(l1, index)
            entries.append((vaddr, l1, index, pte_paddr))
        page_walk_hammer(kernel, self.process, entries, duration_ns)


class PthammerSprayAttack:
    """The *probabilistic* PThammer used against the baseline defenses.

    Unlike the Section V-C optimised variant, this one never places page
    tables on templated frames — it only sprays L1PTs and exploits
    whatever mutual adjacency the allocator produces.  That is exactly
    why it defeats CATT and CTA: both preserve PT-to-PT adjacency inside
    their kernel/PT partitions, and the page-walk hammer needs nothing
    else.

    The candidate search consults the DRAM ground truth to rank victim
    rows (the evaluation-harness equivalent of the paper's kernel-
    assisted determinism); a real attacker finds the same rows by
    hammer-and-check over the sprayed set.
    """

    name = "pthammer_spray"

    def __init__(self, kernel, spray_count: int = 96, victims: int = 2,
                 max_distance: int = 2) -> None:
        self.kernel = kernel
        self.spray_count = spray_count
        self.victims = victims
        self.max_distance = max_distance
        self.process = kernel.create_process("pthammer-spray")
        self.targets = []  # (victim_l1_ppn, [hammer entries])
        self._snapshots = {}

    def setup(self) -> None:
        kernel = self.kernel
        slices = spray_l1pts(kernel, self.process, self.spray_count)
        by_location = {}
        slice_of = {}
        for vaddr in slices:
            l1 = l1pt_of(kernel, self.process, vaddr)
            slice_of[l1] = vaddr
            for bank, row in kernel.dram.mapping.page_rows(l1):
                by_location.setdefault((bank, row), []).append(l1)
        engine = kernel.dram.engine
        used_rows = set()
        for (bank, row), l1s in sorted(by_location.items()):
            if len(self.targets) >= self.victims:
                break
            if not engine.is_vulnerable(bank, row):
                continue
            if (bank, row) in used_rows:
                continue
            # Find sprayed aggressor L1PTs flanking this victim row.
            for distance in range(1, self.max_distance + 1):
                lo = by_location.get((bank, row - distance))
                hi = by_location.get((bank, row + distance))
                if not lo or not hi:
                    continue
                entries = []
                for aggr_l1 in (lo[0], hi[0]):
                    vaddr = slice_of[aggr_l1]
                    index = bits.level_index(vaddr, 1)
                    pte_paddr = kernel.mmu.pt_ops.entry_paddr(aggr_l1, index)
                    entries.append((vaddr, aggr_l1, index, pte_paddr))
                used_rows.update({(bank, row), (bank, row - distance),
                                  (bank, row + distance)})
                self.targets.append((l1s[0], entries))
                break
        if len(self.targets) < self.victims:
            raise AttackError(
                f"spray produced only {len(self.targets)} usable "
                f"victim/aggressor L1PT triples; increase spray_count")

    def run(self, hammer_ns_per_victim: int = 8_000_000):
        from .base import AttackOutcome, _pt_view
        from ..kernel.vma import PAGE
        kernel = self.kernel
        self._snapshots = {
            victim: kernel.dram.raw_read(victim << 12, PAGE)
            for victim, _ in self.targets
        }
        start = kernel.clock.now_ns
        for victim, entries in self.targets:
            window = kernel.dram.timings.refresh_window_ns
            into = kernel.clock.now_ns % window
            if into + hammer_ns_per_victim > window:
                kernel.clock.advance(window - into)
            page_walk_hammer(kernel, self.process, entries,
                             hammer_ns_per_victim)
        flip_events = 0
        flipped = []
        for victim, _ in self.targets:
            after = kernel.dram.raw_read(victim << 12, PAGE)
            events = [f for f in kernel.dram.flips_in_page(victim)
                      if f.at_ns >= start]
            flip_events += len(events)
            if _pt_view(after) != _pt_view(self._snapshots[victim]) or events:
                flipped.append(victim)
        return AttackOutcome(
            attack=self.name,
            machine=kernel.spec.name,
            m=self.victims,
            hammer_time_ns=kernel.clock.now_ns - start,
            targeted_pt_pages=[v for v, _ in self.targets],
            flipped_pt_pages=flipped,
            flip_events_in_pts=flip_events,
            softtrr_loaded=kernel.module("softtrr") is not None,
        )
