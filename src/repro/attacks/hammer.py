"""User-level hammer primitives (Section II-B's four patterns).

A hammer loop is, architecturally, ``clflush`` + load per aggressor per
iteration, fast enough that each load is a row activation.  Running
every single iteration through the Python MMU would be prohibitively
slow, so :class:`HammerKit` uses a *hybrid* loop that preserves every
property the defenses and the DRAM physics observe:

* once per batch (default 100 iterations) each aggressor is accessed
  through the full MMU path (``kernel.user_read``) — so a SoftTRR-armed
  page faults exactly as on real hardware (the tracer only cares about
  the *first* access per timer interval anyway; Section IV-C);
* the rest of the batch is issued as forced row activations on the DRAM
  module with the same per-iteration time cost, keeping the in-DRAM TRR
  tracker's view interleaved at realistic granularity (batches must stay
  small: the Misra-Gries tracker sees them as consecutive ACTs);
* kernel timers are dispatched at every batch boundary, so SoftTRR's
  1 ms tick interleaves with the hammering at ~8 µs granularity.

The effective activation period is ``conflict latency + extra_ns``
(clflush + loop overhead), ~80 ns — matching the paper's offline-profile
arithmetic that puts the minimum time-to-first-flip just above 1 ms.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Union

from ..errors import AttackError
from ..kernel.process import Process
from ..patterns.compile import CompiledPlan
from ..patterns.lang import Pattern
from ..patterns.program import (
    DEFAULT_BATCH,
    DEFAULT_EXTRA_NS,
    AttackProgram,
    ProgramOutcome,
    round_robin,
)


class HammerKit:
    """Hammering primitives bound to one (kernel, process) pair.

    The loop bodies now live in :class:`repro.patterns.AttackProgram`;
    the kit is the *binding* — kernel, process, per-ACT overhead and
    the batch pin — plus :meth:`run`/:meth:`run_for`, which execute any
    pattern under that binding.  The legacy :meth:`hammer`/
    :meth:`hammer_for` entry points remain as deprecated shims over the
    canned :func:`~repro.patterns.program.round_robin` pattern and
    replay bit-identically to the historical loop.
    """

    def __init__(self, kernel, process: Process,
                 extra_ns: int = DEFAULT_EXTRA_NS,
                 use_batch: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.process = process
        self.extra_ns = extra_ns
        #: None = consult the ``REPRO_BATCH`` knob at each hammer call;
        #: True/False pins the burst path (differential tests pin both).
        self.use_batch = use_batch
        self.total_activations = 0

    # ------------------------------------------------------------ helpers
    def paddr_of(self, vaddr: int) -> int:
        """Physical address behind a mapped user vaddr (faulting it in)."""
        ppn = self.kernel.mapped_ppn_of(self.process, vaddr)
        if ppn is None:
            self.kernel.user_read(self.process, vaddr, 1)
            ppn = self.kernel.mapped_ppn_of(self.process, vaddr)
        if ppn is None:
            raise AttackError(f"cannot resolve {vaddr:#x}")
        return (ppn << 12) | (vaddr & 0xFFF)

    # ----------------------------------------------------------- programs
    def run(self, program: Union[AttackProgram, Pattern, CompiledPlan, str],
            aggressors: Sequence[int],
            bindings=None) -> ProgramOutcome:
        """Execute a user-mode attack program under this kit's binding.

        ``program`` may be an :class:`AttackProgram` (its mode must be
        ``"user"``), a :class:`Pattern`, a :class:`CompiledPlan` or DSL
        source text; the latter three inherit the kit's ``extra_ns`` and
        batch pin.  ``aggressors`` are the vaddrs the plan's row
        operands index.
        """
        if not isinstance(program, AttackProgram):
            program = AttackProgram(
                program, bindings, mode="user", act_ns=self.extra_ns,
                use_batch=self.use_batch)
        elif program.mode != "user":
            raise AttackError(
                f"HammerKit.run executes user-mode programs; "
                f"{program.name!r} is {program.mode!r}-mode")
        outcome = program.run(self.kernel, self.process, aggressors)
        self.total_activations += outcome.activations
        return outcome

    def run_for(self, vaddrs: Sequence[int], duration_ns: int,
                batch: int = DEFAULT_BATCH,
                per_iter_delay_ns: int = 0) -> int:
        """Round-robin hammer for a simulated duration; returns rounds.

        Replays one ``round_robin`` chunk per wall-step until the
        duration elapses — the program-era replacement for the
        deprecated :meth:`hammer_for`, with identical replay.
        """
        if not vaddrs:
            raise AttackError("no aggressors to hammer")
        program = AttackProgram(
            round_robin(len(vaddrs), batch, batch, per_iter_delay_ns),
            mode="user", act_ns=self.extra_ns, use_batch=self.use_batch)
        start = self.kernel.clock.now_ns
        rounds = 0
        while self.kernel.clock.now_ns - start < duration_ns:
            self.run(program, vaddrs)
            rounds += batch
        return rounds

    # ----------------------------------------------- deprecated shims
    def hammer(self, vaddrs: Sequence[int], iterations: int,
               batch: int = DEFAULT_BATCH,
               per_iter_delay_ns: int = 0) -> None:
        """Deprecated: author an :class:`AttackProgram` and :meth:`run` it.

        Hammers ``vaddrs`` round-robin for ``iterations`` rounds (one
        round touches every aggressor once; ``per_iter_delay_ns`` models
        extra work per round).  Kept as a thin shim over the canned
        ``round_robin`` pattern — replay is bit-identical to the
        historical loop.
        """
        warnings.warn(
            "HammerKit.hammer is deprecated; build an AttackProgram "
            "(e.g. repro.patterns.round_robin) and HammerKit.run it",
            DeprecationWarning, stacklevel=2)
        if not vaddrs:
            raise AttackError("no aggressors to hammer")
        if iterations <= 0:
            return
        self.run(round_robin(len(vaddrs), iterations, batch,
                             per_iter_delay_ns), vaddrs)

    def hammer_for(self, vaddrs: Sequence[int], duration_ns: int,
                   batch: int = DEFAULT_BATCH,
                   per_iter_delay_ns: int = 0) -> int:
        """Deprecated: use :meth:`run_for` (same semantics and replay)."""
        warnings.warn(
            "HammerKit.hammer_for is deprecated; use HammerKit.run_for "
            "(or author an AttackProgram)",
            DeprecationWarning, stacklevel=2)
        return self.run_for(vaddrs, duration_ns, batch=batch,
                            per_iter_delay_ns=per_iter_delay_ns)

    # ------------------------------------------------------- row patterns
    @staticmethod
    def double_sided_rows(victim_row: int) -> List[int]:
        """Aggressor rows for the classic double-sided pattern."""
        return [victim_row - 1, victim_row + 1]

    @staticmethod
    def single_sided_rows(victim_row: int, spare_row: int) -> List[int]:
        """One true aggressor + one same-bank row to defeat the row
        buffer (the 'two random rows' of [41])."""
        return [victim_row - 1, spare_row]

    @staticmethod
    def one_location_rows(victim_row: int) -> List[int]:
        """A single aggressor; only effective under closed-page policy."""
        return [victim_row - 1]

    @staticmethod
    def many_sided_rows(first_victim_row: int, sides: int) -> List[int]:
        """The TRRespass assembly: ``sides`` aggressors separated by one
        row (victims in between)."""
        if sides < 3:
            raise AttackError("many-sided means at least 3 aggressors")
        return [first_victim_row - 1 + 2 * i for i in range(sides)]
