"""User-level hammer primitives (Section II-B's four patterns).

A hammer loop is, architecturally, ``clflush`` + load per aggressor per
iteration, fast enough that each load is a row activation.  Running
every single iteration through the Python MMU would be prohibitively
slow, so :class:`HammerKit` uses a *hybrid* loop that preserves every
property the defenses and the DRAM physics observe:

* once per batch (default 100 iterations) each aggressor is accessed
  through the full MMU path (``kernel.user_read``) — so a SoftTRR-armed
  page faults exactly as on real hardware (the tracer only cares about
  the *first* access per timer interval anyway; Section IV-C);
* the rest of the batch is issued as forced row activations on the DRAM
  module with the same per-iteration time cost, keeping the in-DRAM TRR
  tracker's view interleaved at realistic granularity (batches must stay
  small: the Misra-Gries tracker sees them as consecutive ACTs);
* kernel timers are dispatched at every batch boundary, so SoftTRR's
  1 ms tick interleaves with the hammering at ~8 µs granularity.

The effective activation period is ``conflict latency + extra_ns``
(clflush + loop overhead), ~80 ns — matching the paper's offline-profile
arithmetic that puts the minimum time-to-first-flip just above 1 ms.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..batching import batch_enabled
from ..errors import AttackError
from ..kernel.process import Process

#: Per-activation overhead beyond the DRAM conflict: clflush + loop.
DEFAULT_EXTRA_NS = 15

#: Default iterations per hybrid batch (kept small for TRR fidelity).
DEFAULT_BATCH = 100


class HammerKit:
    """Hammering primitives bound to one (kernel, process) pair."""

    def __init__(self, kernel, process: Process,
                 extra_ns: int = DEFAULT_EXTRA_NS,
                 use_batch: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.process = process
        self.extra_ns = extra_ns
        #: None = consult the ``REPRO_BATCH`` knob at each hammer call;
        #: True/False pins the burst path (differential tests pin both).
        self.use_batch = use_batch
        self.total_activations = 0

    # ------------------------------------------------------------ helpers
    def paddr_of(self, vaddr: int) -> int:
        """Physical address behind a mapped user vaddr (faulting it in)."""
        ppn = self.kernel.mapped_ppn_of(self.process, vaddr)
        if ppn is None:
            self.kernel.user_read(self.process, vaddr, 1)
            ppn = self.kernel.mapped_ppn_of(self.process, vaddr)
        if ppn is None:
            raise AttackError(f"cannot resolve {vaddr:#x}")
        return (ppn << 12) | (vaddr & 0xFFF)

    # -------------------------------------------------------------- loops
    def hammer(self, vaddrs: Sequence[int], iterations: int,
               batch: int = DEFAULT_BATCH,
               per_iter_delay_ns: int = 0) -> None:
        """Hammer ``vaddrs`` round-robin for ``iterations`` rounds.

        One round touches every aggressor once (clflush + load).
        ``per_iter_delay_ns`` models extra work per round (e.g. the NOP
        padding of Section V-C's rate-matched templating).
        """
        if not vaddrs:
            raise AttackError("no aggressors to hammer")
        if iterations <= 0:
            return
        kernel = self.kernel
        use_batch = (batch_enabled() if self.use_batch is None
                     else self.use_batch)
        paddrs = [self.paddr_of(va) for va in vaddrs]
        done = 0
        while done < iterations:
            n = min(batch, iterations - done)
            for vaddr, paddr in zip(vaddrs, paddrs):
                # The architecturally visible access of the batch: takes
                # the RSVD fault if SoftTRR armed this page.
                kernel.mmu.clflush(paddr)
                kernel.user_read(self.process, vaddr, 8)
                if n > 1:
                    # The rest of the batch: same physics, batched.
                    if use_batch:
                        kernel.dram.hammer_batch(
                            [(paddr, n - 1)], extra_ns=self.extra_ns)
                    else:
                        kernel.dram.hammer(paddr, n - 1)
                        kernel.clock.advance((n - 1) * self.extra_ns)
                self.total_activations += n
            if per_iter_delay_ns:
                kernel.clock.advance(n * per_iter_delay_ns)
            kernel.dispatch_timers()
            done += n

    def hammer_for(self, vaddrs: Sequence[int], duration_ns: int,
                   batch: int = DEFAULT_BATCH,
                   per_iter_delay_ns: int = 0) -> int:
        """Hammer for a fixed simulated duration; returns rounds done."""
        start = self.kernel.clock.now_ns
        rounds = 0
        while self.kernel.clock.now_ns - start < duration_ns:
            self.hammer(vaddrs, batch, batch=batch,
                        per_iter_delay_ns=per_iter_delay_ns)
            rounds += batch
        return rounds

    # ------------------------------------------------------- row patterns
    @staticmethod
    def double_sided_rows(victim_row: int) -> List[int]:
        """Aggressor rows for the classic double-sided pattern."""
        return [victim_row - 1, victim_row + 1]

    @staticmethod
    def single_sided_rows(victim_row: int, spare_row: int) -> List[int]:
        """One true aggressor + one same-bank row to defeat the row
        buffer (the 'two random rows' of [41])."""
        return [victim_row - 1, spare_row]

    @staticmethod
    def one_location_rows(victim_row: int) -> List[int]:
        """A single aggressor; only effective under closed-page policy."""
        return [victim_row - 1]

    @staticmethod
    def many_sided_rows(first_victim_row: int, sides: int) -> List[int]:
        """The TRRespass assembly: ``sides`` aggressors separated by one
        row (victims in between)."""
        if sides < 3:
            raise AttackError("many-sided means at least 3 aggressors")
        return [first_victim_row - 1 + 2 * i for i in range(sides)]
