"""Rowhammer attacks (Section V's three kernel-privilege-escalation
attacks, plus the primitives they are built from).

* :mod:`repro.attacks.hammer` — user-level hammer loops (double-sided,
  single-sided, one-location, TRRespass many-sided) driven through the
  MMU so the defenses can see them.
* :mod:`repro.attacks.templating` — flip templating: finding pages with
  reproducible bit flips, as every attack's first step.
* :mod:`repro.attacks.placement` — the kernel-assisted helpers the
  paper's *optimised deterministic* evaluation uses (placing sprayed
  L1PTs onto chosen vulnerable frames).
* :mod:`repro.attacks.memory_spray` — Memory Spray [41] (Section V-A).
* :mod:`repro.attacks.cattmew` — CATTmew [12] via the SG driver buffer
  (Section V-B).
* :mod:`repro.attacks.pthammer` — PThammer [57], implicit hammering of
  L1PTEs through page walks (Section V-C).
"""

from .hammer import HammerKit
from .templating import FlipTemplater, VulnerablePage
from .placement import place_l1pt_at, spray_l1pts
from .base import AttackOutcome, PageTableAttack
from .memory_spray import MemorySprayAttack
from .cattmew import CattmewAttack
from .pthammer import PthammerAttack, PthammerSprayAttack

__all__ = [
    "HammerKit",
    "FlipTemplater",
    "VulnerablePage",
    "place_l1pt_at",
    "spray_l1pts",
    "AttackOutcome",
    "PageTableAttack",
    "MemorySprayAttack",
    "CattmewAttack",
    "PthammerAttack",
    "PthammerSprayAttack",
]
