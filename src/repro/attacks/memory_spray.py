"""Memory Spray [41], optimised as in Section V-A.

"The Memory Spray is the first rowhammer attack targeting L1PTs ... it
sprays numerous L1PT pages into the memory with the hope that some L1PT
pages are placed onto victim rows adjacent to attacker-controlled rows."

The evaluated variant is deterministic: after templating ``m``
vulnerable pages with the TRRespass 3-sided pattern (the Optiplex 390's
DDR4 TRR absorbs 2-sided hammering), the kernel copies ``m`` sprayed
L1PT pages onto the vulnerable frames.  The aggressors are ordinary
attacker-owned user pages — the *explicit* attack class: attacker
memory adjacent to L1PT rows.
"""

from __future__ import annotations

from .base import PageTableAttack, PlacedTarget
from .placement import (
    free_user_frame,
    place_l1pt_at,
    set_bit_polarity,
    spray_l1pts,
)


class MemorySprayAttack(PageTableAttack):
    """Section V-A's optimised Memory Spray."""

    name = "memory_spray"
    #: 3-sided per the paper: "traditional 2-sided hammer cannot trigger
    #: any bit flip and instead we use the 3-sided hammer identified by
    #: TRRespass" on this machine.
    pattern = "three_sided"

    def _place(self) -> None:
        slices = spray_l1pts(self.kernel, self.process, self.m)
        for vulnerable, slice_vaddr in zip(self.vulnerable, slices):
            free_user_frame(self.kernel, self.process,
                            vulnerable.victim_vaddr)
            place_l1pt_at(self.kernel, self.process, slice_vaddr,
                          vulnerable.victim_ppn)
            # Deterministic-evaluation step: give the templated cell its
            # charged polarity inside the attacker's own sprayed PTEs.
            flip = vulnerable.flips[0]
            set_bit_polarity(self.kernel, vulnerable.victim_ppn,
                             flip.page_bit_offset, flip.from_value)
            self.targets.append(PlacedTarget(
                victim_ppn=vulnerable.victim_ppn,
                aggressor_vaddrs=list(vulnerable.aggressor_vaddrs),
                template=vulnerable,
            ))
