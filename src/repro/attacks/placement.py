"""Kernel-assisted placement helpers for the deterministic evaluation.

The paper's security evaluation converts each probabilistic attack into
a deterministic one "by using the kernel privilege to put page tables
onto vulnerable pages" (Section V-A): it sprays L1PT pages, then asks
the kernel to copy their contents into chosen vulnerable frames and
repoint the L2 entries.  These helpers reproduce that machinery:

* :func:`spray_l1pts` — create a virtual region of ``2m`` MiB so the
  victim process owns ``m`` L1PT pages (1 L1PT per 2 MiB of address
  space);
* :func:`place_l1pt_at` — relocate the L1PT page covering a region onto
  a specific physical frame.  The relocation goes through the normal
  kernel frame machinery (``__free_pages`` fires for the old L1PT,
  ``__pte_alloc`` for the new placement), so a loaded SoftTRR module
  observes the move exactly as it would observe any page-table churn.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AttackError
from ..kernel.physmem import FrameUse
from ..kernel.hooks import HOOK_PTE_ALLOC
from ..kernel.process import Process
from ..kernel.vma import PAGE
from ..mmu import bits

#: Virtual span covered by one L1PT page: 512 entries x 4 KiB.
L1_SPAN = 512 * PAGE


def spray_l1pts(kernel, process: Process, count: int,
                prefault: bool = True) -> List[int]:
    """Create ``count`` L1PT pages by mapping ``count`` x 2 MiB of
    address space (one page touched per 2 MiB is enough).

    Returns the base vaddr of each 2 MiB slice.
    """
    base = kernel.mmap(process, count * L1_SPAN, name="spray")
    slices = [base + i * L1_SPAN for i in range(count)]
    if prefault:
        for vaddr in slices:
            kernel.user_write(process, vaddr, b"\x5a")
    return slices


def l1pt_of(kernel, process: Process, vaddr: int) -> Optional[int]:
    """PPN of the L1PT page covering ``vaddr`` (None if not built)."""
    mm = process.mm
    table = mm.pml4_ppn
    for level in (4, 3):
        entry = kernel.mmu.pt_ops.raw_read_entry(
            table, bits.level_index(vaddr, level))
        if not bits.is_present(entry):
            return None
        table = bits.pte_ppn(entry)
    entry = kernel.mmu.pt_ops.raw_read_entry(
        table, bits.level_index(vaddr, 2))
    if not bits.is_present(entry) or bits.is_huge(entry):
        return None
    return bits.pte_ppn(entry)


def place_l1pt_at(kernel, process: Process, vaddr: int,
                  target_ppn: int) -> int:
    """Relocate the L1PT page covering ``vaddr`` onto ``target_ppn``.

    ``target_ppn`` must be a *free* frame (the caller unmaps/frees it
    first).  Returns the old L1PT PPN.  This is the paper's
    "copy the content of the m pages of L1PTs into the m vulnerable
    pages, which are then used to translate the virtual memory region".
    """
    old_l1 = l1pt_of(kernel, process, vaddr)
    if old_l1 is None:
        raise AttackError(f"no L1PT covers {vaddr:#x}")
    if old_l1 == target_ppn:
        return old_l1
    # Claim the exact target frame through the active placement policy:
    # partitioning defenses veto placements that break their isolation.
    kernel.frame_policy.alloc_specific(target_ppn, FrameUse.PAGE_TABLE)
    kernel.frame_table.record_alloc(target_ppn, FrameUse.PAGE_TABLE, 0)
    # Copy the 512 entries with real (architectural) memory traffic:
    # the kernel's copy loop activates the destination row, which
    # recharges it — templating residue does not survive placement.
    kernel.mmu.phys_store(target_ppn << 12,
                          kernel.mmu.phys_load(old_l1 << 12, PAGE))
    # Repoint the L2 entry.
    mm = process.mm
    table = mm.pml4_ppn
    for level in (4, 3):
        entry = kernel.mmu.pt_ops.raw_read_entry(
            table, bits.level_index(vaddr, level))
        table = bits.pte_ppn(entry)
    l2_index = bits.level_index(vaddr, 2)
    l2_entry = kernel.mmu.pt_ops.read_entry(table, l2_index)
    new_entry = (l2_entry & ~bits.PTE_ADDR_MASK) | (
        (target_ppn << 12) & bits.PTE_ADDR_MASK)
    kernel.mmu.write_pte(table, l2_index, new_entry)
    # Transfer kernel bookkeeping, flush stale translations.
    mm.pte_page_population[target_ppn] = mm.pte_page_population.pop(old_l1)
    kernel.mmu.on_context_switch()
    # Tell the world: the old page-table page dies, a new one is born.
    kernel.hooks.notify(HOOK_PTE_ALLOC, process, target_ppn)
    kernel.free_frame(old_l1)
    return old_l1


def free_user_frame(kernel, process: Process, vaddr: int) -> int:
    """Unmap one attacker page and return its (now free) frame PPN."""
    ppn = kernel.mapped_ppn_of(process, vaddr)
    if ppn is None:
        raise AttackError(f"{vaddr:#x} not mapped")
    kernel.munmap(process, vaddr, PAGE)
    return ppn


def set_bit_polarity(kernel, ppn: int, page_bit_offset: int,
                     charged_value: int) -> None:
    """Force one bit of a frame to a cell's charged polarity.

    The paper's deterministic evaluation guarantees the templated cell
    is observable after L1PTs are placed on the vulnerable page (a real
    attacker achieves the same by spraying PTE values whose bits match
    the cell's polarity).  The bit lives inside the attacker's own
    sprayed L1PT entries, so flipping its initial value only perturbs a
    translation the attacker controls anyway.
    """
    byte_offset, bit = divmod(page_bit_offset, 8)
    paddr = (ppn << 12) + byte_offset
    current = kernel.dram.raw_read(paddr, 1)[0]
    if charged_value:
        updated = current | (1 << bit)
    else:
        updated = current & ~(1 << bit)
    kernel.dram.raw_write(paddr, bytes([updated]))
