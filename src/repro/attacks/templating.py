"""Flip templating: finding pages with reproducible bit flips.

Every attack in Section V starts by identifying *vulnerable pages*: "a
vulnerable page has at least one victim physical address (P_v) and
hammering ... aggressor addresses ... will flip bits in P_v".  The
templater:

1. maps and pre-faults a large attacker region (the attacker owns the
   frames);
2. groups its frames by DRAM (bank, row) using the reverse-engineered
   address mapping;
3. for every candidate victim row where the attacker also owns the
   aggressor rows of the requested pattern, writes a test pattern
   (0xFF then 0x00 passes, catching true-cells and anti-cells), hammers,
   and diffs the victim page;
4. records each hit as a :class:`VulnerablePage` carrying the victim
   frame, the aggressor layout and the observed flips — enough to
   replay the flip deterministically later.

DDR4 machines with ChipTRR need the TRRespass 3-sided pattern
(``pattern="three_sided"``); DDR3 machines flip with plain
``"double_sided"``.  ``per_iter_delay_ns`` lets PThammer's evaluation
rate-match its slower kernel-assisted hammer (the NOP padding of
Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TemplatingError
from ..kernel.process import Process
from ..kernel.vma import PAGE
from ..patterns.program import round_robin
from .hammer import HammerKit

#: Hammer rounds per templating pass: enough weighted units to fire the
#: easier half of the vulnerable-cell threshold distribution.
DEFAULT_ROUNDS = 22_000


@dataclass
class ObservedFlip:
    """One reproducible flip found by templating."""

    byte_offset: int          # within the victim 4 KiB page
    bit_index: int            # 0..7 within that byte
    from_value: int           # polarity: the value the cell loses

    @property
    def page_bit_offset(self) -> int:
        """Bit offset within the page."""
        return self.byte_offset * 8 + self.bit_index


@dataclass
class VulnerablePage:
    """A templated victim page and the aggressors that flip it."""

    victim_ppn: int
    victim_vaddr: int
    bank: int
    victim_row: int
    aggressor_rows: List[int]
    aggressor_vaddrs: List[int]
    aggressor_ppns: List[int]
    flips: List[ObservedFlip]
    pattern: str


class FlipTemplater:
    """Finds vulnerable pages inside an attacker-owned region."""

    def __init__(self, kernel, process: Process,
                 hammer_kit: Optional[HammerKit] = None,
                 region_provider=None) -> None:
        self.kernel = kernel
        self.process = process
        self.kit = hammer_kit or HammerKit(kernel, process)
        #: Supplies the attacker-accessible memory being templated.
        #: Default: an ordinary anonymous mmap (Memory Spray, PThammer).
        #: CATTmew substitutes the SG driver buffer here — that is the
        #: whole point of the attack.
        self.region_provider = region_provider or self._mmap_region
        self.rows_scanned = 0

    def _mmap_region(self, pages: int) -> int:
        base = self.kernel.mmap(self.process, pages * PAGE, name="template")
        self.kernel.mlock(self.process, base, pages * PAGE)
        return base

    # ----------------------------------------------------------- mapping
    def claim_region(self, pages: int) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """Acquire ``pages`` attacker-accessible pages; returns the
        ownership map (bank, row) -> [(vaddr, ppn), ...]."""
        base = self.region_provider(pages)
        ownership: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        mapping = self.kernel.dram.mapping
        for i in range(pages):
            vaddr = base + i * PAGE
            ppn = self.kernel.mapped_ppn_of(self.process, vaddr)
            for bank, row in mapping.page_rows(ppn):
                ownership.setdefault((bank, row), []).append((vaddr, ppn))
        return ownership

    @staticmethod
    def _aggressor_rows(pattern: str, victim_row: int) -> List[int]:
        if pattern == "double_sided":
            return [victim_row - 1, victim_row + 1]
        if pattern == "three_sided":
            # TRRespass assembly around the victim: two adjacent
            # aggressors plus a third one row beyond, defeating the
            # bounded tracker.
            return [victim_row - 1, victim_row + 1, victim_row + 3]
        if pattern == "distance_two":
            # Used to demonstrate the ZebRAM/Delta+-1 blind spot.
            return [victim_row - 2, victim_row + 2]
        if pattern.startswith("distance_"):
            # Generalised 2-sided at distance N (ablation sweeps); flips
            # are possible out to distance 6 per Kim et al. [26].
            try:
                distance = int(pattern.split("_", 1)[1])
            except ValueError:
                raise TemplatingError(
                    f"unknown hammer pattern {pattern!r}") from None
            if not 1 <= distance <= 6:
                raise TemplatingError(
                    f"hammer distance {distance} outside [1, 6]")
            return [victim_row - distance, victim_row + distance]
        raise TemplatingError(f"unknown hammer pattern {pattern!r}")

    # ---------------------------------------------------------- templating
    def find_vulnerable_pages(
        self,
        count: int,
        pattern: str = "double_sided",
        region_pages: int = 256,
        rounds: int = DEFAULT_ROUNDS,
        per_iter_delay_ns: int = 0,
    ) -> List[VulnerablePage]:
        """Template until ``count`` vulnerable pages are found.

        Raises :class:`TemplatingError` if the owned region does not
        yield enough flippable pages.
        """
        ownership = self.claim_region(region_pages)
        found: List[VulnerablePage] = []
        # Rows already used by a found target (victim or aggressor):
        # targets must not share rows, or later kernel-assisted
        # placement would have two owners for one frame.
        used: set = set()
        for (bank, victim_row), victims in sorted(ownership.items()):
            if len(found) >= count:
                break
            rows_needed = self._aggressor_rows(pattern, victim_row)
            if not all((bank, r) in ownership for r in rows_needed):
                continue
            if (bank, victim_row) in used or any(
                    (bank, r) in used for r in rows_needed):
                continue
            aggr_vaddrs = [ownership[(bank, r)][0][0] for r in rows_needed]
            aggr_ppns = [ownership[(bank, r)][0][1] for r in rows_needed]
            self.rows_scanned += 1
            for victim_vaddr, victim_ppn in victims:
                if len(found) >= count:
                    break
                flips = self._probe_victim(
                    victim_vaddr, victim_ppn, aggr_vaddrs,
                    rounds, per_iter_delay_ns)
                if flips:
                    used.add((bank, victim_row))
                    used.update((bank, r) for r in rows_needed)
                    found.append(VulnerablePage(
                        victim_ppn=victim_ppn,
                        victim_vaddr=victim_vaddr,
                        bank=bank,
                        victim_row=victim_row,
                        aggressor_rows=rows_needed,
                        aggressor_vaddrs=aggr_vaddrs,
                        aggressor_ppns=aggr_ppns,
                        flips=flips,
                        pattern=pattern,
                    ))
                    break  # one target per victim row
        if len(found) < count:
            raise TemplatingError(
                f"found only {len(found)}/{count} vulnerable pages after "
                f"scanning {self.rows_scanned} candidate rows; enlarge the "
                f"region or relax the pattern"
            )
        return found

    def _probe_victim(self, victim_vaddr: int, victim_ppn: int,
                      aggr_vaddrs: Sequence[int], rounds: int,
                      per_iter_delay_ns: int) -> List[ObservedFlip]:
        """Two-pass (0xFF / 0x00) hammer-and-diff of one victim page."""
        flips: List[ObservedFlip] = []
        # Sync with the refresh window, as real templaters do: a probe
        # straddling an auto-refresh loses its accumulated disturbance.
        window = self.kernel.dram.timings.refresh_window_ns
        into_window = self.kernel.clock.now_ns % window
        if into_window > window - 8 * rounds * 100:
            self.kernel.clock.advance(window - into_window)
        for pattern_byte, from_value in ((0xFF, 1), (0x00, 0)):
            payload = bytes([pattern_byte]) * PAGE
            self.kernel.user_write(self.process, victim_vaddr, payload)
            self.kit.run(
                round_robin(len(aggr_vaddrs), rounds,
                            per_iter_delay_ns=per_iter_delay_ns),
                aggr_vaddrs)
            after = self.kernel.user_read(self.process, victim_vaddr, PAGE)
            for offset, byte in enumerate(after):
                if byte == pattern_byte:
                    continue
                diff = byte ^ pattern_byte
                for bit in range(8):
                    if diff & (1 << bit):
                        flips.append(ObservedFlip(
                            byte_offset=offset, bit_index=bit,
                            from_value=from_value))
        return flips
