"""Scenario registry and sweep runner for the paper's evaluation grid.

Names every paper scenario (Tables II–V, Figures 4–5, extra benches) as
declarative :class:`ScenarioSpec` data on top of :mod:`repro.machine`,
and runs any subset serially or across multiprocessing workers with
byte-identical merged output (the ``repro-sweep`` CLI).
"""

from .registry import SCENARIOS, list_groups, scenario, scenario_group
from .runner import run_scenario, run_scenario_guarded, run_sweep
from .spec import KINDS, ScenarioResult, ScenarioSpec, results_to_json

__all__ = [
    "KINDS",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "list_groups",
    "results_to_json",
    "run_scenario",
    "run_scenario_guarded",
    "run_sweep",
    "scenario",
    "scenario_group",
]
