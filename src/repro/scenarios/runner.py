"""Scenario execution: one spec in, one JSON-stable result out.

``run_scenario`` dispatches on the scenario kind and drives the
corresponding analysis machinery on a freshly assembled
:class:`~repro.machine.Machine`.  ``run_sweep`` fans a scenario list
across multiprocessing workers; because every scenario is a pure
function of its spec (seeded RNG, simulated clock, no wall-clock or
process state), the merged result list is byte-identical to serial
execution — ``--workers N`` is a throughput knob, never a semantics
knob.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Iterable, List, Sequence, Union

from ..errors import AttackError, ConfigError, DefenseError, TemplatingError
from ..machine import Machine, MachineConfig, build_defense
from .spec import ScenarioResult, ScenarioSpec

__all__ = ["run_scenario", "run_scenario_guarded", "run_sweep"]


# ------------------------------------------------------------- workloads
def _suite_profiles(suite: str):
    if suite == "spec":
        from ..workloads.spec import SPEC_PROFILES

        return SPEC_PROFILES
    if suite == "phoronix":
        from ..workloads.phoronix import PHORONIX_PROFILES

        return PHORONIX_PROFILES
    raise ConfigError(f"unknown workload suite {suite!r}")


def _resolve_profile(workload: str, duration_ms=None):
    """``"suite:program"`` -> a (possibly re-timed) WorkloadProfile."""
    suite, _, program = workload.partition(":")
    if not program:
        raise ConfigError(
            f"workload {workload!r} must be 'suite:program'")
    profiles = _suite_profiles(suite)
    try:
        profile = profiles[program]
    except KeyError:
        raise ConfigError(
            f"unknown program {program!r} in suite {suite!r}") from None
    if duration_ms is not None:
        profile = profile.replace(duration_ms=duration_ms)
    return profile


# --------------------------------------------------------------- attacks
def _build_attack(kernel, name: str, params):
    from ..attacks.cattmew import CattmewAttack
    from ..attacks.memory_spray import MemorySprayAttack
    from ..attacks.pthammer import PthammerAttack, PthammerSprayAttack

    m = params.get("m", 1)
    kwargs = {
        "m": m,
        "region_pages": params.get("region_pages", 224),
        "template_rounds": params.get("template_rounds", 5_000),
    }
    if name == "memory_spray":
        return MemorySprayAttack(kernel, **kwargs)
    if name == "memory_spray_d2":
        return MemorySprayAttack(
            kernel, pattern_override="distance_two", **kwargs)
    if name == "cattmew":
        return CattmewAttack(kernel, **kwargs)
    if name == "pthammer":
        return PthammerAttack(kernel, **kwargs)
    if name == "pthammer_spray":
        return PthammerSprayAttack(
            kernel, spray_count=params.get("spray_count", 96), victims=m)
    raise ConfigError(f"unknown attack {name!r}")


def _run_attack(spec: ScenarioSpec) -> dict:
    params = spec.params
    install_after_setup = params.get("install_after_setup", False)
    config = MachineConfig(
        machine=spec.machine,
        defense="vanilla" if install_after_setup else spec.defense,
        defense_params={} if install_after_setup else spec.defense_params,
        # Fleet cells sweep the machine seed and an optional fault plan
        # through scenario params; absent both, defaults apply.
        seed=params.get("seed"),
        fault_plan=params.get("fault_plan"),
    )
    machine = Machine(config)
    kernel = machine.kernel
    try:
        attack = _build_attack(kernel, spec.attack, params)
        attack.setup()
        if install_after_setup and spec.defense != "vanilla":
            build_defense(spec.defense, spec.defense_params).install(kernel)
        outcome = attack.run(
            hammer_ns_per_victim=params.get("hammer_ns", 8_000_000))
    except (DefenseError, TemplatingError) as exc:
        return {"verdict": "blocked",
                "detail": f"{type(exc).__name__}: structural"}
    except AttackError as exc:
        return {"verdict": "blocked", "detail": str(exc)[:60]}
    return {
        "verdict": "bypassed" if outcome.succeeded else "blocked",
        "attack": outcome.attack,
        "machine": outcome.machine,
        "m": outcome.m,
        "hammer_time_ns": outcome.hammer_time_ns,
        "targeted_pt_pages": sorted(outcome.targeted_pt_pages),
        "flipped_pt_pages": sorted(outcome.flipped_pt_pages),
        "flip_events_in_pts": outcome.flip_events_in_pts,
        "softtrr_loaded": outcome.softtrr_loaded,
        "bit_flip_failed": outcome.bit_flip_failed,
    }


# -------------------------------------------------------------- overhead
def _spec_factory(spec: ScenarioSpec):
    def factory():
        return MachineConfig(machine=spec.machine).build_spec()

    return factory


def _run_overhead(spec: ScenarioSpec) -> dict:
    from ..analysis.overhead import measure_overhead

    params = spec.params
    profile = _resolve_profile(spec.workload, params.get("duration_ms"))
    row = measure_overhead(
        profile,
        spec_factory=_spec_factory(spec),
        seed=params.get("seed", 17),
        noise_sigma_pct=params.get("noise_sigma_pct", 0.35),
    )
    return asdict(row)


def _run_breakdown(spec: ScenarioSpec) -> dict:
    from ..analysis.breakdown import measure_breakdown
    from ..core.profile import SoftTrrParams

    params = spec.params
    profile = _resolve_profile(spec.workload, params.get("duration_ms"))
    breakdown = measure_breakdown(
        profile,
        spec_factory=_spec_factory(spec),
        params=SoftTrrParams(**spec.defense_params)
        if spec.defense_params else None,
        seed=params.get("seed", 17),
    )
    return asdict(breakdown)


# ------------------------------------------------------------------ lamp
def _run_lamp(spec: ScenarioSpec) -> dict:
    from ..analysis.memory import run_lamp_series, summarise

    params = spec.params
    distance = params.get("distance", 1)
    series = run_lamp_series(
        distances=(distance,),
        minutes=params.get("minutes", 24),
        spec_factory=_spec_factory(spec),
        workers=params.get("workers", 3),
        requests_per_minute=params.get("requests_per_minute", 20),
        seed=params.get("seed", 60),
    )
    samples = series[distance]
    return {
        "distance": distance,
        "summary": summarise(samples),
        "series": [asdict(sample) for sample in samples],
    }


# ---------------------------------------------------------------- stress
def _run_stress(spec: ScenarioSpec) -> dict:
    from ..analysis.robustness import stress_machine
    from ..workloads.ltp import run_stress_test

    params = spec.params
    distance = params.get("distance")
    machine = stress_machine(_spec_factory(spec), distance)
    result = run_stress_test(
        machine.kernel, spec.workload, iterations=params.get("iterations"))
    return {
        "test": spec.workload,
        "distance": distance,
        "iterations": result.iterations,
        "passed": result.passed,
        "error": result.error,
    }


# ----------------------------------------------------------------- chaos
def _run_chaos(spec: ScenarioSpec) -> dict:
    from ..analysis.chaos import run_chaos_scenario

    return run_chaos_scenario(spec)


# ------------------------------------------------------------------- zoo
def _run_zoo(spec: ScenarioSpec) -> dict:
    from ..analysis.zoo import run_zoo_scenario

    return run_zoo_scenario(spec)


# --------------------------------------------------------------- pattern
def _run_pattern(spec: ScenarioSpec) -> dict:
    from ..patterns.scenario import run_pattern_scenario

    return run_pattern_scenario(spec)


_RUNNERS = {
    "attack": _run_attack,
    "overhead": _run_overhead,
    "breakdown": _run_breakdown,
    "lamp": _run_lamp,
    "stress": _run_stress,
    "chaos": _run_chaos,
    "zoo": _run_zoo,
    "pattern": _run_pattern,
}


def run_scenario(spec: Union[ScenarioSpec, str]) -> ScenarioResult:
    """Execute one scenario (by spec or registered name)."""
    if isinstance(spec, str):
        from .registry import scenario

        spec = scenario(spec)
    payload = _RUNNERS[spec.kind](spec)
    return ScenarioResult(
        name=spec.name, kind=spec.kind, group=spec.group, payload=payload)


def run_scenario_guarded(spec: ScenarioSpec) -> ScenarioResult:
    """``run_scenario`` with per-cell failure containment.

    A raising cell becomes a structured error result (name, kind,
    error type/message under ``payload["error"]``) instead of
    propagating — so one bad cell can never sink its siblings, and a
    sweep always returns a full-length result list with failures
    recorded in place.
    """
    try:
        return run_scenario(spec)
    except Exception as exc:  # noqa: BLE001 — the containment boundary
        return ScenarioResult(
            name=spec.name,
            kind=spec.kind,
            group=spec.group,
            payload={
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc)[:200],
                },
            },
        )


def run_sweep(specs: Iterable[Union[ScenarioSpec, str]],
              workers: int = 1) -> List[ScenarioResult]:
    """Run a scenario list, optionally fanned across worker processes.

    Results come back in input order and are byte-identical to a
    serial run for any worker count: each scenario is a pure function
    of its spec (seeded RNG, simulated clock), and the merge preserves
    order rather than completion time.  A raising cell is caught into a
    structured error result (:func:`run_scenario_guarded`) rather than
    aborting the sibling cells, on both the serial and parallel paths.
    """
    from .registry import scenario

    resolved: Sequence[ScenarioSpec] = [
        scenario(s) if isinstance(s, str) else s for s in specs]
    if workers <= 1 or len(resolved) <= 1:
        return [run_scenario_guarded(s) for s in resolved]
    import multiprocessing

    with multiprocessing.Pool(processes=min(workers, len(resolved))) as pool:
        return pool.map(run_scenario_guarded, resolved)
