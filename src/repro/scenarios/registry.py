"""The paper's evaluation grid as a flat scenario registry.

Every cell of Tables II–V, Figures 4–5 and the extra benches is named
here as data — machine + defense + attack/workload + knobs — so any
subset can be handed to :func:`repro.scenarios.runner.run_sweep` (or the
``repro-sweep`` CLI) and fanned across workers.  Groups:

``table2``     Section V security grid: each paper machine runs its
               attack on the vanilla system and under SoftTRR.
``baselines``  The Sections I/II comparison matrix on the tiny machine
               (CATT/CTA/ZebRAM/ANVIL/RIP-RH/ALIS/SoftTRR vs attacks).
``table3``     SPECspeed 2017 Integer overhead (10 programs).
``table4``     Phoronix suite overhead (17 programs).
``table5``     LTP robustness (20 stress tests x vanilla/Δ±1/Δ±6).
``lamp``       Figures 4–5 LAMP memory/page series (Δ±1 and Δ±6).
``anatomy``    The DP3 overhead decomposition (extra bench).
``smoke``      A seconds-scale subset used by CI and the test suite.
``chaos``      Fault-injection cells (one per ``repro.faults`` site,
               healing on and off) backing the ``repro-chaos`` harness.
``patterns``   Hammer-pattern DSL cells (:mod:`repro.patterns`):
               DSL-authored sided patterns vs the headline defenses on
               the rows and page-table targets.

Scale choices match the benchmarks' laptop-friendly small mode; a
sweep is meant to regenerate the tables' *shape and verdicts*, with
``REPRO_FULL``-style paper scale remaining the benchmarks' job.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from .spec import ScenarioSpec

__all__ = ["SCENARIOS", "scenario", "scenario_group", "list_groups"]

#: SoftTRR/ANVIL timing scaled to the tiny machine's weaker DRAM
#: (mirrors the baselines bench).
_TINY_SOFTTRR = {"timer_inr_ns": 50_000}
_TINY_ANVIL = {"interval_ns": 50_000, "miss_threshold": 300,
               "row_threshold": 3}


def _table2() -> List[ScenarioSpec]:
    grid: Tuple = (
        ("optiplex_390", "memory_spray", 8_000_000),
        ("optiplex_990", "cattmew", 8_000_000),
        ("thinkpad_x230", "pthammer", 16_000_000),
    )
    out = []
    for machine, attack, hammer_ns in grid:
        for defense in ("vanilla", "softtrr"):
            out.append(ScenarioSpec(
                name=f"table2-{attack}-{defense}",
                kind="attack",
                group="table2",
                title=f"Table II: {attack} on {machine} ({defense})",
                machine=machine,
                defense=defense,
                attack=attack,
                params={
                    "m": 2,
                    "region_pages": 288,
                    "template_rounds": 16_000,
                    "hammer_ns": hammer_ns,
                    # Paper order: template first, then "enable SoftTRR
                    # ... re-start the optimized attack".
                    "install_after_setup": True,
                },
            ))
    return out


def _baselines() -> List[ScenarioSpec]:
    #: (defense, defense_params, attack, extra params)
    grid = (
        ("vanilla", {}, "memory_spray", {}),
        ("vanilla", {}, "cattmew", {}),
        ("vanilla", {}, "pthammer_spray", {}),
        ("catt", {}, "memory_spray", {}),
        ("catt", {}, "cattmew", {}),
        ("catt", {}, "pthammer_spray", {}),
        ("cta", {}, "memory_spray", {}),
        ("cta", {}, "cattmew", {}),
        ("cta", {}, "pthammer_spray", {}),
        ("zebram", {}, "memory_spray", {}),
        ("zebram", {}, "memory_spray_d2", {}),
        ("anvil", _TINY_ANVIL, "memory_spray", {}),
        ("anvil", _TINY_ANVIL, "pthammer_spray", {}),
        ("riprh", {}, "memory_spray", {}),
        ("alis", {}, "memory_spray", {}),
        # Fit inside ALIS's bounded DMA partition.
        ("alis", {}, "cattmew", {"region_pages": 96}),
        ("softtrr", _TINY_SOFTTRR, "memory_spray", {}),
        ("softtrr", _TINY_SOFTTRR, "cattmew", {}),
        ("softtrr", _TINY_SOFTTRR, "pthammer_spray", {}),
    )
    out = []
    for defense, defense_params, attack, extra in grid:
        params = {"m": 1, "region_pages": 224, "template_rounds": 3_000,
                  "hammer_ns": 4_000_000}
        params.update(extra)
        out.append(ScenarioSpec(
            name=f"baselines-{defense}-{attack}",
            kind="attack",
            group="baselines",
            title=f"Baseline matrix: {attack} vs {defense}",
            machine="tiny",
            defense=defense,
            defense_params=defense_params,
            attack=attack,
            params=params,
        ))
    return out


def _overhead_suite(group: str, suite: str, order, duration_ms: int
                    ) -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name=f"{group}-{program.replace(':', '_')}",
            kind="overhead",
            group=group,
            title=f"{suite} overhead: {program}",
            machine="perf_testbed",
            defense="softtrr",
            workload=f"{suite}:{program}",
            params={"duration_ms": duration_ms, "seed": 17},
        )
        for program in order
    ]


def _table3() -> List[ScenarioSpec]:
    from ..workloads.spec import SPEC_ORDER

    return _overhead_suite("table3", "spec", SPEC_ORDER, 80)


def _table4() -> List[ScenarioSpec]:
    from ..workloads.phoronix import PHORONIX_ORDER

    return _overhead_suite("table4", "phoronix", PHORONIX_ORDER, 70)


def _table5() -> List[ScenarioSpec]:
    from ..workloads.ltp import LTP_STRESS_TESTS

    out = []
    for test in LTP_STRESS_TESTS:
        for label, distance in (("vanilla", None), ("d1", 1), ("d6", 6)):
            out.append(ScenarioSpec(
                name=f"table5-{test}-{label}",
                kind="stress",
                group="table5",
                title=f"Table V: {test} ({label})",
                machine="perf_testbed",
                defense="vanilla" if distance is None else "softtrr",
                workload=test,
                params={"distance": distance, "iterations": 10},
            ))
    return out


def _lamp() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name=f"lamp-d{distance}",
            kind="lamp",
            group="lamp",
            title=f"Figures 4-5: LAMP series under Δ±{distance}",
            machine="perf_testbed",
            defense="softtrr",
            params={"distance": distance, "minutes": 24, "workers": 3,
                    "requests_per_minute": 20, "seed": 60},
        )
        for distance in (1, 6)
    ]


def _anatomy() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name=f"anatomy-{program}",
            kind="breakdown",
            group="anatomy",
            title=f"DP3 overhead anatomy: {program}",
            machine="perf_testbed",
            defense="softtrr",
            workload=f"spec:{program}",
            params={"duration_ms": 50, "seed": 17},
        )
        for program in ("exchange2_s", "gcc_s", "xalancbmk_s")
    ]


def _smoke() -> List[ScenarioSpec]:
    attack_params = {"m": 1, "region_pages": 224, "template_rounds": 3_000,
                     "hammer_ns": 4_000_000}
    return [
        ScenarioSpec(
            name="smoke-spray-vanilla",
            kind="attack",
            group="smoke",
            title="Smoke: memory spray corrupts the vanilla tiny machine",
            machine="tiny",
            attack="memory_spray",
            params=attack_params,
        ),
        ScenarioSpec(
            name="smoke-spray-softtrr",
            kind="attack",
            group="smoke",
            title="Smoke: SoftTRR stops the same spray",
            machine="tiny",
            defense="softtrr",
            defense_params=_TINY_SOFTTRR,
            attack="memory_spray",
            params=attack_params,
        ),
        ScenarioSpec(
            name="smoke-overhead-exchange2",
            kind="overhead",
            group="smoke",
            title="Smoke: one SPEC program overhead",
            workload="spec:exchange2_s",
            defense="softtrr",
            params={"duration_ms": 10, "seed": 17},
        ),
        ScenarioSpec(
            name="smoke-stress-clone",
            kind="stress",
            group="smoke",
            title="Smoke: clone storm under Δ±1",
            defense="softtrr",
            workload="clone",
            params={"distance": 1, "iterations": 2},
        ),
        ScenarioSpec(
            name="smoke-lamp-d1",
            kind="lamp",
            group="smoke",
            title="Smoke: two LAMP minutes under Δ±1",
            defense="softtrr",
            params={"distance": 1, "minutes": 2, "workers": 3,
                    "requests_per_minute": 20, "seed": 60},
        ),
    ]


def _chaos() -> List[ScenarioSpec]:
    from ..faults import FAULT_SITES

    out = []
    for site in FAULT_SITES:
        for healing in (True, False):
            label = "healed" if healing else "raw"
            out.append(ScenarioSpec(
                name=f"chaos-{site}-{label}",
                kind="chaos",
                group="chaos",
                title=(f"Chaos: {site} faults at default intensity "
                       f"({'healing on' if healing else 'healing off'})"),
                machine="tiny",
                defense="softtrr",
                defense_params=_TINY_SOFTTRR,
                params={"site": site, "healing": healing},
            ))
    return out


def _zoo() -> List[ScenarioSpec]:
    from ..analysis.zoo import zoo_specs

    return zoo_specs()


def _patterns() -> List[ScenarioSpec]:
    from ..patterns.scenario import pattern_specs

    return pattern_specs()


def _build() -> Dict[str, ScenarioSpec]:
    registry: Dict[str, ScenarioSpec] = {}
    for builder in (_table2, _baselines, _table3, _table4, _table5,
                    _lamp, _anatomy, _smoke, _chaos, _zoo, _patterns):
        for spec in builder():
            if spec.name in registry:
                raise ConfigError(f"duplicate scenario name {spec.name!r}")
            registry[spec.name] = spec
    return registry


#: name -> ScenarioSpec for every registered paper scenario.
SCENARIOS: Dict[str, ScenarioSpec] = _build()


def scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; see list_groups() or "
            "`repro-sweep --list`") from None


def scenario_group(group: str) -> List[ScenarioSpec]:
    """All scenarios of one group, in registration order."""
    specs = [s for s in SCENARIOS.values() if s.group == group]
    if not specs:
        raise ConfigError(
            f"unknown scenario group {group!r}; known: {list_groups()}")
    return specs


def list_groups() -> List[str]:
    """Registered group names, in registration order."""
    seen: List[str] = []
    for spec in SCENARIOS.values():
        if spec.group not in seen:
            seen.append(spec.group)
    return seen
