"""``repro-sweep``: run registered scenario grids, optionally parallel.

Examples::

    repro-sweep --list
    repro-sweep --group smoke
    repro-sweep --group table2 --jobs 4 --out results/table2.json
    repro-sweep smoke-spray-vanilla smoke-spray-softtrr --jobs 2

Output is canonical JSON (sorted keys, fixed layout): a sweep with
``--jobs N`` is byte-identical to ``--jobs 1`` over the same
scenarios, which CI asserts with a plain ``diff``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .. import cli_common
from ..errors import ConfigError, ReproError
from .registry import SCENARIOS, list_groups, scenario, scenario_group
from .runner import run_sweep
from .spec import results_to_json

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        prog="repro-sweep",
        description="Run registered paper scenarios, optionally in parallel.",
    )
    parser.add_argument(
        "scenarios", nargs="*",
        help="scenario names to run (see --list)")
    parser.add_argument(
        "--group", action="append", default=[],
        help="run every scenario of a group (repeatable)")
    cli_common.add_jobs_option(parser)
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit")
    cli_common.add_out_option(
        parser, help_text="write the JSON results to PATH instead of stdout")
    return parser


def _render_listing() -> str:
    lines = []
    for group in list_groups():
        lines.append(f"{group}:")
        for spec in scenario_group(group):
            lines.append(f"  {spec.name:34s} [{spec.kind}] {spec.title}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_scenarios:
        print(_render_listing())
        return cli_common.EXIT_OK
    try:
        specs = []
        for group in args.group:
            specs.extend(scenario_group(group))
        for name in args.scenarios:
            specs.append(scenario(name))
        if not specs:
            print("repro-sweep: nothing to run "
                  "(name scenarios or pass --group; see --list)",
                  file=sys.stderr)
            return cli_common.EXIT_USAGE
        if args.jobs < 1:
            raise ConfigError("--jobs must be >= 1")
        results = run_sweep(specs, workers=args.jobs)
    except ReproError as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE
    text = results_to_json(results)
    if args.out:
        cli_common.atomic_write_text(args.out, text)
        print(f"[{len(results)} scenarios -> {args.out}]")
    else:
        sys.stdout.write(text)
    return cli_common.EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
