"""Scenario data model: one paper experiment cell as plain data.

A :class:`ScenarioSpec` pins down everything one evaluation run needs —
machine, defense (+params), attack or workload, and the kind-specific
knobs — so the paper's grid (Tables II–V, Figures 4–5, the extra
benches) becomes a flat registry of records instead of bespoke scripts.
Specs and results are picklable and JSON-stable: the sweep runner ships
specs to worker processes and merges results byte-identically to serial
execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import ConfigError

__all__ = ["KINDS", "ScenarioSpec", "ScenarioResult", "results_to_json"]

#: Scenario kinds the runner knows how to execute.
KINDS = ("attack", "overhead", "breakdown", "lamp", "stress", "chaos",
         "zoo", "pattern")


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation cell: machine + defense + attack/workload + knobs.

    ``machine``/``defense``/``defense_params`` feed a
    :class:`~repro.machine.MachineConfig`.  ``attack`` names an attack
    for ``kind="attack"``; ``workload`` names a profile
    (``"spec:gcc_s"``, ``"phoronix:Apache"``) for overhead/breakdown
    kinds or an LTP test for ``kind="stress"``.  ``pattern`` carries
    inline hammer-pattern DSL source for ``kind="pattern"``
    (:mod:`repro.patterns`).  Everything else lives in ``params``
    (kind-specific; see :mod:`repro.scenarios.runner`).
    """

    name: str
    kind: str
    group: str
    title: str = ""
    machine: str = "perf_testbed"
    defense: str = "vanilla"
    defense_params: Mapping = field(default_factory=dict)
    attack: Optional[str] = None
    workload: Optional[str] = None
    pattern: Optional[str] = None
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown scenario kind {self.kind!r}; known: {KINDS}")
        if self.kind == "attack" and not self.attack:
            raise ConfigError(f"scenario {self.name!r}: attack kind "
                              "needs an attack name")
        if self.kind == "pattern" and not self.pattern:
            raise ConfigError(f"scenario {self.name!r}: pattern kind "
                              "needs inline DSL source in 'pattern'")
        if self.kind in ("overhead", "breakdown", "stress") and not self.workload:
            raise ConfigError(f"scenario {self.name!r}: {self.kind} kind "
                              "needs a workload name")
        # Plain dicts so specs pickle and compare cleanly.
        object.__setattr__(self, "defense_params", dict(self.defense_params))
        object.__setattr__(self, "params", dict(self.params))


@dataclass
class ScenarioResult:
    """Outcome of one scenario run, as a JSON-stable record."""

    name: str
    kind: str
    group: str
    payload: Mapping

    def to_dict(self) -> dict:
        """Plain-dict form (the canonical serialisation input)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "group": self.group,
            "payload": self.payload,
        }


def results_to_json(results) -> str:
    """Canonical JSON for a result list — byte-stable across runs.

    Keys are sorted and separators fixed, so two runs producing equal
    values serialise to identical bytes regardless of worker count or
    dict insertion order.
    """
    return json.dumps(
        [r.to_dict() for r in results],
        sort_keys=True,
        indent=2,
    ) + "\n"
