"""Security evaluation harness (Table II + the baseline matrix).

``run_table2`` reproduces Section V: each of the paper's three machines
runs its attack twice — on the vanilla system (the attack must corrupt
L1PTs, or the experiment is vacuous) and with SoftTRR loaded (the
Table II checkmark: "Bit Flip Failed?").

``run_baseline_matrix`` reproduces the comparison claims of Sections
I/II: which of CATT / CTA / ZebRAM / ANVIL stop which attack, and why
SoftTRR is the only one that stops all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type

from ..attacks.base import AttackOutcome, PageTableAttack
from ..attacks.cattmew import CattmewAttack
from ..attacks.memory_spray import MemorySprayAttack
from ..attacks.pthammer import PthammerAttack, PthammerSprayAttack
from ..config import MachineSpec, optiplex_390, optiplex_990, thinkpad_x230
from ..core.profile import SoftTrrParams
from ..defenses.base import Defense, SoftTrrDefense, boot_kernel
from ..errors import AttackError, DefenseError, TemplatingError


@dataclass
class Table2Row:
    """One Table II line."""

    machine: str
    cpu: str
    dram: str
    attack: str
    m: int
    baseline_flipped_pages: int
    softtrr_flipped_pages: int
    softtrr_refreshes: int
    bit_flip_failed: bool

    @property
    def checkmark(self) -> str:
        """The Table II cell."""
        return "yes" if self.bit_flip_failed else "NO"


#: Table II configuration: machine profile, attack class, hammer budget.
TABLE2_CONFIG = (
    (optiplex_390, MemorySprayAttack, 8_000_000),
    (optiplex_990, CattmewAttack, 8_000_000),
    (thinkpad_x230, PthammerAttack, 16_000_000),
)


def _run_attack_once(spec_factory: Callable[[], MachineSpec],
                     attack_cls: Type[PageTableAttack],
                     *, softtrr: bool, m: int, hammer_ns: int,
                     region_pages: int, template_rounds: int) -> AttackOutcome:
    kernel = boot_kernel(spec_factory())
    attack = attack_cls(kernel, m=m, region_pages=region_pages,
                        template_rounds=template_rounds)
    attack.setup()
    if softtrr:
        SoftTrrDefense(SoftTrrParams()).install(kernel)
    return attack.run(hammer_ns_per_victim=hammer_ns)


def run_table2(m: int = 2, region_pages: int = 320,
               template_rounds: int = 22_000) -> List[Table2Row]:
    """Regenerate Table II (scaled: m victims per attack)."""
    rows: List[Table2Row] = []
    for spec_factory, attack_cls, hammer_ns in TABLE2_CONFIG:
        spec = spec_factory()
        baseline = _run_attack_once(
            spec_factory, attack_cls, softtrr=False, m=m,
            hammer_ns=hammer_ns, region_pages=region_pages,
            template_rounds=template_rounds)
        defended = _run_attack_once(
            spec_factory, attack_cls, softtrr=True, m=m,
            hammer_ns=hammer_ns, region_pages=region_pages,
            template_rounds=template_rounds)
        rows.append(Table2Row(
            machine=spec.name,
            cpu=f"{spec.cpu_arch}/{spec.cpu_model}",
            dram=spec.dram_part,
            attack=attack_cls.name,
            m=m,
            baseline_flipped_pages=len(baseline.flipped_pt_pages),
            softtrr_flipped_pages=len(defended.flipped_pt_pages),
            softtrr_refreshes=defended.flip_events_in_pts,
            bit_flip_failed=defended.bit_flip_failed,
        ))
    return rows


# --------------------------------------------------------------- baselines
@dataclass
class MatrixCell:
    """One (defense, attack) result of the baseline comparison."""

    defense: str
    attack: str
    #: "blocked" (no flips / placement or templating refused),
    #: "bypassed" (the attack corrupted L1PTs).
    verdict: str
    detail: str = ""


def _matrix_attack(kernel, attack_name: str, *, m: int,
                   region_pages: int, template_rounds: int,
                   hammer_ns: int) -> AttackOutcome:
    if attack_name == "memory_spray":
        attack = MemorySprayAttack(kernel, m=m, region_pages=region_pages,
                                   template_rounds=template_rounds)
    elif attack_name == "memory_spray_d2":
        attack = MemorySprayAttack(kernel, m=m, region_pages=region_pages,
                                   template_rounds=template_rounds,
                                   pattern_override="distance_two")
    elif attack_name == "cattmew":
        attack = CattmewAttack(kernel, m=m, region_pages=region_pages,
                               template_rounds=template_rounds)
    elif attack_name == "pthammer":
        attack = PthammerSprayAttack(kernel, spray_count=96, victims=m)
        attack.setup()
        return attack.run(hammer_ns_per_victim=hammer_ns)
    else:
        raise AttackError(f"unknown matrix attack {attack_name!r}")
    attack.setup()
    return attack.run(hammer_ns_per_victim=hammer_ns)


def run_baseline_matrix(spec_factory: Callable[[], MachineSpec],
                        defenses: Dict[str, Defense],
                        attacks: List[str],
                        *, m: int = 1, region_pages: int = 224,
                        template_rounds: int = 5_000,
                        hammer_ns: int = 4_000_000) -> List[MatrixCell]:
    """Run every (defense, attack) pair; returns the matrix cells.

    A defense "blocks" an attack either structurally (templating finds
    nothing / the kernel refuses the placement) or dynamically (the
    hammering produces no flips in L1PT pages).
    """
    cells: List[MatrixCell] = []
    for defense_name, defense in defenses.items():
        for attack_name in attacks:
            kernel = boot_kernel(spec_factory(), defense)
            try:
                outcome = _matrix_attack(
                    kernel, attack_name, m=m,
                    region_pages=region_pages,
                    template_rounds=template_rounds,
                    hammer_ns=hammer_ns)
            except (DefenseError, TemplatingError) as exc:
                cells.append(MatrixCell(
                    defense=defense_name, attack=attack_name,
                    verdict="blocked",
                    detail=f"{type(exc).__name__}: structural"))
                continue
            except AttackError as exc:
                cells.append(MatrixCell(
                    defense=defense_name, attack=attack_name,
                    verdict="blocked", detail=str(exc)[:60]))
                continue
            cells.append(MatrixCell(
                defense=defense_name, attack=attack_name,
                verdict="bypassed" if outcome.succeeded else "blocked",
                detail=f"{len(outcome.flipped_pt_pages)}/{outcome.m} PTs flipped",
            ))
    return cells
