"""LAMP memory-consumption series (Figures 4 and 5).

``run_lamp_series`` runs the LAMP + Nikto simulation for each requested
tracking distance and returns the per-minute samples that Figure 4
(memory bytes) and Figure 5 (protected / traced page counts) plot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..config import MachineSpec, perf_testbed
from ..core.profile import SoftTrrParams
from ..machine import Machine
from ..workloads.lamp import LampSample, LampSimulation


def run_lamp_series(
    distances: Sequence[int] = (1, 6),
    minutes: int = 60,
    spec_factory: Callable[[], MachineSpec] = perf_testbed,
    workers: int = 3,
    requests_per_minute: int = 20,
    seed: int = 60,
) -> Dict[int, List[LampSample]]:
    """Per-minute SoftTRR samples under each Δ±distance configuration."""
    series: Dict[int, List[LampSample]] = {}
    for distance in distances:
        machine = Machine.from_parts(spec_factory())
        machine.load_softtrr(SoftTrrParams(max_distance=distance))
        simulation = LampSimulation(
            machine.kernel, seed=seed, workers=workers,
            requests_per_minute=requests_per_minute)
        series[distance] = simulation.run(minutes=minutes)
    return series


def summarise(samples: List[LampSample]) -> Dict[str, float]:
    """Headline numbers for one series (used by EXPERIMENTS.md)."""
    last_quarter = samples[-max(1, len(samples) // 4):]
    return {
        "final_memory_kib": samples[-1].memory_bytes / 1024.0,
        "peak_memory_kib": max(s.memory_bytes for s in samples) / 1024.0,
        "stable_memory_kib": (
            sum(s.memory_bytes for s in last_quarter)
            / len(last_quarter) / 1024.0),
        "final_protected": samples[-1].protected_pages,
        "final_traced": samples[-1].traced_pages,
        "ringbuf_kib": samples[0].ringbuf_bytes / 1024.0,
    }
