"""Where does SoftTRR's overhead go?  (The cost anatomy behind DP3.)

The paper's design principle DP3 argues overhead stays small because
"the accesses to non-adjacent pages are at full speed" — all cost is
concentrated in four places: trace-fault capture, timer arming, collector
hook work and row refreshes.  This utility decomposes a workload run's
defense time into exactly those categories (from the kernel's cycle
accountant) so the claim is inspectable per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..config import MachineSpec, perf_testbed
from ..core.profile import SoftTrrParams
from ..machine import Machine
from ..workloads.base import WorkloadProfile

#: Accountant categories attributable to the SoftTRR module.
SOFTTRR_CATEGORIES = (
    "softtrr_trace_fault",
    "softtrr_timer",
    "softtrr_collector",
    "softtrr_refresh",
)


@dataclass
class OverheadBreakdown:
    """Defense-time decomposition for one workload run."""

    workload: str
    runtime_ns: int
    total_defense_ns: int
    per_category_ns: Dict[str, int]

    @property
    def defense_fraction(self) -> float:
        """Defense time as a fraction of total runtime."""
        if self.runtime_ns == 0:
            return 0.0
        return self.total_defense_ns / self.runtime_ns

    def share(self, category: str) -> float:
        """One category's share of the defense time."""
        if self.total_defense_ns == 0:
            return 0.0
        return self.per_category_ns.get(category, 0) / self.total_defense_ns

    def dominant_category(self) -> str:
        """The category carrying the most defense time."""
        if not self.per_category_ns:
            return "none"
        return max(self.per_category_ns, key=self.per_category_ns.get)


def measure_breakdown(
    profile: WorkloadProfile,
    spec_factory: Callable[[], MachineSpec] = perf_testbed,
    params: SoftTrrParams = None,
    seed: int = 17,
) -> OverheadBreakdown:
    """Run one workload under SoftTRR and decompose the added time."""
    machine = Machine.from_parts(spec_factory())
    module = machine.load_softtrr(params or SoftTrrParams())
    result = machine.run_workload(profile, seed=seed)
    per_category = {
        category: result.accounting.get(category, 0)
        for category in SOFTTRR_CATEGORIES
        if result.accounting.get(category, 0) > 0
    }
    return OverheadBreakdown(
        workload=profile.name,
        runtime_ns=result.runtime_ns,
        total_defense_ns=module.overhead_ns,
        per_category_ns=per_category,
    )


def render_breakdown(breakdowns) -> str:
    """Plain-text table of several breakdowns."""
    from .tables import render_table

    rows = []
    for b in breakdowns:
        rows.append([
            b.workload,
            f"{b.defense_fraction * 100:.3f}%",
            f"{b.share('softtrr_trace_fault') * 100:.0f}%",
            f"{b.share('softtrr_timer') * 100:.0f}%",
            f"{b.share('softtrr_collector') * 100:.0f}%",
            f"{b.share('softtrr_refresh') * 100:.0f}%",
        ])
    return render_table(
        ["Workload", "Defense/runtime", "trace faults", "timer",
         "collector", "refresh"],
        rows,
        title="SoftTRR overhead anatomy (shares of defense time)",
    )
