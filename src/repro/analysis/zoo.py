"""Defense-zoo sweep: trackers head-to-head on one machine.

The layered tracker architecture makes defenses comparable: every
tracker rides the same :class:`~repro.dram.feed.ActivationFeed` and
heals through the same :class:`~repro.dram.feed.RefreshActuator`, so
one sweep can score them all on three axes at once:

* **protection** — did any :class:`FlipEvent` land (pattern leg), and
  did the memory-spray attack corrupt an L1PT (spray leg)?
* **refresh overhead** — actuator refreshes per DRAM activation (the
  shared actuator counts SoftTRR's refresher too, so the software
  defense lands on the same axis as the silicon trackers);
* **SRAM budget** — bits of tracker state per bank
  (:meth:`~repro.dram.feed.Tracker.sram_bits`; zero for the stateless
  PARA and for SoftTRR, whose state is kernel memory, not SRAM).

Two legs per defense:

* **pattern** — direct 1-sided / 2-sided / 8-sided hammering of the
  cheapest vulnerable neighbourhood, budgeted at 1.5x the victim's flip
  threshold per aggressor.  The 8-sided column is ChipTRR's TRRespass
  blind spot (more aggressors than tracker slots) and DAPPER's budget
  cliff (more crossings than the per-epoch mitigation budget).
* **spray** — the smoke-scale memory-spray attack (page-table centric,
  SoftTRR's home turf, mirroring the chaos harness minus the faults).

``repro-zoo --check`` gates CI: vanilla must flip somewhere (the bench
has teeth), every tracker must actuate somewhere (the feed is live) and
at least one tracker must fully protect a cell vanilla loses.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional, Sequence

from .. import cli_common
from ..errors import AttackError, ConfigError, ReproError
from ..machine import Machine, MachineConfig
from ..scenarios.spec import ScenarioResult, ScenarioSpec

__all__ = [
    "PATTERNS",
    "TINY_DEFENSE_PARAMS",
    "ZOO_DEFENSES",
    "main",
    "run_zoo_cell",
    "run_zoo_matrix",
    "run_zoo_scenario",
    "summarise_matrix",
    "zoo_specs",
]

#: Sweep columns: aggressors per pattern leg cell.
PATTERNS = ("one_sided", "double_sided", "many_sided")

#: Sweep rows, in report order.
ZOO_DEFENSES = ("vanilla", "chiptrr", "softtrr", "para", "misra_gries",
                "ptmp", "dapper")

#: Defense parameters scaled to the tiny machine (flip thresholds start
#: at 2k weighted ACTs there, so trackers must trigger well below that).
TINY_DEFENSE_PARAMS: Dict[str, Dict] = {
    "vanilla": {},
    "softtrr": {"timer_inr_ns": 50_000},
    "chiptrr": {"tracker_slots": 2, "trr_threshold": 400,
                "refresh_distance": 6},
    "para": {"probability": 0.05, "refresh_distance": 1},
    "misra_gries": {"table_entries": 8, "threshold": 400,
                    "refresh_distance": 2},
    "ptmp": {"table_entries": 4, "threshold": 400,
             "insert_probability": 0.25, "refresh_distance": 2},
    "dapper": {"table_entries": 8, "threshold": 400,
               "mitigation_budget": 4, "refresh_distance": 2},
}

#: Aggressor offsets from the victim row, per pattern.  ``many_sided``
#: cycles eight rows — wider than ChipTRR's two slots.
_PATTERN_OFFSETS = {
    "one_sided": (-1,),
    "double_sided": (-1, 1),
    "many_sided": (-4, -3, -2, -1, 1, 2, 3, 4),
}

#: Smoke-scale memory-spray knobs (mirrors the chaos harness).
_SPRAY_PARAMS = {"m": 1, "region_pages": 224, "template_rounds": 3_000,
                 "hammer_ns": 4_000_000}

#: Hammer rounds for the pattern leg (per-aggressor budget is split
#: across rounds so aggressors interleave, as real many-sided does).
_PATTERN_ROUNDS = 50


def _build_machine(defense: str, defense_params: Optional[Mapping],
                   machine_name: str) -> Machine:
    params = dict(TINY_DEFENSE_PARAMS.get(defense, {}))
    params.update(defense_params or {})
    return Machine(MachineConfig(
        machine=machine_name,
        defense=defense,
        defense_params=params,
        sanitize=True,
        strict_sanitizers=False,
    ))


def _cheapest_victim(machine: Machine):
    """(bank, row, threshold) of the cheapest hammerable vulnerable cell.

    Rows too close to the bank edge for the widest pattern are skipped
    so every pattern leg hammers the same victim.
    """
    dram = machine.dram
    margin = max(abs(off) for off in _PATTERN_OFFSETS["many_sided"])
    best = None
    for bank in range(dram.geometry.num_banks):
        for row in range(margin, dram.geometry.rows_per_bank - margin):
            cells = dram.engine.vulnerable_cells(bank, row)
            if cells and (best is None or cells[0].threshold < best[2]):
                best = (bank, row, cells[0].threshold)
    if best is None:
        raise ConfigError("machine seed produced no vulnerable rows")
    return best


def _tracker_metrics(machine: Machine) -> Dict[str, object]:
    dram = machine.dram
    flat = machine.telemetry.as_flat_dict()
    activations = dram.total_activations
    refreshes = dram.actuator.refreshes
    return {
        "activations": activations,
        "refreshes": refreshes,
        "refresh_overhead": (refreshes / activations if activations else 0.0),
        "sram_bits": sum(t.sram_bits() for t in dram.feed.trackers()),
        "tracker_counters": {
            key: value for key, value in flat.items()
            if key.startswith("tracker.")},
    }


def run_zoo_cell(
    defense: str,
    pattern: str,
    seed: int = 11,
    machine_name: str = "tiny",
    defense_params: Optional[Mapping] = None,
    attack_params: Optional[Mapping] = None,
) -> dict:
    """One zoo cell; deterministic in all arguments.

    ``pattern`` is one of :data:`PATTERNS` (direct hammer leg) or
    ``"spray"`` (memory-spray attack leg).
    """
    if pattern == "spray":
        return _run_spray_cell(defense, seed, machine_name,
                               defense_params, attack_params)
    if pattern not in _PATTERN_OFFSETS:
        raise ConfigError(
            f"unknown zoo pattern {pattern!r}; known: "
            f"{PATTERNS + ('spray',)}")
    machine = _build_machine(defense, defense_params, machine_name)
    dram = machine.dram
    bank, victim, threshold = _cheapest_victim(machine)
    offsets = _PATTERN_OFFSETS[pattern]
    budget = int(1.5 * threshold)
    per_round = max(1, budget // _PATTERN_ROUNDS)
    aggressors = [
        dram.mapping.dram_to_phys(bank, victim + offset, 0)
        for offset in offsets]
    hammer_start = machine.clock.now_ns
    for _ in range(_PATTERN_ROUNDS):
        for paddr in aggressors:
            dram.hammer(paddr, per_round)
    flips = sum(1 for flip in dram.flip_log if flip.at_ns >= hammer_start)
    payload: Dict[str, object] = {
        "defense": defense,
        "pattern": pattern,
        "seed": seed,
        "victim": [bank, victim],
        "victim_threshold": threshold,
        "aggressors": len(offsets),
        "acts_per_aggressor": per_round * _PATTERN_ROUNDS,
        "flip_events": flips,
        "protected": flips == 0,
    }
    payload.update(_tracker_metrics(machine))
    return payload


def _run_spray_cell(defense: str, seed: int, machine_name: str,
                    defense_params: Optional[Mapping],
                    attack_params: Optional[Mapping]) -> dict:
    from ..attacks.memory_spray import MemorySprayAttack

    knobs = dict(_SPRAY_PARAMS)
    knobs.update(attack_params or {})
    machine = _build_machine(defense, defense_params, machine_name)
    kernel = machine.kernel
    payload: Dict[str, object] = {
        "defense": defense,
        "pattern": "spray",
        "seed": seed,
    }
    try:
        attack = MemorySprayAttack(
            kernel, m=knobs["m"], region_pages=knobs["region_pages"],
            template_rounds=knobs["template_rounds"])
        attack.setup()
        hammer_start = kernel.clock.now_ns
        outcome = attack.run(hammer_ns_per_victim=knobs["hammer_ns"])
    except AttackError as exc:
        # A tracker that suppresses templating (no flips to template
        # with) blocks the attack before it ever aims at a page table.
        payload.update({
            "verdict": "blocked",
            "detail": str(exc)[:60],
            "l1pt_flip_events": 0,
            "protected": True,
        })
    else:
        pt_frames = set(kernel.l1pt_frames()) | set(outcome.targeted_pt_pages)
        flips = sum(
            1
            for ppn in sorted(pt_frames)
            for flip in kernel.dram.flips_in_page(ppn)
            if flip.at_ns >= hammer_start)
        payload.update({
            "verdict": "bypassed" if outcome.succeeded else "blocked",
            "l1pt_flip_events": flips,
            "protected": not outcome.succeeded and flips == 0,
        })
    payload.update(_tracker_metrics(machine))
    return payload


def run_zoo_scenario(spec: ScenarioSpec) -> dict:
    """Adapter for the scenario runner (``kind="zoo"``)."""
    params = spec.params
    return run_zoo_cell(
        defense=spec.defense,
        pattern=params["pattern"],
        seed=params.get("seed", 11),
        machine_name=spec.machine,
        defense_params=spec.defense_params,
        attack_params={k: params[k] for k in
                       ("m", "region_pages", "template_rounds", "hammer_ns")
                       if k in params},
    )


def zoo_specs(
    defenses: Sequence[str] = ZOO_DEFENSES,
    patterns: Sequence[str] = PATTERNS + ("spray",),
    seed: int = 11,
    attack_params: Optional[Mapping] = None,
) -> List[ScenarioSpec]:
    """The sweep grid: every (defense, pattern) cell."""
    from ..defenses import DEFENSES

    specs = []
    for defense in defenses:
        if defense not in DEFENSES:
            raise ConfigError(
                f"unknown defense {defense!r}; known: {sorted(DEFENSES)}")
        for pattern in patterns:
            if pattern != "spray" and pattern not in _PATTERN_OFFSETS:
                raise ConfigError(
                    f"unknown zoo pattern {pattern!r}; known: "
                    f"{PATTERNS + ('spray',)}")
            params: Dict[str, object] = {"pattern": pattern, "seed": seed}
            if pattern == "spray" and attack_params:
                params.update(attack_params)
            specs.append(ScenarioSpec(
                name=f"zoo-{defense}-{pattern}",
                kind="zoo",
                group="zoo",
                title=f"Zoo: {defense} vs {pattern.replace('_', '-')}",
                machine="tiny",
                defense=defense,
                defense_params=TINY_DEFENSE_PARAMS.get(defense, {}),
                params=params,
            ))
    return specs


def run_zoo_matrix(
    defenses: Sequence[str] = ZOO_DEFENSES,
    patterns: Sequence[str] = PATTERNS + ("spray",),
    seed: int = 11,
    workers: int = 1,
    attack_params: Optional[Mapping] = None,
) -> List[ScenarioResult]:
    """Run the sweep grid through the scenario runner."""
    from ..scenarios.runner import run_sweep

    return run_sweep(
        zoo_specs(defenses, patterns, seed, attack_params), workers=workers)


def summarise_matrix(results: Sequence[ScenarioResult]) -> dict:
    """Per-defense protection-rate x overhead x SRAM digest."""
    defenses: Dict[str, dict] = {}
    for result in results:
        payload = result.payload
        entry = defenses.setdefault(payload["defense"], {
            "cells": 0,
            "protected_cells": 0,
            "refreshes": 0,
            "activations": 0,
            "sram_bits": 0,
        })
        entry["cells"] += 1
        entry["protected_cells"] += int(payload["protected"])
        entry["refreshes"] += payload["refreshes"]
        entry["activations"] += payload["activations"]
        entry["sram_bits"] = max(entry["sram_bits"], payload["sram_bits"])
    for entry in defenses.values():
        entry["protection_rate"] = (
            entry["protected_cells"] / entry["cells"] if entry["cells"]
            else 0.0)
        entry["refresh_overhead"] = (
            entry["refreshes"] / entry["activations"]
            if entry["activations"] else 0.0)
    vanilla = defenses.get("vanilla")
    trackers = {name: entry for name, entry in defenses.items()
                if name not in ("vanilla", "softtrr")}
    return {
        "defenses": defenses,
        "vanilla_flips_somewhere": bool(
            vanilla and vanilla["protected_cells"] < vanilla["cells"]),
        "all_trackers_actuate": bool(
            trackers and all(entry["refreshes"] > 0
                             for entry in trackers.values())),
        "some_tracker_beats_vanilla": bool(
            vanilla and trackers and any(
                entry["protected_cells"] > vanilla["protected_cells"]
                for entry in trackers.values())),
    }


# ---------------------------------------------------------------- the CLI
def _build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        prog="repro-zoo",
        description=("Comparative tracker sweep: protection rate x refresh "
                     "overhead x SRAM budget per defense."),
    )
    cli_common.add_defenses_option(parser, default=ZOO_DEFENSES)
    parser.add_argument(
        "--patterns", nargs="*", default=list(PATTERNS + ("spray",)),
        help="hammer patterns and/or 'spray' "
             f"(default: {' '.join(PATTERNS + ('spray',))})")
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced cell count for CI: spray leg shrunk, patterns "
             "trimmed to one_sided + many_sided")
    cli_common.add_seed_option(parser, default=11)
    cli_common.add_jobs_option(parser)
    cli_common.add_out_option(
        parser, help_text="write the JSON report to PATH instead of stdout")
    cli_common.add_check_option(
        parser,
        help_text="exit non-zero unless vanilla flips somewhere, every "
                  "tracker actuates and some tracker protects a cell "
                  "vanilla loses (the CI gate)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    attack_params = None
    patterns = args.patterns
    if args.smoke:
        patterns = [p for p in patterns if p in ("one_sided", "many_sided",
                                                 "spray")]
        attack_params = {"region_pages": 160, "template_rounds": 2_000,
                         "hammer_ns": 3_000_000}
    try:
        if args.jobs < 1:
            raise ConfigError("--jobs must be >= 1")
        results = run_zoo_matrix(
            defenses=args.defenses, patterns=patterns,
            seed=args.seed, workers=args.jobs, attack_params=attack_params)
    except ReproError as exc:
        print(f"repro-zoo: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE
    summary = summarise_matrix(results)
    report = {
        "seed": args.seed,
        "smoke": args.smoke,
        "summary": summary,
        "cells": [result.to_dict() for result in results],
    }
    text = json.dumps(report, sort_keys=True, indent=2) + "\n"
    if args.out:
        cli_common.atomic_write_text(args.out, text)
        print(f"[{len(results)} zoo cells -> {args.out}]")
    else:
        sys.stdout.write(text)
    if args.check:
        failures = []
        if not summary["vanilla_flips_somewhere"]:
            failures.append("vanilla never flipped (bench has no teeth)")
        if not summary["all_trackers_actuate"]:
            failures.append("a tracker never actuated a refresh "
                            "(feed wiring dead?)")
        if not summary["some_tracker_beats_vanilla"]:
            failures.append("no tracker protected a cell vanilla loses")
        if failures:
            for failure in failures:
                print(f"repro-zoo: CHECK FAILED: {failure}", file=sys.stderr)
            return cli_common.EXIT_CHECK_FAILED
        print("repro-zoo: check passed "
              f"({len(results)} cells, trackers live, protection measured)",
              file=sys.stderr)
    return cli_common.EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
