"""System-robustness evaluation (Table V).

Runs the 20 LTP-style stress drivers on the vanilla system, under
SoftTRR Δ±1 and under SoftTRR Δ±6 — each on a freshly booted machine —
and tabulates pass/fail.  The expected result (and the paper's) is a
full column of checkmarks: "there is no deviation for the SoftTRR-based
system compared to the vanilla system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..clock import NS_PER_MS
from ..config import MachineSpec, perf_testbed
from ..core.profile import SoftTrrParams
from ..kernel.vma import PAGE
from ..machine import Machine
from ..workloads.ltp import LTP_STRESS_TESTS, run_stress_test


@dataclass
class Table5Row:
    """One Table V line."""

    category: str
    name: str
    vanilla: bool
    delta1: bool
    delta6: bool
    error: Optional[str] = None

    def cells(self):
        """(vanilla, Δ±1, Δ±6) as the table's check/cross marks."""
        return tuple("pass" if ok else "FAIL"
                     for ok in (self.vanilla, self.delta1, self.delta6))


def stress_machine(spec_factory: Callable[[], MachineSpec],
                   distance: Optional[int]) -> Machine:
    """A fresh machine for one stress run (optionally SoftTRR Δ±d)."""
    machine = Machine.from_parts(spec_factory())
    kernel = machine.kernel
    if distance is not None:
        machine.load_softtrr(SoftTrrParams(max_distance=distance))
        # Warm the system so the tracer has real armed state while the
        # stress storms run (that is the point of the robustness test).
        proc = kernel.create_process("warmup")
        base = kernel.mmap(proc, 48 * PAGE)
        for i in range(48):
            kernel.user_write(proc, base + i * PAGE, b"w")
        kernel.clock.advance(2 * NS_PER_MS)
        kernel.dispatch_timers()
    return machine


def run_table5(spec_factory: Callable[[], MachineSpec] = perf_testbed,
               iterations: Optional[int] = None) -> List[Table5Row]:
    """Regenerate Table V."""
    rows: List[Table5Row] = []
    for name, (category, _, _) in LTP_STRESS_TESTS.items():
        results = {}
        for label, distance in (("vanilla", None), ("d1", 1), ("d6", 6)):
            machine = stress_machine(spec_factory, distance)
            results[label] = run_stress_test(machine.kernel, name,
                                             iterations=iterations)
        failures = [r.error for r in results.values() if not r.passed]
        rows.append(Table5Row(
            category=category,
            name=name,
            vanilla=results["vanilla"].passed,
            delta1=results["d1"].passed,
            delta6=results["d6"].passed,
            error=failures[0] if failures else None,
        ))
    return rows
