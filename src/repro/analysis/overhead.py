"""Runtime-overhead measurement (Tables III and IV).

For every program the suite runs three *identical* seeded workloads on
three freshly booted machines — vanilla, SoftTRR Δ±1, SoftTRR Δ±6 — and
reports the runtime delta as a percentage, exactly the quantity Tables
III/IV tabulate.

A seeded measurement-noise term (default sigma = 0.35 %) is applied to
each measured runtime, standing in for the run-to-run variance of real
hardware; it is what produces the small negative entries the paper's
tables also contain (e.g. mcf_s -0.76 %).  Set ``noise_sigma_pct=0`` for
the raw model output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import MachineSpec, perf_testbed
from ..core.profile import SoftTrrParams
from ..machine import Machine
from ..rng import derive_rng
from ..workloads.base import WorkloadProfile


@dataclass
class OverheadRow:
    """One table row: a program's overhead under both distances."""

    name: str
    vanilla_ns: int
    delta1_ns: int
    delta6_ns: int
    delta1_pct: float
    delta6_pct: float


def _run_once(spec: MachineSpec, profile: WorkloadProfile,
              distance: Optional[int], seed: int) -> int:
    """One program on one fresh machine; returns runtime in ns."""
    machine = Machine.from_parts(spec)
    if distance is not None:
        machine.load_softtrr(SoftTrrParams(max_distance=distance))
    result = machine.run_workload(profile, seed=seed)
    return result.runtime_ns


def _noisy(runtime_ns: int, tag: str, sigma_pct: float, seed: int) -> int:
    if sigma_pct <= 0:
        return runtime_ns
    rng = derive_rng("noise", tag, seed)
    return int(runtime_ns * (1.0 + rng.gauss(0.0, sigma_pct / 100.0)))


def measure_overhead(profile: WorkloadProfile,
                     spec_factory: Callable[[], MachineSpec] = perf_testbed,
                     seed: int = 17,
                     noise_sigma_pct: float = 0.35) -> OverheadRow:
    """Vanilla vs Δ±1 vs Δ±6 for one program."""
    vanilla = _run_once(spec_factory(), profile, None, seed)
    delta1 = _run_once(spec_factory(), profile, 1, seed)
    delta6 = _run_once(spec_factory(), profile, 6, seed)
    vanilla_m = _noisy(vanilla, f"{profile.name}:vanilla", noise_sigma_pct, seed)
    delta1_m = _noisy(delta1, f"{profile.name}:d1", noise_sigma_pct, seed)
    delta6_m = _noisy(delta6, f"{profile.name}:d6", noise_sigma_pct, seed)
    return OverheadRow(
        name=profile.name,
        vanilla_ns=vanilla_m,
        delta1_ns=delta1_m,
        delta6_ns=delta6_m,
        delta1_pct=100.0 * (delta1_m - vanilla_m) / vanilla_m,
        delta6_pct=100.0 * (delta6_m - vanilla_m) / vanilla_m,
    )


def measure_suite_overhead(
    profiles: Dict[str, WorkloadProfile],
    order: Sequence[str],
    spec_factory: Callable[[], MachineSpec] = perf_testbed,
    seed: int = 17,
    noise_sigma_pct: float = 0.35,
    duration_override_ms: Optional[int] = None,
) -> List[OverheadRow]:
    """All programs of a suite, in table order, plus a Mean row."""
    rows: List[OverheadRow] = []
    for name in order:
        profile = profiles[name]
        if duration_override_ms is not None:
            profile = profile.replace(duration_ms=duration_override_ms)
        rows.append(measure_overhead(
            profile, spec_factory=spec_factory, seed=seed,
            noise_sigma_pct=noise_sigma_pct))
    mean = OverheadRow(
        name="Mean",
        vanilla_ns=sum(r.vanilla_ns for r in rows) // len(rows),
        delta1_ns=sum(r.delta1_ns for r in rows) // len(rows),
        delta6_ns=sum(r.delta6_ns for r in rows) // len(rows),
        delta1_pct=sum(r.delta1_pct for r in rows) / len(rows),
        delta6_pct=sum(r.delta6_pct for r in rows) / len(rows),
    )
    rows.append(mean)
    return rows
