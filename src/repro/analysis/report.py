"""One-shot report generator: every reproduced table and figure.

Usage (also wired as ``python -m repro.analysis.report``)::

    python -m repro.analysis.report            # quick scale
    python -m repro.analysis.report --full     # paper scale
    python -m repro.analysis.report --only table3 fig4

Each artefact is printed and archived under ``results/``.  The benchmark
targets under ``benchmarks/`` run the same generators with shape
assertions; this module is the convenience entry point for humans.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from ..config import perf_testbed
from ..workloads.phoronix import PHORONIX_ORDER, PHORONIX_PROFILES
from ..workloads.spec import SPEC_ORDER, SPEC_PROFILES
from .memory import run_lamp_series
from .overhead import measure_suite_overhead
from .robustness import run_table5
from .security import run_table2
from .tables import (
    render_lamp_series,
    render_overhead_table,
    render_table2,
    render_table5,
    save_result,
)


def generate_table2(full: bool) -> str:
    rows = run_table2(m=4 if full else 2,
                      template_rounds=22_000 if full else 16_000)
    return render_table2(rows)


def generate_table3(full: bool) -> str:
    rows = measure_suite_overhead(
        SPEC_PROFILES, SPEC_ORDER, spec_factory=perf_testbed,
        duration_override_ms=160 if full else 80)
    return render_overhead_table(
        rows, "Table III — SPECspeed 2017 Integer overhead")


def generate_table4(full: bool) -> str:
    rows = measure_suite_overhead(
        PHORONIX_PROFILES, PHORONIX_ORDER, spec_factory=perf_testbed,
        duration_override_ms=140 if full else 70)
    return render_overhead_table(
        rows, "Table IV — Phoronix benchmark overhead")


def generate_table5(full: bool) -> str:
    rows = run_table5(spec_factory=perf_testbed,
                      iterations=None if full else 10)
    return render_table5(rows)


def _lamp(full: bool):
    return run_lamp_series(distances=(1, 6), minutes=60 if full else 24,
                           spec_factory=perf_testbed)


def generate_fig4(full: bool) -> str:
    return render_lamp_series(
        _lamp(full), "memory_bytes",
        "Figure 4 — SoftTRR memory consumption (KiB) over the LAMP run",
        unit_divisor=1024.0, unit="KiB")


def generate_fig5(full: bool) -> str:
    series = _lamp(full)
    return (render_lamp_series(
                series, "protected_pages",
                "Figure 5a — protected L1PT pages over the LAMP run")
            + "\n\n"
            + render_lamp_series(
                series, "traced_pages",
                "Figure 5b — traced adjacent pages over the LAMP run"))


GENERATORS: Dict[str, Callable[[bool], str]] = {
    "table2": generate_table2,
    "table3": generate_table3,
    "table4": generate_table4,
    "table5": generate_table5,
    "fig4": generate_fig4,
    "fig5": generate_fig5,
}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slower)")
    parser.add_argument("--only", nargs="*", choices=sorted(GENERATORS),
                        help="generate a subset of artefacts")
    args = parser.parse_args(argv)
    targets = args.only or sorted(GENERATORS)
    for name in targets:
        print(f"\n[{name}] generating ...")
        text = GENERATORS[name](args.full)
        print(text)
        path = save_result(f"report_{name}.txt", text)
        print(f"[{name}] saved to {path}")


if __name__ == "__main__":
    main()
