"""Chaos sweep: SoftTRR's protection under injected machine faults.

The paper's security argument (``threshold = timer_inr x (count_limit -
1)``) silently assumes a perfectly reliable substrate: every timer tick
fires, every hook notify lands, every RSVD fault reaches the tracer,
every ``invlpg`` invalidates, every refresh read recharges its row.  The
chaos harness perturbs exactly those five choke points through
:mod:`repro.faults` and measures two things per site:

* **protection-window erosion** — simulated nanoseconds of hammer time
  the tracer effectively lost to unhealed faults (counter-based, so it
  is deterministic and cheap);
* **ground truth** — whether any :class:`FlipEvent` landed in an L1PT
  frame, read straight from the DRAM substrate.

Each cell runs the smoke-scale memory-spray attack on the tiny machine
with one fault site active, healing on (`HEALING_PARAMS`) or off, under
the runtime sanitizers in report mode.  ``repro-chaos --check`` gates
CI: healing on must keep every L1PT clean, and at least one raw cell
must show measurable erosion (otherwise the injection itself is dead).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional, Sequence

from .. import cli_common
from ..errors import AttackError, ConfigError, ReproError
from ..faults import FAULT_SITES, FaultPlan, FaultSpec
from ..machine import Machine, MachineConfig
from ..scenarios.spec import ScenarioResult, ScenarioSpec

__all__ = [
    "DEFAULT_INTENSITY",
    "HEALING_PARAMS",
    "chaos_specs",
    "main",
    "run_chaos_cell",
    "run_chaos_matrix",
    "run_chaos_scenario",
    "site_spec",
    "summarise_matrix",
]

#: SoftTrrParams overrides that switch every graceful-degradation
#: policy on (the "healed" column of the sweep).
HEALING_PARAMS = {
    "heal_refresh_retries": 4,
    "heal_refresh_backoff_ns": 500,
    "heal_watchdog": True,
    "heal_resync_every": 4,
}

#: Default per-opportunity fault probability for every site.
DEFAULT_INTENSITY = 0.25

#: Fault mode exercised per site in the sweep (one representative mode;
#: the spec layer supports more).
_SITE_MODES = {
    "timers": "drop",
    "hooks": "drop",
    "mmu": "swallow",
    "tlb": "lost_invlpg",
    "refresher": "fail_refresh",
}

#: Smoke-scale attack knobs (mirrors the ``smoke`` scenario group).
_ATTACK_PARAMS = {"m": 1, "region_pages": 224, "template_rounds": 3_000,
                  "hammer_ns": 4_000_000}

#: SoftTRR timing scaled to the tiny machine (mirrors the registry).
_TINY_SOFTTRR = {"timer_inr_ns": 50_000}


def site_spec(site: str, intensity: float = DEFAULT_INTENSITY,
              seed: int = 0) -> FaultSpec:
    """The representative :class:`FaultSpec` for one site."""
    if site not in _SITE_MODES:
        raise ConfigError(
            f"unknown fault site {site!r}; known: {FAULT_SITES}")
    return FaultSpec(site=site, mode=_SITE_MODES[site],
                     probability=intensity, seed=seed)


def _erosion_ns(site: str, counters: Mapping[str, int],
                timer_inr_ns: int, protection_window_ns: int) -> int:
    """Simulated hammer time the tracer lost to unhealed faults.

    A lost tick/notify/fault/invlpg blinds the tracer for roughly one
    timer interval (the counting granularity); a failed refresh forfeits
    a whole protection window the refresher believed it had closed.
    """
    unhealed = max(0, counters["injected"] - counters["healed"])
    if site == "refresher":
        return unhealed * protection_window_ns
    return unhealed * timer_inr_ns


def run_chaos_cell(
    site: str,
    intensity: float = DEFAULT_INTENSITY,
    healing: bool = True,
    seed: int = 11,
    machine_name: str = "tiny",
    defense_params: Optional[Mapping] = None,
    attack_params: Optional[Mapping] = None,
) -> dict:
    """One chaos cell: smoke attack under one active fault site.

    Deterministic in all arguments (seeded injector streams, simulated
    clock); returns a JSON-stable payload dict.
    """
    from ..attacks.memory_spray import MemorySprayAttack

    params = dict(_TINY_SOFTTRR)
    params.update(defense_params or {})
    if healing:
        params.update(HEALING_PARAMS)
    knobs = dict(_ATTACK_PARAMS)
    knobs.update(attack_params or {})
    plan = FaultPlan(specs=(site_spec(site, intensity, seed),), seed=seed)
    machine = Machine(MachineConfig(
        machine=machine_name,
        defense="softtrr",
        defense_params=params,
        # Report mode, never strict: a lost invlpg legitimately leaves a
        # stale TLB entry behind — that is the fault, not a model bug.
        sanitize=True,
        strict_sanitizers=False,
        fault_plan=plan,
    ))
    kernel = machine.kernel
    payload: Dict[str, object] = {
        "site": site,
        "mode": _SITE_MODES[site],
        "intensity": intensity,
        "healing": healing,
        "seed": seed,
    }
    try:
        attack = MemorySprayAttack(
            kernel, m=knobs["m"], region_pages=knobs["region_pages"],
            template_rounds=knobs["template_rounds"])
        attack.setup()
        # Templating flips the attacker's own user pages before any of
        # them is recycled into an L1PT; only flips after hammering
        # starts can be protection failures.
        hammer_start = kernel.clock.now_ns
        outcome = attack.run(hammer_ns_per_victim=knobs["hammer_ns"])
    except AttackError as exc:
        payload.update({
            "verdict": "blocked",
            "detail": str(exc)[:60],
            "l1pt_flip_events": 0,
            "hammer_time_ns": 0,
        })
        targeted: List[int] = []
    else:
        targeted = sorted(outcome.targeted_pt_pages)
        pt_frames = set(kernel.l1pt_frames()) | set(targeted)
        flips = sum(
            1
            for ppn in sorted(pt_frames)
            for flip in kernel.dram.flips_in_page(ppn)
            if flip.at_ns >= hammer_start)
        payload.update({
            "verdict": "bypassed" if outcome.succeeded else "blocked",
            "targeted_pt_pages": targeted,
            "flipped_pt_pages": sorted(outcome.flipped_pt_pages),
            "l1pt_flip_events": flips,
            "hammer_time_ns": outcome.hammer_time_ns,
        })
    softtrr = machine.softtrr
    trr_params = softtrr.params
    site_counters = machine.telemetry.group(f"faults.{site}")
    payload["faults"] = site_counters
    payload["erosion_ns"] = _erosion_ns(
        site, site_counters, trr_params.timer_inr_ns,
        trr_params.protection_window_ns)
    stats = softtrr.stats()
    payload["healing_stats"] = {
        "refreshes": stats.refreshes,
        "failed_refreshes": stats.failed_refreshes,
        "retried_refreshes": stats.retried_refreshes,
        "watchdog_refreshes": stats.watchdog_refreshes,
        "resyncs": stats.resyncs,
        "resync_repairs": stats.resync_repairs,
    }
    sanitizers = machine.sanitizers
    payload["sanitizer_violations"] = (
        0 if sanitizers is None else len(sanitizers.checkpoint()))
    return payload


def run_chaos_scenario(spec: ScenarioSpec) -> dict:
    """Adapter for the scenario runner (``kind="chaos"``)."""
    params = spec.params
    return run_chaos_cell(
        site=params["site"],
        intensity=params.get("intensity", DEFAULT_INTENSITY),
        healing=params.get("healing", True),
        seed=params.get("seed", 11),
        machine_name=spec.machine,
        defense_params=spec.defense_params,
        attack_params={k: params[k] for k in
                       ("m", "region_pages", "template_rounds", "hammer_ns")
                       if k in params},
    )


def chaos_specs(
    sites: Sequence[str] = FAULT_SITES,
    intensities: Sequence[float] = (DEFAULT_INTENSITY,),
    seed: int = 11,
) -> List[ScenarioSpec]:
    """The sweep grid: every (site, intensity) with healing on and off."""
    specs = []
    for site in sites:
        if site not in _SITE_MODES:
            raise ConfigError(
                f"unknown fault site {site!r}; known: {FAULT_SITES}")
        for intensity in intensities:
            for healing in (True, False):
                label = "healed" if healing else "raw"
                specs.append(ScenarioSpec(
                    name=f"chaos-{site}-i{intensity:g}-{label}",
                    kind="chaos",
                    group="chaos",
                    title=f"Chaos: {site} at p={intensity:g} ({label})",
                    machine="tiny",
                    defense="softtrr",
                    defense_params=_TINY_SOFTTRR,
                    params={"site": site, "intensity": intensity,
                            "healing": healing, "seed": seed},
                ))
    return specs


def run_chaos_matrix(
    sites: Sequence[str] = FAULT_SITES,
    intensities: Sequence[float] = (DEFAULT_INTENSITY,),
    seed: int = 11,
    workers: int = 1,
) -> List[ScenarioResult]:
    """Run the sweep grid through the scenario runner."""
    from ..scenarios.runner import run_sweep

    return run_sweep(chaos_specs(sites, intensities, seed), workers=workers)


def summarise_matrix(results: Sequence[ScenarioResult]) -> dict:
    """Per-site healed-vs-raw digest of a chaos sweep."""
    sites: Dict[str, dict] = {}
    for result in results:
        payload = result.payload
        entry = sites.setdefault(payload["site"], {
            "healed_l1pt_flip_events": 0,
            "raw_l1pt_flip_events": 0,
            "healed_erosion_ns": 0,
            "raw_erosion_ns": 0,
        })
        column = "healed" if payload["healing"] else "raw"
        entry[f"{column}_l1pt_flip_events"] += payload["l1pt_flip_events"]
        entry[f"{column}_erosion_ns"] += payload["erosion_ns"]
    return {
        "sites": sites,
        "healed_clean": all(
            entry["healed_l1pt_flip_events"] == 0
            for entry in sites.values()),
        "raw_erosion_seen": any(
            entry["raw_erosion_ns"] > 0 for entry in sites.values()),
    }


# ---------------------------------------------------------------- the CLI
def _build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        prog="repro-chaos",
        description=("Sweep fault-injection intensities over SoftTRR and "
                     "report protection-window erosion per site."),
    )
    parser.add_argument(
        "--sites", nargs="*", default=list(FAULT_SITES),
        help=f"fault sites to sweep (default: all of {FAULT_SITES})")
    parser.add_argument(
        "--intensities", nargs="*", type=float,
        default=[DEFAULT_INTENSITY],
        help="per-opportunity fault probabilities (default: 0.25)")
    cli_common.add_seed_option(parser, default=11)
    cli_common.add_jobs_option(parser)
    cli_common.add_out_option(
        parser, help_text="write the JSON report to PATH instead of stdout")
    cli_common.add_check_option(
        parser,
        help_text="exit non-zero unless healing keeps every L1PT clean AND "
                  "at least one raw cell shows erosion (the CI gate)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.jobs < 1:
            raise ConfigError("--jobs must be >= 1")
        results = run_chaos_matrix(
            sites=args.sites, intensities=args.intensities,
            seed=args.seed, workers=args.jobs)
    except ReproError as exc:
        print(f"repro-chaos: error: {exc}", file=sys.stderr)
        return cli_common.EXIT_USAGE
    summary = summarise_matrix(results)
    report = {
        "intensities": args.intensities,
        "seed": args.seed,
        "summary": summary,
        "cells": [result.to_dict() for result in results],
    }
    text = json.dumps(report, sort_keys=True, indent=2) + "\n"
    if args.out:
        cli_common.atomic_write_text(args.out, text)
        print(f"[{len(results)} chaos cells -> {args.out}]")
    else:
        sys.stdout.write(text)
    if args.check:
        failures = []
        if not summary["healed_clean"]:
            failures.append("healing enabled still leaked L1PT flip events")
        if not summary["raw_erosion_seen"]:
            failures.append("no raw cell showed protection-window erosion "
                            "(injection dead?)")
        if failures:
            for failure in failures:
                print(f"repro-chaos: CHECK FAILED: {failure}",
                      file=sys.stderr)
            return cli_common.EXIT_CHECK_FAILED
        print("repro-chaos: check passed "
              f"({len(results)} cells, healing holds, erosion measurable)",
              file=sys.stderr)
    return cli_common.EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
